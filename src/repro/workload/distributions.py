"""Token-length distributions fitted from published summary statistics.

The paper publishes median / P90 / std of prompt and output lengths
for both evaluation datasets (Table 2) but not the raw traces.  LLM
request lengths are classically heavy-tailed and well described by a
lognormal, which we can fit exactly from two quantiles: with
``median = exp(mu)`` and ``P90 = exp(mu + 1.2816 * sigma)``,

    mu    = ln(median)
    sigma = (ln(P90) - ln(median)) / 1.2816
"""

from __future__ import annotations

import abc
import math

import numpy as np

# Standard normal 90th-percentile z-score.
Z90 = 1.2815515655446004


class LengthDistribution(abc.ABC):
    """A distribution over positive integer token counts."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one length."""

    def sample_many(self, rng: np.random.Generator, n: int) -> list[int]:
        return [self.sample(rng) for _ in range(n)]


class LogNormalLengths(LengthDistribution):
    """Lognormal lengths parameterized by median and P90."""

    def __init__(
        self,
        median: float,
        p90: float,
        min_len: int = 1,
        max_len: int | None = None,
    ) -> None:
        if median <= 0 or p90 <= median:
            raise ValueError("need 0 < median < p90")
        if min_len < 1:
            raise ValueError("min_len must be >= 1")
        if max_len is not None and max_len < min_len:
            raise ValueError("max_len must be >= min_len")
        self.median = median
        self.p90 = p90
        self.min_len = min_len
        self.max_len = max_len
        self.mu = math.log(median)
        self.sigma = (math.log(p90) - self.mu) / Z90

    def sample(self, rng: np.random.Generator) -> int:
        value = int(round(rng.lognormal(self.mu, self.sigma)))
        value = max(value, self.min_len)
        if self.max_len is not None:
            value = min(value, self.max_len)
        return value

    def __repr__(self) -> str:
        return (
            f"LogNormalLengths(median={self.median}, p90={self.p90}, "
            f"min={self.min_len}, max={self.max_len})"
        )


class FixedLengths(LengthDistribution):
    """Degenerate distribution — every request has the same length."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ValueError("length must be >= 1")
        self.length = length

    def sample(self, rng: np.random.Generator) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"FixedLengths({self.length})"


class UniformLengths(LengthDistribution):
    """Uniform integer lengths over ``[low, high]``."""

    def __init__(self, low: int, high: int) -> None:
        if not 1 <= low <= high:
            raise ValueError("need 1 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def __repr__(self) -> str:
        return f"UniformLengths({self.low}, {self.high})"
