"""Request arrival processes.

The paper generates arrival times from a Poisson process (§5); we also
provide Gamma (burstier or smoother, via the coefficient of variation),
uniform-spaced, and all-at-once static arrivals for closed-loop
experiments such as Fig. 1a's 128-request replay.
"""

from __future__ import annotations

import abc

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates monotonically non-decreasing arrival timestamps."""

    @abc.abstractmethod
    def arrival_times(self, rng: np.random.Generator, n: int) -> list[float]:
        """Timestamps (seconds, starting near 0) for ``n`` requests."""


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a given average rate (queries/second)."""

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.qps = qps

    def arrival_times(self, rng: np.random.Generator, n: int) -> list[float]:
        gaps = rng.exponential(1.0 / self.qps, size=n)
        return list(np.cumsum(gaps))


class GammaArrivals(ArrivalProcess):
    """Gamma-distributed inter-arrivals with a tunable burstiness.

    ``cv`` is the coefficient of variation of the gaps: 1.0 recovers
    Poisson, >1 is burstier, <1 is smoother.
    """

    def __init__(self, qps: float, cv: float = 1.0) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        if cv <= 0:
            raise ValueError("cv must be positive")
        self.qps = qps
        self.cv = cv

    def arrival_times(self, rng: np.random.Generator, n: int) -> list[float]:
        shape = 1.0 / (self.cv**2)
        scale = self.cv**2 / self.qps
        gaps = rng.gamma(shape, scale, size=n)
        return list(np.cumsum(gaps))


class UniformArrivals(ArrivalProcess):
    """Perfectly paced arrivals, one every ``1/qps`` seconds."""

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.qps = qps

    def arrival_times(self, rng: np.random.Generator, n: int) -> list[float]:
        gap = 1.0 / self.qps
        return [gap * (i + 1) for i in range(n)]


class StaticArrivals(ArrivalProcess):
    """Everything arrives at t=0 (closed-loop replay)."""

    def arrival_times(self, rng: np.random.Generator, n: int) -> list[float]:
        return [0.0] * n
