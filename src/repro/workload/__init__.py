"""Workload synthesis: length distributions, arrivals, and datasets."""

from repro.workload.arrival import (
    ArrivalProcess,
    GammaArrivals,
    PoissonArrivals,
    StaticArrivals,
    UniformArrivals,
)
from repro.workload.datasets import (
    ARXIV_SUMMARIZATION,
    SHAREGPT4,
    DatasetSpec,
    generate_requests,
    get_dataset,
)
from repro.workload.conversation import (
    ConversationSpec,
    ConversationWorkload,
    simulate_conversations,
)
from repro.workload.production import (
    DEFAULT_TENANTS,
    ProductionSpec,
    TenantClass,
    generate_production_trace,
)
from repro.workload.distributions import (
    FixedLengths,
    LengthDistribution,
    LogNormalLengths,
    UniformLengths,
)
from repro.workload.trace import (
    TraceStatistics,
    load_trace,
    save_trace,
    trace_statistics,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "GammaArrivals",
    "UniformArrivals",
    "StaticArrivals",
    "DatasetSpec",
    "SHAREGPT4",
    "ARXIV_SUMMARIZATION",
    "get_dataset",
    "generate_requests",
    "LengthDistribution",
    "LogNormalLengths",
    "FixedLengths",
    "UniformLengths",
    "ConversationSpec",
    "ConversationWorkload",
    "simulate_conversations",
    "TenantClass",
    "ProductionSpec",
    "DEFAULT_TENANTS",
    "generate_production_trace",
    "TraceStatistics",
    "save_trace",
    "load_trace",
    "trace_statistics",
]
