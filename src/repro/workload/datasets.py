"""The paper's two evaluation workloads, synthesized from Table 2.

``openchat_sharegpt4`` — chatbot conversations: medium prompts with
high variance, longer outputs.  ``arxiv_summarization`` — document
summarization: very long prompts, short outputs.  Requests whose total
length exceeds the dataset cap are filtered, matching §5's outlier
removal (8192 and 16384 tokens respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import Request
from repro.workload.arrival import ArrivalProcess, PoissonArrivals, StaticArrivals
from repro.workload.distributions import LengthDistribution, LogNormalLengths


@dataclass(frozen=True)
class DatasetSpec:
    """A named workload: length distributions plus the total-length cap."""

    name: str
    prompt_lengths: LengthDistribution
    output_lengths: LengthDistribution
    max_total_len: int

    def sample_lengths(self, rng: np.random.Generator) -> tuple[int, int]:
        """One (prompt, output) pair, rejection-sampled under the cap."""
        for _ in range(1000):
            prompt = self.prompt_lengths.sample(rng)
            output = self.output_lengths.sample(rng)
            if prompt + output <= self.max_total_len:
                return prompt, output
        raise RuntimeError(
            f"dataset {self.name}: could not sample under cap "
            f"{self.max_total_len} after 1000 tries"
        )


SHAREGPT4 = DatasetSpec(
    name="openchat_sharegpt4",
    prompt_lengths=LogNormalLengths(median=1730, p90=5696, min_len=16),
    output_lengths=LogNormalLengths(median=415, p90=834, min_len=4),
    max_total_len=8192,
)

ARXIV_SUMMARIZATION = DatasetSpec(
    name="arxiv_summarization",
    prompt_lengths=LogNormalLengths(median=7059, p90=12985, min_len=64),
    output_lengths=LogNormalLengths(median=208, p90=371, min_len=4),
    max_total_len=16384,
)

_DATASETS = {d.name: d for d in (SHAREGPT4, ARXIV_SUMMARIZATION)}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    key = name.lower()
    if key not in _DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_DATASETS)}")
    return _DATASETS[key]


def generate_requests(
    dataset: DatasetSpec,
    num_requests: int,
    arrivals: ArrivalProcess | None = None,
    qps: float | None = None,
    seed: int = 0,
) -> list[Request]:
    """Synthesize a request trace from a dataset spec.

    Provide either an ``arrivals`` process or a ``qps`` (Poisson, the
    paper's default); neither gives a closed-loop trace where all
    requests arrive at t=0.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if arrivals is not None and qps is not None:
        raise ValueError("pass either arrivals or qps, not both")
    if arrivals is None:
        arrivals = PoissonArrivals(qps) if qps is not None else StaticArrivals()

    rng = np.random.default_rng(seed)
    times = arrivals.arrival_times(rng, num_requests)
    requests = []
    for arrival_time in times:
        prompt, output = dataset.sample_lengths(rng)
        requests.append(
            Request(prompt_len=prompt, output_len=output, arrival_time=arrival_time)
        )
    return requests
