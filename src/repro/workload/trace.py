"""Trace serialization and summary statistics.

Traces are the unit of reproducibility: a JSONL file of
``(arrival_time, prompt_len, output_len)`` triples replays identically
across schedulers, scales and machines.  ``trace_statistics`` produces
the Table-2-style summary (median / P90 / std of prompt and output
lengths) for any trace, synthetic or imported.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.types import Request


def save_trace(path: str | Path, requests: list[Request]) -> Path:
    """Write a trace as JSON Lines (arrival order preserved)."""
    path = Path(path)
    with path.open("w") as handle:
        for request in requests:
            handle.write(
                json.dumps(
                    {
                        "arrival_time": request.arrival_time,
                        "prompt_len": request.prompt_len,
                        "output_len": request.output_len,
                    }
                )
                + "\n"
            )
    return path


def load_trace(path: str | Path) -> list[Request]:
    """Load a trace written by :func:`save_trace` (fresh request ids)."""
    path = Path(path)
    requests = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                requests.append(
                    Request(
                        prompt_len=int(row["prompt_len"]),
                        output_len=int(row["output_len"]),
                        arrival_time=float(row["arrival_time"]),
                    )
                )
            except (KeyError, ValueError, json.JSONDecodeError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace row: {exc}") from exc
    return requests


@dataclass(frozen=True)
class TraceStatistics:
    """Table-2-style length summary of a trace."""

    num_requests: int
    prompt_median: float
    prompt_p90: float
    prompt_std: float
    output_median: float
    output_p90: float
    output_std: float
    mean_arrival_rate: float

    def as_table2_row(self) -> str:
        return (
            f"prompt median/P90/std = {self.prompt_median:.0f}/"
            f"{self.prompt_p90:.0f}/{self.prompt_std:.0f}, "
            f"output median/P90/std = {self.output_median:.0f}/"
            f"{self.output_p90:.0f}/{self.output_std:.0f}"
        )


def trace_statistics(requests: list[Request]) -> TraceStatistics:
    """Summary statistics of a trace (lengths + arrival rate)."""
    if not requests:
        raise ValueError("cannot summarize an empty trace")
    prompts = np.array([r.prompt_len for r in requests], dtype=float)
    outputs = np.array([r.output_len for r in requests], dtype=float)
    arrivals = sorted(r.arrival_time for r in requests)
    span = arrivals[-1] - arrivals[0]
    rate = (len(requests) - 1) / span if span > 0 else float("inf")
    return TraceStatistics(
        num_requests=len(requests),
        prompt_median=float(np.median(prompts)),
        prompt_p90=float(np.percentile(prompts, 90)),
        prompt_std=float(np.std(prompts)),
        output_median=float(np.median(outputs)),
        output_p90=float(np.percentile(outputs, 90)),
        output_std=float(np.std(outputs)),
        mean_arrival_rate=rate,
    )
