"""Multi-round conversation workloads (closed-loop).

The openchat_sharegpt4 dataset is conversational: "a conversation may
contain multiple rounds of interactions … each such interaction round
is performed as a separate request" (§5).  This module models that
structure explicitly: each conversation issues its next round only
after the previous round's response finishes plus a user think time,
and every round's prompt carries the accumulated context (all prior
prompts and responses) plus a fresh user turn.

Rounds are tagged for the KV prefix cache (``Request.prefix_id`` /
``prefix_len``) according to ``ConversationSpec.prefix_mode``, so with
``ServingConfig.prefix_cache=True`` a follow-up round prefills only
its novel suffix.  Conversation identities come from a workload-local
counter — deterministic for a given seed, independent of the global
request-id counter, and therefore identical across engine runs.

Drive it through :meth:`repro.engine.replica.ReplicaEngine.run`'s
``followup_fn`` hook — see :func:`simulate_conversations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import Deployment, ServingConfig, build_engine
from repro.engine.replica import SimulationResult
from repro.metrics.summary import RunMetrics, summarize
from repro.types import Request
from repro.workload.distributions import LengthDistribution, LogNormalLengths

PREFIX_MODES = ("conversation", "unique", "none")


@dataclass(frozen=True)
class ConversationSpec:
    """Shape of a multi-round chat workload."""

    num_conversations: int
    first_turn_lengths: LengthDistribution = field(
        default_factory=lambda: LogNormalLengths(median=600, p90=2200, min_len=16)
    )
    followup_turn_lengths: LengthDistribution = field(
        default_factory=lambda: LogNormalLengths(median=120, p90=500, min_len=8)
    )
    response_lengths: LengthDistribution = field(
        default_factory=lambda: LogNormalLengths(median=300, p90=700, min_len=4)
    )
    mean_rounds: float = 3.0          # geometric number of rounds, >= 1
    mean_think_time: float = 5.0      # exponential pause between rounds (s)
    arrival_qps: float = 0.5          # Poisson arrivals of conversations
    max_context: int = 8192           # conversations stop at the cap
    # How rounds announce shared history to the prefix cache:
    # "conversation" tags every round with its conversation's id and
    # the accumulated context as the attested prefix; "unique" gives
    # every request a fresh id (a 100%-miss workload, used by the
    # differential suite and the cache-off smoke); "none" leaves
    # requests untagged.
    prefix_mode: str = "conversation"

    def __post_init__(self) -> None:
        if self.num_conversations <= 0:
            raise ValueError("num_conversations must be positive")
        if self.mean_rounds < 1.0:
            raise ValueError("mean_rounds must be >= 1")
        if self.mean_think_time < 0:
            raise ValueError("mean_think_time must be non-negative")
        if self.arrival_qps <= 0:
            raise ValueError("arrival_qps must be positive")
        if self.max_context < 3:
            raise ValueError("max_context must be >= 3 (turn + one output token)")
        if self.prefix_mode not in PREFIX_MODES:
            raise ValueError(
                f"unknown prefix_mode {self.prefix_mode!r}; "
                f"choose one of {PREFIX_MODES}"
            )


@dataclass
class _ConversationState:
    conversation_id: int
    rounds_left: int
    context_len: int


class ConversationWorkload:
    """Stateful generator wiring conversations into the engine hook."""

    def __init__(self, spec: ConversationSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._states: dict[int, _ConversationState] = {}
        self._next_conversation_id = 0
        self._next_unique_id = 0
        self.num_rounds_issued = 0

    # ------------------------------------------------------------------
    def initial_requests(self) -> list[Request]:
        """First rounds of every conversation, Poisson-spaced."""
        spec = self.spec
        gaps = self._rng.exponential(1.0 / spec.arrival_qps, spec.num_conversations)
        arrivals = np.cumsum(gaps)
        requests = []
        for arrival in arrivals:
            prompt = spec.first_turn_lengths.sample(self._rng)
            output = spec.response_lengths.sample(self._rng)
            prompt, output = self._clip(prompt, output, context=0)
            conversation_id = self._next_conversation_id
            self._next_conversation_id += 1
            request = Request(
                prompt_len=prompt,
                output_len=output,
                arrival_time=float(arrival),
                **self._prefix_fields(conversation_id, context=0),
            )
            # Geometric((1/mean)) rounds, at least one (this one).
            p = 1.0 / spec.mean_rounds
            total_rounds = int(self._rng.geometric(p))
            self._states[request.request_id] = _ConversationState(
                conversation_id=conversation_id,
                rounds_left=total_rounds - 1,
                context_len=prompt + output,
            )
            self.num_rounds_issued += 1
            requests.append(request)
        return requests

    def followup(self, finished: Request, now: float) -> list[Request]:
        """Engine hook: issue the conversation's next round, if any."""
        state = self._states.pop(finished.request_id, None)
        if state is None or state.rounds_left <= 0:
            return []
        spec = self.spec
        # The cap check must leave room for the round *being added*: at
        # least one fresh turn token and one output token.  (The old
        # check compared the bare history against the cap, so a
        # conversation one token under it still issued an over-cap
        # round.)
        if state.context_len > spec.max_context - 2:
            return []
        think = float(self._rng.exponential(spec.mean_think_time))
        turn = spec.followup_turn_lengths.sample(self._rng)
        output = spec.response_lengths.sample(self._rng)
        # Clamp the turn so prompt = context + turn leaves at least one
        # output token under the cap; >= 1 by the check above.
        turn = min(turn, spec.max_context - 1 - state.context_len)
        prompt = state.context_len + turn   # full history re-prefilled
        prompt, output = self._clip(prompt, output, context=state.context_len)
        request = Request(
            prompt_len=prompt,
            output_len=output,
            arrival_time=now + think,
            **self._prefix_fields(state.conversation_id, context=state.context_len),
        )
        self._states[request.request_id] = _ConversationState(
            conversation_id=state.conversation_id,
            rounds_left=state.rounds_left - 1,
            context_len=prompt + output,
        )
        self.num_rounds_issued += 1
        return [request]

    # ------------------------------------------------------------------
    def _prefix_fields(self, conversation_id: int, context: int) -> dict:
        mode = self.spec.prefix_mode
        if mode == "conversation":
            # The attested prefix is exactly the accumulated history:
            # everything before this round's fresh turn is shared with
            # the previous round's published context.
            return {"prefix_id": conversation_id, "prefix_len": context}
        if mode == "unique":
            unique = self._next_unique_id
            self._next_unique_id += 1
            return {"prefix_id": unique, "prefix_len": 0}
        return {}

    def _clip(self, prompt: int, output: int, context: int) -> tuple[int, int]:
        """Clamp one round so accumulated context never exceeds the cap.

        ``context`` is the true history carried into the round (0 for a
        first round); the prompt already contains it and can only be
        clipped down to ``context + 1`` — history is materialized KV
        and cannot shrink.  The output allowance is whatever the cap
        leaves after the prompt.
        """
        max_total = self.spec.max_context
        prompt = min(prompt, max(context + 1, max_total - 1))
        output = min(output, max(1, max_total - prompt))
        return prompt, output


def simulate_conversations(
    deployment: Deployment,
    config: ServingConfig,
    spec: ConversationSpec,
    seed: int = 0,
) -> tuple[SimulationResult, RunMetrics]:
    """Run a closed-loop conversation workload end to end."""
    workload = ConversationWorkload(spec, seed=seed)
    engine = build_engine(deployment, config)
    result = engine.run(workload.initial_requests(), followup_fn=workload.followup)
    return result, summarize(result)
