"""Production-style traces: tenant system prompts + nonstationary load.

Real serving deployments differ from the paper's stationary Poisson
replays in two ways that matter for prefix caching and capacity
planning:

* **Shared system prompts.**  Requests belong to tenant classes (an
  application, an agent persona) whose system prompt is a fixed
  many-hundred-token prefix shared by every request of the class.
  These are tagged with ``prefix_id = tenant index`` and
  ``prefix_len = system_prompt_len`` so the KV prefix cache can serve
  the system prompt from shared blocks; ``prefix_publish_len`` caps
  what a finishing request publishes back at the system prompt itself
  (the user's turn and the response are private, never shared).

* **Nonstationary arrivals.**  Load follows a diurnal cycle with
  superimposed bursts.  We synthesize this as a nonhomogeneous Poisson
  process via Lewis–Shedler thinning: candidate arrivals are drawn at
  the peak rate and kept with probability ``rate(t) / peak_rate``,
  where ``rate(t)`` is a sinusoidal diurnal profile multiplied by a
  two-state (calm/burst) Markov-modulated factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.types import Request
from repro.workload.datasets import SHAREGPT4, DatasetSpec


@dataclass(frozen=True)
class TenantClass:
    """A request class sharing one system prompt."""

    name: str
    system_prompt_len: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.system_prompt_len < 0:
            raise ValueError("system_prompt_len must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


DEFAULT_TENANTS = (
    TenantClass("assistant", system_prompt_len=1024, weight=5.0),
    TenantClass("coder", system_prompt_len=2048, weight=3.0),
    TenantClass("summarizer", system_prompt_len=512, weight=2.0),
)


@dataclass(frozen=True)
class ProductionSpec:
    """Shape of a multi-tenant production trace."""

    num_requests: int
    base_qps: float = 1.0
    tenants: tuple[TenantClass, ...] = DEFAULT_TENANTS
    dataset: DatasetSpec = field(default_factory=lambda: SHAREGPT4)
    # Diurnal sinusoid: rate swings between base*(1 - amp) and
    # base*(1 + amp) over one period.
    diurnal_amplitude: float = 0.5
    diurnal_period: float = 3600.0
    # Two-state burst modulation: while bursting, the rate is
    # multiplied by burst_factor; dwell times are exponential.
    burst_factor: float = 3.0
    mean_burst_duration: float = 30.0
    mean_calm_duration: float = 300.0

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.base_qps <= 0:
            raise ValueError("base_qps must be positive")
        if not self.tenants:
            raise ValueError("need at least one tenant class")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.mean_burst_duration <= 0 or self.mean_calm_duration <= 0:
            raise ValueError("burst/calm durations must be positive")


class _BurstState:
    """Two-state Markov-modulated rate factor, sampled lazily in time."""

    def __init__(self, spec: ProductionSpec, rng: np.random.Generator) -> None:
        self._spec = spec
        self._rng = rng
        self._bursting = False
        self._until = float(rng.exponential(spec.mean_calm_duration))

    def factor_at(self, t: float) -> float:
        while t >= self._until:
            self._bursting = not self._bursting
            mean = (
                self._spec.mean_burst_duration
                if self._bursting
                else self._spec.mean_calm_duration
            )
            self._until += float(self._rng.exponential(mean))
        return self._spec.burst_factor if self._bursting else 1.0


def generate_production_trace(spec: ProductionSpec, seed: int = 0) -> list[Request]:
    """Synthesize a tenant-tagged trace under diurnal + bursty load.

    Returned requests carry ``prefix_id`` / ``prefix_len`` /
    ``prefix_publish_len`` for their tenant's system prompt, so the
    trace exercises the prefix cache when ``ServingConfig.prefix_cache``
    is on and degrades to a plain trace when it is off.
    """
    rng = np.random.default_rng(seed)
    bursts = _BurstState(spec, rng)
    peak = spec.base_qps * (1.0 + spec.diurnal_amplitude) * spec.burst_factor

    weights = np.array([t.weight for t in spec.tenants], dtype=float)
    weights /= weights.sum()

    requests: list[Request] = []
    t = 0.0
    while len(requests) < spec.num_requests:
        t += float(rng.exponential(1.0 / peak))
        diurnal = 1.0 + spec.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / spec.diurnal_period
        )
        rate = spec.base_qps * diurnal * bursts.factor_at(t)
        if rng.random() >= rate / peak:
            continue  # thinned
        tenant_idx = int(rng.choice(len(spec.tenants), p=weights))
        tenant = spec.tenants[tenant_idx]
        prompt, output = spec.dataset.sample_lengths(rng)
        # The system prompt is part of the prompt, not in addition to
        # it: pad short prompts up so the user turn stays non-empty.
        prompt = max(prompt, tenant.system_prompt_len + 1)
        requests.append(
            Request(
                prompt_len=prompt,
                output_len=output,
                arrival_time=t,
                prefix_id=tenant_idx,
                prefix_len=tenant.system_prompt_len,
                prefix_publish_len=tenant.system_prompt_len,
            )
        )
    return requests
