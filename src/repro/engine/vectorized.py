"""Array-backed replica engine: batched events, bit-identical results.

``VectorizedReplicaEngine`` replays exactly the discrete-event
semantics of :class:`repro.engine.replica.ReplicaEngine` — including
multi-stage pipeline parallelism — but holds per-request state in
numpy struct-of-arrays (:mod:`repro.engine.arrays`) and commits a
whole iteration's token progress with a handful of vector operations
instead of per-request object traffic.

The object engine stays the golden reference; this engine must match
it float for float.  Three observations make that possible without a
per-token event heap:

* With one pipeline stage at most one batch is ever in flight, so the
  event structure collapses to three sources — the sorted initial
  arrival array (a cursor), a tiny heap of follow-up arrivals, and the
  single pending batch-completion.  Replaying the object queue's
  ``(time, insertion seq)`` tie-break over those three reproduces its
  pop order exactly.  Multi-stage pipelines add a fourth source, a
  small heap of stage-done/stage-enqueue events whose seqs are
  allocated in exactly the order the object engine pushes them, so
  pipeline bubbles (stage idle waiting on its upstream send) fall out
  of the same event replay rather than a separate bubble model.
* Iteration pricing decomposes into per-component memo tables (linear
  by token counts, decode attention by context length, prefill
  attention by chunk shape, token-count terms) that are reassembled in
  the same order :meth:`ExecutionModel.stage_iteration_time` uses, so
  every float operation matches.
* Token emission timestamps need not be appended per request in the
  hot loop: the engine logs ``(time, rows)`` per iteration and
  rebuilds each ``token_times`` list with one stable sort at
  synchronization points (end of run, fleet snapshot/crash).

Divergence between the two engines is a release blocker; the
differential suite under ``tests/differential`` enforces it.
"""

from __future__ import annotations

import heapq
import math
import time

import numpy as np

from repro.engine.arrays import _CODE_TO_PHASE, PH_FINISHED, RequestArrays
from repro.engine.replica import (
    EngineStats,
    FollowupFn,
    ReplicaEngine,
    SimulationResult,
    TokenObserver,
)
from repro.metrics.timeline import IterationRecord
from repro.parallel.comm import pp_send_time, tp_comm_time
from repro.perf.iteration import ExecutionModel
from repro.scheduling.vectorized import VecBatch, VecScheduler
from repro.types import IterationTime, Request, TokenWork

__all__ = ["VectorizedReplicaEngine"]


class VectorizedReplicaEngine:
    """Discrete-event simulation of one replica over flat arrays.

    Drop-in for :class:`ReplicaEngine` on both single-stage and
    pipeline-parallel deployments: same ``run``/stepped interface,
    same ``SimulationResult``, same floats.  Construction is normally
    via :func:`repro.api.build_engine` with ``ServingConfig.engine``
    set to ``"vectorized"``.
    """

    kind = "vectorized"
    DEFAULT_SWAP_BANDWIDTH = ReplicaEngine.DEFAULT_SWAP_BANDWIDTH

    def __init__(
        self,
        exec_model: ExecutionModel,
        scheduler: VecScheduler,
        swap_bandwidth: float = DEFAULT_SWAP_BANDWIDTH,
        max_inflight_batches: int | None = None,
    ) -> None:
        if swap_bandwidth <= 0:
            raise ValueError("swap_bandwidth must be positive")
        self.exec_model = exec_model
        self.scheduler = scheduler
        self.arrays: RequestArrays = scheduler.A
        self.swap_bandwidth = swap_bandwidth
        self.num_stages = exec_model.parallel.pipeline_parallel
        self.max_inflight = (
            max_inflight_batches
            if max_inflight_batches is not None
            else self.num_stages
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight_batches must be >= 1")
        self.token_observer: TokenObserver | None = None
        self._followup_fn: FollowupFn | None = None

        # Event state: at most one batch in flight plus follow-up
        # arrivals; ``_seq`` continues the object queue's insertion
        # counter so (time, seq) ordering replays its tie-breaks.
        # Pipelines (num_stages > 1) leave ``_busy`` unused and track
        # per-stage execution through ``_pipe_heap`` instead, whose
        # entries carry the same insertion seqs the object engine's
        # EventQueue would allocate.
        self._busy: tuple[float, int, VecBatch] | None = None
        self._followup_heap: list[tuple[float, int, int]] = []
        self._pipe_heap: list[tuple[float, int, int, int, VecBatch]] = []
        self._stage_busy = [False] * self.num_stages
        self._stage_queue: list[list[VecBatch]] = [
            [] for _ in range(self.num_stages)
        ]
        self._inflight = 0
        self._seq = 0
        self._num_events = 0
        self._wall_time_s = 0.0
        # Multiplier on every iteration's wall time — 1.0 is nominal;
        # the fleet raises it to model straggler/throttled replicas.
        # Applied after pricing so the memo caches stay unscaled.
        self.perf_scale = 1.0
        # Pipelined batches keep requests claimed across several stage
        # iterations; the scheduler must exclude them from re-batching
        # exactly like the object scheduler's in-flight set.
        scheduler.track_in_flight = self.num_stages > 1

        # Emission log: (timestamp, rows emitted this iteration).
        self._emit_log: list[tuple[float, np.ndarray]] = []
        # Per-row timestamp lists maintained eagerly only when a
        # followup_fn needs fully synced Request objects mid-run.
        self._eager_times: dict[int, list[float]] | None = None

        # Iteration records as parallel columns, materialized lazily.
        self._rec_stage: list[int] = []
        self._rec_start: list[float] = []
        self._rec_end: list[float] = []
        self._rec_batch_id: list[int] = []
        self._rec_np_tok: list[int] = []
        self._rec_nd_tok: list[int] = []
        self._rec_np_seq: list[int] = []
        self._rec_nd_seq: list[int] = []
        self._rec_breakdown: list[IterationTime] = []
        self._rec_cache: list[IterationRecord] = []

        # Component pricing memos, assembled in stage_iteration_time's
        # exact operation order so totals are bit-identical.
        self._linear_cache: dict[tuple[int, int], float] = {}
        self._prefill_attn: dict[tuple[int, int], float] = {}
        self._token_cache: dict[int, tuple[float, float]] = {}
        self._decode_attn = np.full(1024, np.nan)
        self._overhead = exec_model._fixed_overhead(True)
        self._overhead_rest = exec_model._fixed_overhead(False)
        self._send_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        requests: list[Request],
        max_time: float | None = None,
        followup_fn: "FollowupFn | None" = None,
    ) -> SimulationResult:
        """Simulate until all requests finish (or ``max_time`` elapses)."""
        if not requests:
            raise ValueError("run() needs at least one request")
        wall_start = time.perf_counter()
        self._followup_fn = followup_fn
        if followup_fn is not None and self._eager_times is None:
            self._eager_times = {}
        A = self.arrays
        core = self.scheduler
        first = A.ingest_many(requests)
        core.note_ingested_bulk(first)
        n = A.n - first

        # Initial arrivals sorted by time, stably — the object queue
        # pushes them in input order with seqs 0..n-1, so input
        # position doubles as the tie-break seq.
        order = np.argsort(A.arrival_time[first : A.n], kind="stable")
        arr_rows = (order + first).tolist()
        arr_times = A.arrival_time[order + first].tolist()
        arr_seqs = order.tolist()
        self._seq = n

        heap = self._followup_heap
        pipe = self._pipe_heap
        cursor = 0
        now = 0.0
        while True:
            # Next event = min over (arrival cursor, followup heap,
            # in-flight batch, pipeline stage heap) by (time,
            # insertion seq).
            source = 0
            best_t = math.inf
            best_s = -1
            if cursor < n:
                best_t = arr_times[cursor]
                best_s = arr_seqs[cursor]
                source = 1
            if heap:
                f_t, f_s, _ = heap[0]
                if f_t < best_t or (f_t == best_t and f_s < best_s):
                    best_t, best_s, source = f_t, f_s, 2
            if self._busy is not None:
                b_t, b_s, _ = self._busy
                if b_t < best_t or (b_t == best_t and b_s < best_s):
                    best_t, best_s, source = b_t, b_s, 3
            if pipe:
                p_t, p_s = pipe[0][0], pipe[0][1]
                if p_t < best_t or (p_t == best_t and p_s < best_s):
                    best_t, best_s, source = p_t, p_s, 4
            if source == 0:
                break
            if max_time is not None and best_t > max_time:
                now = best_t
                break
            now = best_t
            self._num_events += 1
            if source == 1:
                row = arr_rows[cursor]
                cursor += 1
                core.add_row(row, now)
                self._try_schedule(now)
            elif source == 2:
                _, _, row = heapq.heappop(heap)
                core.add_row(row, now)
                self._try_schedule(now)
            elif source == 3:
                batch = self._busy[2]
                self._busy = None
                self._on_batch_done(batch, now)
            else:
                _, _, kind, stage_idx, batch = heapq.heappop(pipe)
                if kind == 0:
                    self._on_stage_done(stage_idx, batch, now)
                else:
                    self._on_stage_enqueue(stage_idx, batch, now)

        self._wall_time_s += time.perf_counter() - wall_start
        if max_time is None:
            unfinished = np.nonzero(A.phase[: A.n] != PH_FINISHED)[0]
            if len(unfinished):
                first_stuck = A.requests[int(unfinished[0])]
                raise RuntimeError(
                    f"simulation drained its event queue with {len(unfinished)} "
                    "unfinished requests — scheduler/memory deadlock "
                    f"(first stuck: request {first_stuck.request_id})"
                )
        return self.result(makespan=now)

    # ------------------------------------------------------------------
    # Stepped interface (driven by the fleet simulator)
    # ------------------------------------------------------------------
    def deliver(self, request: Request, now: float) -> None:
        """Inject an arriving request at time ``now`` (stepped mode)."""
        row = self.arrays.ingest(request)
        self.scheduler.note_ingested(row)
        self.scheduler.add_row(row, now)
        self._try_schedule(now)

    def kick(self, now: float) -> None:
        """Re-attempt scheduling after an external state change.

        A replica can stall with waiting work but no internal events
        when admission is blocked (e.g. a capacity_loss fault shrank
        the KV pool); restoring the blocker must nudge the scheduler —
        arrivals are the only other trigger.
        """
        self._try_schedule(now)

    def next_event_time(self) -> float | None:
        """Timestamp of the next internal event, or ``None`` if idle."""
        candidate = self._next_internal()
        return None if candidate is None else candidate[0]

    def step(self) -> float:
        """Pop and process exactly one internal event; returns its time."""
        candidate = self._next_internal()
        if candidate is None:
            raise IndexError("step() on an idle engine")
        now, _, source = candidate
        self._num_events += 1
        if source == 2:
            _, _, row = heapq.heappop(self._followup_heap)
            self.scheduler.add_row(row, now)
            self._try_schedule(now)
        elif source == 3:
            batch = self._busy[2]
            self._busy = None
            self._on_batch_done(batch, now)
        else:
            _, _, kind, stage_idx, batch = heapq.heappop(self._pipe_heap)
            if kind == 0:
                self._on_stage_done(stage_idx, batch, now)
            else:
                self._on_stage_enqueue(stage_idx, batch, now)
        return now

    def _next_internal(self) -> tuple[float, int, int] | None:
        best: tuple[float, int, int] | None = None
        if self._followup_heap:
            f_t, f_s, _ = self._followup_heap[0]
            best = (f_t, f_s, 2)
        if self._busy is not None:
            b_t, b_s, _ = self._busy
            if best is None or (b_t, b_s) < best[:2]:
                best = (b_t, b_s, 3)
        if self._pipe_heap:
            p_t, p_s = self._pipe_heap[0][0], self._pipe_heap[0][1]
            if best is None or (p_t, p_s) < best[:2]:
                best = (p_t, p_s, 4)
        return best

    def pending_requests(self) -> list[Request]:
        """Delivered requests that have not finished (any phase)."""
        self._sync_all()
        A = self.arrays
        rows = np.nonzero(A.phase[: A.n] != PH_FINISHED)[0].tolist()
        return [A.requests[row] for row in rows]

    def num_pending(self) -> int:
        """Number of delivered-but-unfinished requests (O(1))."""
        return self.scheduler.num_pending

    def outstanding_tokens(self) -> int:
        """Prefill+decode tokens still owed across pending requests (O(1))."""
        return self.scheduler.outstanding_tokens

    @property
    def records(self) -> list[IterationRecord]:
        cache = self._rec_cache
        start = len(cache)
        if start < len(self._rec_start):
            cache.extend(
                IterationRecord(
                    stage=st,
                    start=s,
                    end=e,
                    batch_id=b,
                    num_prefill_tokens=pt,
                    num_decode_tokens=dt,
                    num_prefill_seqs=ps,
                    num_decode_seqs=ds,
                    breakdown=bd,
                )
                for st, s, e, b, pt, dt, ps, ds, bd in zip(
                    self._rec_stage[start:],
                    self._rec_start[start:],
                    self._rec_end[start:],
                    self._rec_batch_id[start:],
                    self._rec_np_tok[start:],
                    self._rec_nd_tok[start:],
                    self._rec_np_seq[start:],
                    self._rec_nd_seq[start:],
                    self._rec_breakdown[start:],
                )
            )
        return cache

    @property
    def all_requests(self) -> list[Request]:
        self._sync_all()
        return self.arrays.requests

    def engine_stats(self) -> EngineStats:
        """Counters so far — valid mid-run (the fleet polls these)."""
        return EngineStats(
            kind=self.kind,
            num_events=self._num_events,
            num_batches=self.scheduler.num_scheduled_batches,
            wall_time_s=self._wall_time_s,
        )

    def result(self, makespan: float) -> SimulationResult:
        """Snapshot of this engine's state as a ``SimulationResult``."""
        self._sync_all()
        A = self.arrays
        unfinished_rows = np.nonzero(A.phase[: A.n] != PH_FINISHED)[0].tolist()
        return SimulationResult(
            requests=list(A.requests),
            records=self.records,
            makespan=makespan,
            num_stages=self.num_stages,
            num_preemptions=self.scheduler.num_preemptions,
            unfinished=[A.requests[row] for row in unfinished_rows],
            cache_stats=getattr(self.exec_model, "cache_stats", None),
            engine_stats=self.engine_stats(),
            prefix_stats=getattr(self.scheduler.memory, "prefix_stats", None),
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _try_schedule(self, now: float) -> None:
        if self.num_stages == 1:
            if self._busy is not None:
                return
            batch = self.scheduler.schedule(now)
            if batch is None:
                return
            breakdown = self._price(batch)
            if batch.swap_bytes:
                swap_time = batch.swap_bytes / self.swap_bandwidth
                breakdown = breakdown + IterationTime(
                    0.0, 0.0, 0.0, swap_time, 0.0
                )
            if self.perf_scale != 1.0:
                breakdown = breakdown.scaled(self.perf_scale)
            end = now + breakdown.total
            self._rec_stage.append(0)
            self._rec_start.append(now)
            self._rec_end.append(end)
            self._rec_batch_id.append(batch.batch_id)
            self._rec_np_tok.append(batch.num_prefill_tokens)
            self._rec_nd_tok.append(batch.num_decode_tokens)
            self._rec_np_seq.append(batch.num_prefill_seqs)
            self._rec_nd_seq.append(batch.num_decode_seqs)
            self._rec_breakdown.append(breakdown)
            seq = self._seq
            self._seq = seq + 1
            self._busy = (end, seq, batch)
            return
        while not self._stage_busy[0] and self._inflight < self.max_inflight:
            batch = self.scheduler.schedule(now)
            if batch is None:
                return
            self._inflight += 1
            self._start_stage(0, batch, now)

    # ------------------------------------------------------------------
    # Pipeline stage machinery (num_stages > 1 only)
    # ------------------------------------------------------------------
    def _start_stage(self, stage_idx: int, batch: VecBatch, now: float) -> None:
        self._stage_busy[stage_idx] = True
        breakdown = self._price(
            batch, stage_idx == 0, stage_idx == self.num_stages - 1
        )
        if stage_idx == 0 and batch.swap_bytes:
            swap_time = batch.swap_bytes / self.swap_bandwidth
            breakdown = breakdown + IterationTime(0.0, 0.0, 0.0, swap_time, 0.0)
        if self.perf_scale != 1.0:
            breakdown = breakdown.scaled(self.perf_scale)
        end = now + breakdown.total
        self._rec_stage.append(stage_idx)
        self._rec_start.append(now)
        self._rec_end.append(end)
        self._rec_batch_id.append(batch.batch_id)
        self._rec_np_tok.append(batch.num_prefill_tokens)
        self._rec_nd_tok.append(batch.num_decode_tokens)
        self._rec_np_seq.append(batch.num_prefill_seqs)
        self._rec_nd_seq.append(batch.num_decode_seqs)
        self._rec_breakdown.append(breakdown)
        heapq.heappush(self._pipe_heap, (end, self._seq, 0, stage_idx, batch))
        self._seq += 1

    def _on_stage_done(self, stage_idx: int, batch: VecBatch, now: float) -> None:
        self._stage_busy[stage_idx] = False
        if stage_idx < self.num_stages - 1:
            num_tokens = batch.num_tokens
            send = self._send_cache.get(num_tokens)
            if send is None:
                send = pp_send_time(
                    self.exec_model.model, self.exec_model.parallel, num_tokens
                )
                self._send_cache[num_tokens] = send
            heapq.heappush(
                self._pipe_heap, (now + send, self._seq, 1, stage_idx + 1, batch)
            )
            self._seq += 1
        else:
            self._inflight -= 1
            self._commit_batch(batch, now)
        queue = self._stage_queue[stage_idx]
        if queue:
            self._start_stage(stage_idx, queue.pop(0), now)
        self._try_schedule(now)

    def _on_stage_enqueue(
        self, stage_idx: int, batch: VecBatch, now: float
    ) -> None:
        if self._stage_busy[stage_idx]:
            self._stage_queue[stage_idx].append(batch)
        else:
            self._start_stage(stage_idx, batch, now)

    def _on_batch_done(self, batch: VecBatch, now: float) -> None:
        self._commit_batch(batch, now)
        self._try_schedule(now)

    def _commit_batch(self, batch: VecBatch, now: float) -> None:
        A = self.arrays
        core = self.scheduler
        finished, prefill_emits = core.on_batch_complete(batch, now)
        decode_rows = batch.decode_rows
        if len(decode_rows):
            self._emit_log.append((now, decode_rows))
        if prefill_emits:
            self._emit_log.append((now, np.array(prefill_emits, dtype=np.int64)))
        if self._eager_times is not None:
            eager = self._eager_times
            for row in decode_rows.tolist():
                eager.setdefault(row, []).append(now)
            for row in prefill_emits:
                eager.setdefault(row, []).append(now)
        if self.token_observer is not None and len(decode_rows):
            # Prefill-completion emissions are always a request's first
            # token (no predecessor), so only decode rows with ≥ 2
            # emitted tokens produce TBT samples — in batch order, like
            # the object engine's walk over batch.items.
            sampled = decode_rows[A.num_emitted[decode_rows] >= 2]
            if len(sampled):
                observer = self.token_observer
                requests = A.requests
                prevs = A.prev_emit[sampled].tolist()
                for row, prev in zip(sampled.tolist(), prevs):
                    observer(requests[row], now - prev, now)
        if self._followup_fn is not None:
            for row in finished:
                self._sync_row(row)
                for followup in self._followup_fn(A.requests[row], now):
                    if followup.arrival_time < now - 1e-9:
                        raise ValueError(
                            "followup_fn returned a request arriving in "
                            f"the past ({followup.arrival_time} < {now})"
                        )
                    new_row = A.ingest(followup)
                    core.note_ingested(new_row)
                    heapq.heappush(
                        self._followup_heap,
                        (followup.arrival_time, self._seq, new_row),
                    )
                    self._seq += 1

    # ------------------------------------------------------------------
    # Pricing (memoized components, object-identical assembly)
    # ------------------------------------------------------------------
    def _price(
        self, batch: VecBatch, is_first: bool = True, is_last: bool = True
    ) -> IterationTime:
        num_tokens = batch.num_tokens
        key = (num_tokens, batch.num_logit_tokens if is_last else 0)
        linear = self._linear_cache.get(key)
        if linear is None:
            linear = self.exec_model.linear.stage_time(num_tokens, key[1])
            self._linear_cache[key] = linear
        if len(batch.decode_rows):
            values = self._decode_attention(batch.decode_ctx)
        else:
            values = []
        prefill_attn = self._prefill_attn
        for chunk, past in zip(batch.p_chunk, batch.p_past):
            work_key = (chunk, past)
            value = prefill_attn.get(work_key)
            if value is None:
                value = self.exec_model.attention.work_time(
                    TokenWork(num_tokens=chunk, past_len=past, is_prefill=True)
                )
                prefill_attn[work_key] = value
            values.append(value)
        # Builtin sum over the batch-ordered list replays the object
        # model's left-to-right float accumulation exactly.
        attention = sum(values)
        token_terms = self._token_cache.get(num_tokens)
        if token_terms is None:
            model = self.exec_model
            token_terms = (
                model._others_time(num_tokens),
                tp_comm_time(
                    model.model, model.parallel, num_tokens, model.stage_layers
                ),
            )
            self._token_cache[num_tokens] = token_terms
        return IterationTime(
            linear,
            attention,
            token_terms[0],
            token_terms[1],
            self._overhead if is_first else self._overhead_rest,
        )

    def _decode_attention(self, ctx: np.ndarray) -> list[float]:
        table = self._decode_attn
        max_ctx = int(ctx.max())
        if max_ctx >= table.size:
            grown = np.full(max(table.size * 2, max_ctx + 1), np.nan)
            grown[: table.size] = table
            self._decode_attn = table = grown
        values = table[ctx]
        missing = np.isnan(values)
        if missing.any():
            work_time = self.exec_model.attention.work_time
            for context_len in np.unique(ctx[missing]).tolist():
                table[context_len] = work_time(TokenWork.decode(context_len))
            values = table[ctx]
        return values.tolist()

    # ------------------------------------------------------------------
    # Object synchronization
    # ------------------------------------------------------------------
    def _sync_all(self) -> None:
        self.arrays.sync_out(self._emit_log)

    def _sync_row(self, row: int) -> None:
        """Write one row back to its Request (followup_fn handoff)."""
        A = self.arrays
        state = A.requests[row].__dict__
        state["prefill_target"] = int(A.prefill_target[row])
        state["prefill_done"] = int(A.prefill_done[row])
        state["decode_steps"] = int(A.decode_steps[row])
        state["num_emitted"] = int(A.num_emitted[row])
        state["num_restarts"] = int(A.num_restarts[row])
        state["phase"] = _CODE_TO_PHASE[int(A.phase[row])]
        state["first_scheduled_at"] = _scalar(A.first_scheduled_at[row])
        state["first_token_at"] = _scalar(A.first_token_at[row])
        state["finished_at"] = _scalar(A.finished_at[row])
        base = A.token_base.get(row)
        new_times = (
            list(self._eager_times.get(row, ()))
            if self._eager_times is not None
            else []
        )
        state["token_times"] = (base + new_times) if base else new_times


def _scalar(value: float) -> float | None:
    value = float(value)
    return None if math.isnan(value) else value
