"""Discrete-event serving engine."""

from repro.engine.arrays import RequestArrays
from repro.engine.replica import EngineStats, ReplicaEngine, SimulationResult
from repro.engine.simulator import EventQueue
from repro.engine.vectorized import VectorizedReplicaEngine

__all__ = [
    "EngineStats",
    "EventQueue",
    "ReplicaEngine",
    "RequestArrays",
    "SimulationResult",
    "VectorizedReplicaEngine",
]
