"""Discrete-event serving engine."""

from repro.engine.replica import ReplicaEngine, SimulationResult
from repro.engine.simulator import EventQueue

__all__ = ["EventQueue", "ReplicaEngine", "SimulationResult"]
