"""The replica serving engine: scheduler + execution model + pipeline.

``ReplicaEngine`` simulates one model replica end to end.  The first
pipeline stage doubles as the scheduling point: whenever it is free
(and the in-flight micro-batch cap allows), the scheduler forms the
next batch, which then flows through the stages, paying per-stage
execution time plus inter-stage activation transfers.  Token progress
is committed when a batch leaves the *last* stage, exactly like a real
iteration-level serving system (§2.5, §3.3).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.batch import Batch
from repro.engine.simulator import EventQueue
from repro.metrics.timeline import IterationRecord
from repro.perf.iteration import ExecutionModel
from repro.scheduling.base import Scheduler
from repro.types import IterationTime, Request

if TYPE_CHECKING:
    from repro.memory.prefix import PrefixCacheStats
    from repro.perf.cache import CacheStats

_ARRIVAL = "arrival"
_STAGE_DONE = "stage_done"
_STAGE_ENQUEUE = "stage_enqueue"

# Called once per finished request; returns follow-up requests to
# inject (e.g. the next round of a conversation).
FollowupFn = Callable[[Request, float], list[Request]]

# Called once per emitted decode token with (request, tbt_sample, now);
# lets an external driver (the fleet simulator) observe live per-replica
# TBT without re-scanning request state.
TokenObserver = Callable[[Request, float, float], None]


@dataclass(frozen=True)
class EngineStats:
    """How the engine itself performed (not the simulated system)."""

    kind: str
    num_events: int
    num_batches: int
    wall_time_s: float

    @property
    def events_per_batch(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return self.num_events / self.num_batches


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    requests: list[Request]
    records: list[IterationRecord]
    makespan: float
    num_stages: int
    num_preemptions: int = 0
    unfinished: list[Request] = field(default_factory=list)
    # Snapshot of the execution-model cache counters at the end of the
    # run (None when the engine ran on an uncached model).  A model
    # shared across runs (e.g. one capacity search) accumulates, so
    # per-run deltas require differencing consecutive snapshots.
    cache_stats: "CacheStats | None" = None
    # Filled by ``run()``; None for results assembled elsewhere (fleet
    # crash snapshots, merged fleet results).  Excluded from the
    # differential golden comparison alongside cache_stats — it
    # describes the engine, not the simulated system.
    engine_stats: "EngineStats | None" = None
    # Prefix-cache counters from the scheduler's memory manager (None
    # when prefix caching is off or the allocator is reservation-style).
    # Excluded from the differential golden comparison only in the
    # sense that both engines must produce *equal* stats — the
    # conversation differential test asserts exactly that.
    prefix_stats: "PrefixCacheStats | None" = None

    @property
    def finished_requests(self) -> list[Request]:
        return [r for r in self.requests if r.is_finished]


class _Stage:
    """One pipeline stage: either executing a batch or queueing them."""

    __slots__ = ("busy", "queue")

    def __init__(self) -> None:
        self.busy = False
        self.queue: list[Batch] = []


class ReplicaEngine:
    """Discrete-event simulation of one serving replica."""

    # The golden-reference core; the vectorized engine reports
    # kind="vectorized" and must match this one bit-for-bit.
    kind = "object"

    # Effective host<->device copy bandwidth for KV swap traffic
    # (PCIe-4.0 x16 class, overlap-corrected).
    DEFAULT_SWAP_BANDWIDTH = 20e9

    def __init__(
        self,
        exec_model: ExecutionModel,
        scheduler: Scheduler,
        max_inflight_batches: int | None = None,
        swap_bandwidth: float = DEFAULT_SWAP_BANDWIDTH,
    ) -> None:
        if swap_bandwidth <= 0:
            raise ValueError("swap_bandwidth must be positive")
        self.exec_model = exec_model
        self.scheduler = scheduler
        self.swap_bandwidth = swap_bandwidth
        self.num_stages = exec_model.parallel.pipeline_parallel
        # Classic micro-batch pipelining: at most one micro-batch per
        # stage in flight, keeping the pipe full without runaway queues.
        self.max_inflight = (
            max_inflight_batches if max_inflight_batches is not None else self.num_stages
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight_batches must be >= 1")

        self._events = EventQueue()
        self._stages = [_Stage() for _ in range(self.num_stages)]
        self._inflight = 0
        self._records: list[IterationRecord] = []
        self._followup_fn: FollowupFn | None = None
        self._all_requests: list[Request] = []
        self.token_observer: TokenObserver | None = None
        self._num_events = 0
        self._wall_time_s = 0.0
        # Multiplier on every iteration's wall time — 1.0 is nominal;
        # the fleet raises it to model straggler/throttled replicas.
        self.perf_scale = 1.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        requests: list[Request],
        max_time: float | None = None,
        followup_fn: "FollowupFn | None" = None,
    ) -> SimulationResult:
        """Simulate until all requests finish (or ``max_time`` elapses).

        ``followup_fn(request, now)`` is called once per finished
        request and may return new requests to inject (their
        ``arrival_time`` must be ≥ ``now``) — this is how closed-loop
        workloads such as multi-round conversations are driven.
        """
        if not requests:
            raise ValueError("run() needs at least one request")
        wall_start = time.perf_counter()
        self._followup_fn = followup_fn
        self._all_requests = list(requests)
        for request in requests:
            self._events.push(request.arrival_time, _ARRIVAL, request)

        now = 0.0
        while self._events:
            now, kind, payload = self._events.pop()
            if max_time is not None and now > max_time:
                break
            self._num_events += 1
            self._dispatch(kind, payload, now)
        self._wall_time_s += time.perf_counter() - wall_start

        unfinished = [r for r in self._all_requests if not r.is_finished]
        if unfinished and max_time is None:
            raise RuntimeError(
                f"simulation drained its event queue with {len(unfinished)} "
                "unfinished requests — scheduler/memory deadlock "
                f"(first stuck: request {unfinished[0].request_id})"
            )
        return self.result(makespan=now)

    # ------------------------------------------------------------------
    # Stepped interface (driven by the fleet simulator)
    # ------------------------------------------------------------------
    # ``run`` owns the event loop for a standalone replica.  A fleet
    # driver instead *steps* each replica through a shared virtual
    # clock: it delivers routed arrivals with ``deliver`` and pops one
    # internal event at a time with ``step``, interleaving replicas in
    # global time order.  Delivering an arrival at time t after all
    # internal events strictly before t — and before those at exactly
    # t — reproduces ``run``'s pop order bit for bit, because ``run``
    # pushes every arrival before any stage event, so arrivals win the
    # queue's insertion-order tie-break.

    def deliver(self, request: Request, now: float) -> None:
        """Inject an arriving request at time ``now`` (stepped mode)."""
        self._all_requests.append(request)
        self.scheduler.add_request(request, now)
        self._try_schedule(now)

    def kick(self, now: float) -> None:
        """Re-attempt scheduling after an external state change.

        A replica can stall with waiting work but no internal events
        when admission is blocked (e.g. a capacity_loss fault shrank
        the KV pool); restoring the blocker must nudge the scheduler —
        arrivals are the only other trigger.
        """
        self._try_schedule(now)

    def next_event_time(self) -> float | None:
        """Timestamp of the next internal event, or ``None`` if idle."""
        return self._events.peek_time()

    def step(self) -> float:
        """Pop and process exactly one internal event; returns its time."""
        now, kind, payload = self._events.pop()
        self._num_events += 1
        self._dispatch(kind, payload, now)
        return now

    def pending_requests(self) -> list[Request]:
        """Delivered requests that have not finished (any phase)."""
        return [r for r in self._all_requests if not r.is_finished]

    # Live workload gauges for the fleet router.  The object engine
    # recomputes them by scanning; the vectorized engine keeps them as
    # counters — both must return the same integers for a given state.
    def num_pending(self) -> int:
        """Number of delivered-but-unfinished requests."""
        return sum(1 for r in self._all_requests if not r.is_finished)

    def outstanding_tokens(self) -> int:
        """Prefill+decode tokens still owed across pending requests."""
        return sum(
            r.remaining_prefill + r.remaining_output
            for r in self._all_requests
            if not r.is_finished
        )

    @property
    def records(self) -> list[IterationRecord]:
        return self._records

    @property
    def all_requests(self) -> list[Request]:
        return self._all_requests

    def engine_stats(self) -> EngineStats:
        """Counters so far — valid mid-run (the fleet polls these)."""
        return EngineStats(
            kind=self.kind,
            num_events=self._num_events,
            num_batches=self.scheduler.num_scheduled_batches,
            wall_time_s=self._wall_time_s,
        )

    def result(self, makespan: float) -> SimulationResult:
        """Snapshot of this engine's state as a ``SimulationResult``."""
        return SimulationResult(
            requests=list(self._all_requests),
            records=self._records,
            makespan=makespan,
            num_stages=self.num_stages,
            num_preemptions=self.scheduler.num_preemptions,
            unfinished=[r for r in self._all_requests if not r.is_finished],
            cache_stats=getattr(self.exec_model, "cache_stats", None),
            engine_stats=self.engine_stats(),
            prefix_stats=getattr(self.scheduler.memory, "prefix_stats", None),
        )

    def _dispatch(self, kind: str, payload: object, now: float) -> None:
        if kind == _ARRIVAL:
            self.scheduler.add_request(payload, now)
            self._try_schedule(now)
        elif kind == _STAGE_DONE:
            self._on_stage_done(*payload, now=now)
        elif kind == _STAGE_ENQUEUE:
            self._on_stage_enqueue(*payload, now=now)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown event kind {kind!r}")

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _try_schedule(self, now: float) -> None:
        stage0 = self._stages[0]
        while not stage0.busy and self._inflight < self.max_inflight:
            batch = self.scheduler.schedule(now)
            if batch is None:
                return
            self._inflight += 1
            self._start_stage(0, batch, now)

    def _start_stage(self, stage_idx: int, batch: Batch, now: float) -> None:
        stage = self._stages[stage_idx]
        stage.busy = True
        breakdown = self.exec_model.stage_iteration_time(
            batch.works,
            is_first_stage=stage_idx == 0,
            is_last_stage=stage_idx == self.num_stages - 1,
        )
        if stage_idx == 0 and batch.swap_bytes:
            swap_time = batch.swap_bytes / self.swap_bandwidth
            breakdown = breakdown + IterationTime(0.0, 0.0, 0.0, swap_time, 0.0)
        if self.perf_scale != 1.0:
            breakdown = breakdown.scaled(self.perf_scale)
        end = now + breakdown.total
        self._records.append(
            IterationRecord(
                stage=stage_idx,
                start=now,
                end=end,
                batch_id=batch.batch_id,
                num_prefill_tokens=batch.num_prefill_tokens,
                num_decode_tokens=batch.num_decode_tokens,
                num_prefill_seqs=batch.num_prefill_seqs,
                num_decode_seqs=batch.num_decode_seqs,
                breakdown=breakdown,
            )
        )
        self._events.push(end, _STAGE_DONE, (stage_idx, batch))

    def _on_stage_done(self, stage_idx: int, batch: Batch, now: float) -> None:
        stage = self._stages[stage_idx]
        stage.busy = False

        if stage_idx < self.num_stages - 1:
            send = self.exec_model.pipeline_send_time(batch.works)
            self._events.push(now + send, _STAGE_ENQUEUE, (stage_idx + 1, batch))
        else:
            self._inflight -= 1
            finished = self.scheduler.on_batch_complete(batch, now)
            if self.token_observer is not None:
                for item in batch.items:
                    times = item.request.token_times
                    # A token emitted by *this* batch carries timestamp
                    # ``now``; the gap to its predecessor is one TBT
                    # sample (the first token has no predecessor).
                    if len(times) >= 2 and times[-1] == now:
                        self.token_observer(item.request, now - times[-2], now)
            if self._followup_fn is not None:
                for request in finished:
                    for followup in self._followup_fn(request, now):
                        if followup.arrival_time < now - 1e-9:
                            raise ValueError(
                                "followup_fn returned a request arriving in "
                                f"the past ({followup.arrival_time} < {now})"
                            )
                        self._all_requests.append(followup)
                        self._events.push(followup.arrival_time, _ARRIVAL, followup)

        # The freed stage pulls its next queued micro-batch, and a free
        # first stage asks the scheduler for fresh work.
        if stage.queue:
            self._start_stage(stage_idx, stage.queue.pop(0), now)
        self._try_schedule(now)

    def _on_stage_enqueue(self, stage_idx: int, batch: Batch, now: float) -> None:
        stage = self._stages[stage_idx]
        if stage.busy:
            stage.queue.append(batch)
        else:
            self._start_stage(stage_idx, batch, now)
