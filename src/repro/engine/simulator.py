"""Minimal discrete-event core: a clock and an ordered event queue.

Events are ``(time, kind, payload)``; ties break by insertion order so
the simulation is fully deterministic for a given input.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False)


class EventQueue:
    """Deterministic min-heap of timestamped events."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self.now = 0.0

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        if not math.isfinite(time):
            # NaN compares false against everything, so a NaN-timed
            # entry would silently corrupt the heap invariant instead
            # of failing; reject inf alongside it for the same reason.
            raise ValueError(f"cannot schedule event at non-finite time {time!r}")
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule event at {time} before now={self.now}")
        heapq.heappush(self._heap, _Entry(time, next(self._counter), kind, payload))

    def peek_time(self) -> float | None:
        """The timestamp of the next event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._check_finite(self._heap[0].time)

    def pop(self) -> tuple[float, str, Any]:
        entry = heapq.heappop(self._heap)
        self.now = self._check_finite(entry.time)
        return entry.time, entry.kind, entry.payload

    def _check_finite(self, time: float) -> float:
        # Guarded on pop/peek as well as push: an entry that slipped in
        # around ``push`` (direct heap surgery, a buggy subclass) must
        # fail loudly here — a NaN at the heap root compares false
        # against everything and silently reorders every later pop.
        if not math.isfinite(time):
            raise ValueError(f"event queue contains non-finite time {time!r}")
        return time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
