"""Struct-of-arrays mirror of per-request serving state.

The vectorized engine keeps every mutable :class:`repro.types.Request`
field in flat numpy arrays, indexed by a dense per-engine *row* id.
The original ``Request`` objects are retained untouched during the hot
loop and synchronized back (``sync_out``) only at observation points —
end of run, fleet snapshots of pending work, crash failover — so the
engine presents exactly the same object-level results as the golden
object engine while iterating over arrays.

Token emission timestamps are not appended per token; the engine logs
``(time, rows)`` pairs per iteration and :meth:`materialize_token_times`
reconstructs every per-request ``token_times`` list in one stable sort
at sync time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.types import Request, RequestPhase

# Phase codes (order matches nothing external; mapped explicitly).
PH_QUEUED = 0
PH_PREFILL = 1
PH_DECODE = 2
PH_FINISHED = 3
PH_PREEMPTED = 4

_PHASE_TO_CODE = {
    RequestPhase.QUEUED: PH_QUEUED,
    RequestPhase.PREFILL: PH_PREFILL,
    RequestPhase.DECODE: PH_DECODE,
    RequestPhase.FINISHED: PH_FINISHED,
    RequestPhase.PREEMPTED: PH_PREEMPTED,
}
_CODE_TO_PHASE = [
    RequestPhase.QUEUED,
    RequestPhase.PREFILL,
    RequestPhase.DECODE,
    RequestPhase.FINISHED,
    RequestPhase.PREEMPTED,
]

_INT_FIELDS = (
    "prompt_len",
    "output_len",
    "prefill_target",
    "prefill_done",
    "decode_steps",
    "num_emitted",
    "num_restarts",
    "phase",
    # Prefix-cache identity (immutable; -1 encodes None for the id and
    # the publish cap).
    "prefix_id",
    "prefix_len",
    "prefix_publish_len",
)
_FLOAT_FIELDS = (
    "arrival_time",
    "first_scheduled_at",
    "first_token_at",
    "finished_at",
    # Timestamps of the last two token emissions — what the object
    # engine reads back from ``token_times[-1]``/``[-2]`` for the
    # per-token observer callback.
    "last_emit",
    "prev_emit",
)


class RequestArrays:
    """Flat per-request state; rows are assigned in delivery order."""

    _INITIAL_CAPACITY = 1024

    def __init__(self) -> None:
        self.n = 0
        self._capacity = 0
        self.requests: list[Request] = []
        # Rows whose Request arrived with a non-empty token_times list
        # (fleet failover re-delivery): the pre-existing timestamps are
        # re-used verbatim when token_times is rebuilt at sync time.
        self.token_base: dict[int, list[float]] = {}
        for name in _INT_FIELDS + _FLOAT_FIELDS:
            setattr(self, name, np.empty(0))
        self._grow(self._INITIAL_CAPACITY)

    # -- storage -------------------------------------------------------
    def _grow(self, min_capacity: int) -> None:
        new_cap = max(self._capacity * 2, self._INITIAL_CAPACITY)
        while new_cap < min_capacity:
            new_cap *= 2
        for name in _INT_FIELDS:
            old = getattr(self, name)
            arr = np.zeros(new_cap, dtype=np.int64)
            arr[: self.n] = old[: self.n]
            setattr(self, name, arr)
        for name in _FLOAT_FIELDS:
            old = getattr(self, name)
            arr = np.full(new_cap, np.nan)
            arr[: self.n] = old[: self.n]
            setattr(self, name, arr)
        self._capacity = new_cap

    # -- ingest --------------------------------------------------------
    def ingest(self, request: Request) -> int:
        """Mirror one Request into a fresh row; returns the row index."""
        row = self.n
        if row >= self._capacity:
            self._grow(row + 1)
        self.n = row + 1
        self.requests.append(request)
        self.prompt_len[row] = request.prompt_len
        self.output_len[row] = request.output_len
        self.prefill_target[row] = request.prefill_target
        self.prefill_done[row] = request.prefill_done
        self.decode_steps[row] = request.decode_steps
        self.num_emitted[row] = request.num_emitted
        self.num_restarts[row] = request.num_restarts
        self.phase[row] = _PHASE_TO_CODE[request.phase]
        self.prefix_id[row] = -1 if request.prefix_id is None else request.prefix_id
        self.prefix_len[row] = request.prefix_len
        self.prefix_publish_len[row] = (
            -1 if request.prefix_publish_len is None else request.prefix_publish_len
        )
        self.arrival_time[row] = request.arrival_time
        self.first_scheduled_at[row] = _none_to_nan(request.first_scheduled_at)
        self.first_token_at[row] = _none_to_nan(request.first_token_at)
        self.finished_at[row] = _none_to_nan(request.finished_at)
        times = request.token_times
        if times:
            self.token_base[row] = list(times)
            self.last_emit[row] = times[-1]
            if len(times) >= 2:
                self.prev_emit[row] = times[-2]
        return row

    def ingest_many(self, requests: list[Request]) -> int:
        """Bulk-mirror a trace; returns the first row index assigned.

        Field-wise list comprehensions keep the per-request Python cost
        to a handful of attribute reads — this is what makes a
        10⁶-request ingest a sub-second affair.
        """
        first = self.n
        n_new = len(requests)
        if first + n_new > self._capacity:
            self._grow(first + n_new)
        self.n = first + n_new
        self.requests.extend(requests)
        sl = slice(first, first + n_new)
        self.prompt_len[sl] = [r.prompt_len for r in requests]
        self.output_len[sl] = [r.output_len for r in requests]
        self.prefill_target[sl] = [r.prefill_target for r in requests]
        self.prefill_done[sl] = [r.prefill_done for r in requests]
        self.decode_steps[sl] = [r.decode_steps for r in requests]
        self.num_emitted[sl] = [r.num_emitted for r in requests]
        self.num_restarts[sl] = [r.num_restarts for r in requests]
        self.phase[sl] = [_PHASE_TO_CODE[r.phase] for r in requests]
        self.prefix_id[sl] = [
            -1 if r.prefix_id is None else r.prefix_id for r in requests
        ]
        self.prefix_len[sl] = [r.prefix_len for r in requests]
        self.prefix_publish_len[sl] = [
            -1 if r.prefix_publish_len is None else r.prefix_publish_len
            for r in requests
        ]
        self.arrival_time[sl] = [r.arrival_time for r in requests]
        self.first_scheduled_at[sl] = [
            _none_to_nan(r.first_scheduled_at) for r in requests
        ]
        self.first_token_at[sl] = [_none_to_nan(r.first_token_at) for r in requests]
        self.finished_at[sl] = [_none_to_nan(r.finished_at) for r in requests]
        for offset, request in enumerate(requests):
            times = request.token_times
            if times:
                row = first + offset
                self.token_base[row] = list(times)
                self.last_emit[row] = times[-1]
                if len(times) >= 2:
                    self.prev_emit[row] = times[-2]
        return first

    # -- sync back to objects ------------------------------------------
    def materialize_token_times(
        self, emit_log: list[tuple[float, np.ndarray]]
    ) -> list[list[float]]:
        """Rebuild per-row emission timestamp lists from the batch log.

        Log entries arrive in chronological order, so a stable sort by
        row keeps each row's timestamps chronological too.
        """
        per_row: list[list[float]] = [[] for _ in range(self.n)]
        if not emit_log:
            return per_row
        rows_all = np.concatenate([rows for _, rows in emit_log])
        counts = [len(rows) for _, rows in emit_log]
        times_all = np.repeat(np.array([t for t, _ in emit_log]), counts)
        order = np.argsort(rows_all, kind="stable")
        rows_sorted = rows_all[order]
        times_sorted = times_all[order]
        bounds = np.searchsorted(rows_sorted, np.arange(self.n + 1))
        starts = bounds[:-1].tolist()
        ends = bounds[1:].tolist()
        for row, (a, b) in enumerate(zip(starts, ends)):
            if a != b:
                per_row[row] = times_sorted[a:b].tolist()
        return per_row

    def sync_out(self, emit_log: list[tuple[float, np.ndarray]]) -> None:
        """Write array state back into every mirrored Request object.

        Idempotent: ``token_times`` is rebuilt from the delivery-time
        base plus the materialized emission log each call.
        """
        n = self.n
        if n == 0:
            return
        per_row_times = self.materialize_token_times(emit_log)
        token_base = self.token_base
        iterator = zip(
            self.requests,
            per_row_times,
            self.prefill_target[:n].tolist(),
            self.prefill_done[:n].tolist(),
            self.decode_steps[:n].tolist(),
            self.num_emitted[:n].tolist(),
            self.num_restarts[:n].tolist(),
            self.phase[:n].tolist(),
            self.first_scheduled_at[:n].tolist(),
            self.first_token_at[:n].tolist(),
            self.finished_at[:n].tolist(),
        )
        for row, (
            request,
            new_times,
            prefill_target,
            prefill_done,
            decode_steps,
            num_emitted,
            num_restarts,
            phase,
            first_scheduled_at,
            first_token_at,
            finished_at,
        ) in enumerate(iterator):
            state = request.__dict__
            state["prefill_target"] = prefill_target
            state["prefill_done"] = prefill_done
            state["decode_steps"] = decode_steps
            state["num_emitted"] = num_emitted
            state["num_restarts"] = num_restarts
            state["phase"] = _CODE_TO_PHASE[phase]
            state["first_scheduled_at"] = _nan_to_none(first_scheduled_at)
            state["first_token_at"] = _nan_to_none(first_token_at)
            state["finished_at"] = _nan_to_none(finished_at)
            base = token_base.get(row)
            state["token_times"] = (base + new_times) if base else new_times


def _none_to_nan(value: float | None) -> float:
    return math.nan if value is None else value


def _nan_to_none(value: float) -> float | None:
    return None if math.isnan(value) else value
