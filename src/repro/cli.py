"""Command-line interface: quick simulations without writing code.

Examples::

    python -m repro list
    python -m repro simulate --model yi-34b --tp 2 --dataset arxiv_summarization \
        --scheduler vllm --qps 0.4 --requests 96
    python -m repro capacity --model mistral-7b --dataset openchat_sharegpt4 \
        --scheduler sarathi --slo strict
    python -m repro budget --model llama2-70b --gpu a40-48gb --tp 4 --pp 2
    python -m repro fleet --replicas 4 --qps 4.0 --fault-rate 0.02 \
        --router slo-aware --max-queue-depth 64
    python -m repro reproduce fig10 --scale smoke --jobs 4 --cache-dir .perf-cache
"""

from __future__ import annotations

import argparse
import os

from repro.api import Deployment, ServingConfig, simulate
from repro.experiments.capacity_runner import serving_config_for
from repro.experiments.common import Scale, perf_cache_from_env
from repro.hardware.catalog import ETHERNET_100G, get_gpu
from repro.metrics.slo import derived_slo
from repro.models.catalog import get_model, list_models
from repro.parallel.config import ParallelConfig
from repro.perf.profiler import (
    compute_token_budget,
    derive_slo,
    profile_token_budgets,
    reference_decode_time,
)
from repro.scheduling.registry import list_specs, resolve
from repro.workload.datasets import generate_requests, get_dataset


def _add_deployment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="mistral-7b", help="model name (see `list`)")
    parser.add_argument("--gpu", default="a100-80gb", help="GPU SKU")
    parser.add_argument("--tp", type=int, default=1, help="tensor-parallel degree")
    parser.add_argument("--pp", type=int, default=1, help="pipeline-parallel degree")
    parser.add_argument(
        "--cross-node-pp",
        action="store_true",
        help="use 100G Ethernet for the pipeline link (default NVLink)",
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["object", "vectorized"],
        default=None,
        help="simulation core (default object, or REPRO_ENGINE); the "
        "vectorized core is bit-identical and much faster at scale",
    )


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Only override ServingConfig.engine when --engine was given, so
    the REPRO_ENGINE environment default keeps working."""
    if getattr(args, "engine", None) is None:
        return {}
    return {"engine": args.engine}


def _add_scheduler_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler",
        default=None,
        metavar="NAME",
        help="any registered scheduler name (see `schedulers`; default "
        "sarathi, or REPRO_SCHEDULER)",
    )


def _scheduler_from(args: argparse.Namespace) -> str:
    """Resolve the --scheduler flag (or REPRO_SCHEDULER, or sarathi)
    against the registry now, so typos fail with the did-you-mean error
    before any simulation work starts."""
    name = args.scheduler
    if name is None:
        name = os.environ.get("REPRO_SCHEDULER", "sarathi")
    resolve(name)
    return name


def _add_perf_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--perf-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="memoize execution-model pricing (bit-identical results; "
        "default on, or REPRO_PERF_CACHE)",
    )


def _add_prefix_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prefix-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="share KV blocks of common prefixes across requests "
        "(paged memory only; default off, or REPRO_PREFIX_CACHE)",
    )


def _prefix_cache_kwargs(args: argparse.Namespace) -> dict:
    """Only override ServingConfig.prefix_cache when the flag was given,
    so the REPRO_PREFIX_CACHE environment default keeps working."""
    if getattr(args, "prefix_cache", None) is None:
        return {}
    return {"prefix_cache": args.prefix_cache}


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep fan-out (default 1, or REPRO_JOBS)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent perf cache; warm-starts "
        "repeat runs (default off, or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="journal completed sweep cells to this directory's run "
        "ledger (default off, or REPRO_RUN_DIR)",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_DIR",
        default=None,
        help="resume from a previous run's ledger in RUN_DIR, "
        "recomputing only missing cells (implies --run-dir RUN_DIR)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds a sweep task may run before its worker is killed "
        "and the task retried (default none, or REPRO_TASK_TIMEOUT; "
        "needs --jobs >= 2)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per task after a crash/hang/error before it is "
        "quarantined (default 2, or REPRO_MAX_RETRIES)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        help="deterministic fault injection for recovery drills, e.g. "
        "'kill=0.2,hang=0.1,seed=1' (default off, or REPRO_CHAOS; "
        "needs --jobs >= 2)",
    )
    parser.add_argument(
        "--surrogate",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="seed capacity searches from previously measured cells "
        "(persisted at CACHE_DIR/surrogate.json); saves probes without "
        "changing any measured capacity (default off, or "
        "REPRO_SURROGATE)",
    )


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    """The supervised-sweep knobs shared by capacity/fleet/reproduce."""
    run_dir = args.resume if args.resume is not None else args.run_dir
    return {
        "jobs": args.jobs,
        "cache_dir": args.cache_dir,
        "run_dir": run_dir,
        "resume": True if args.resume is not None else None,
        "task_timeout": args.task_timeout,
        "max_retries": args.max_retries,
        "chaos": args.chaos,
        "surrogate": args.surrogate,
    }


def _perf_cache_from(args: argparse.Namespace) -> bool:
    if args.perf_cache is None:
        return perf_cache_from_env()
    return args.perf_cache


def _deployment_from(args: argparse.Namespace) -> Deployment:
    pp_link = ETHERNET_100G if args.cross_node_pp else None
    kwargs = {"tensor_parallel": args.tp, "pipeline_parallel": args.pp}
    if pp_link is not None:
        kwargs["pp_link"] = pp_link
    return Deployment(
        model=get_model(args.model),
        gpu=get_gpu(args.gpu),
        parallel=ParallelConfig(**kwargs),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    print("models:   ", ", ".join(list_models()))
    print("datasets: ", "openchat_sharegpt4, arxiv_summarization")
    print("schedulers:", ", ".join(spec.name for spec in list_specs()))
    return 0


def _cmd_schedulers(args: argparse.Namespace) -> int:
    print("registered schedulers (repro.scheduling.registry):")
    for spec in list_specs():
        engines = "object+vectorized" if spec.supports_vectorized else "object"
        aliases = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"  {spec.name:22s} {engines:18s} {spec.memory_family:12s} "
              f"{spec.description}{aliases}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    deployment = _deployment_from(args)
    scheduler = _scheduler_from(args)
    config = ServingConfig(
        scheduler=scheduler,
        token_budget=args.token_budget,
        perf_cache=_perf_cache_from(args),
        **_engine_kwargs(args),
        **_prefix_cache_kwargs(args),
    )
    if args.workload == "conversation":
        from repro.workload.conversation import ConversationSpec, simulate_conversations

        spec = ConversationSpec(
            num_conversations=args.requests, arrival_qps=args.qps
        )
        result, metrics = simulate_conversations(
            deployment, config, spec, seed=args.seed
        )
        workload_line = (
            f"conversations, {args.requests} conversations @ {args.qps} qps "
            f"({len(result.requests)} rounds)"
        )
    else:
        dataset = get_dataset(args.dataset)
        trace = generate_requests(
            dataset, num_requests=args.requests, qps=args.qps, seed=args.seed
        )
        result, metrics = simulate(deployment, config, trace)
        workload_line = f"{dataset.name}, {args.requests} requests @ {args.qps} qps"
    print(f"deployment: {deployment.label}")
    print(f"scheduler:  {scheduler} (budget {args.token_budget})")
    if result.engine_stats is not None:
        stats = result.engine_stats
        print(
            f"engine:     {stats.kind} ({stats.num_events} events, "
            f"{stats.num_batches} batches, {stats.wall_time_s:.2f}s wall)"
        )
    print(f"workload:   {workload_line}")
    if result.cache_stats is not None:
        stats = result.cache_stats
        print(
            f"perf cache: {stats.hits}/{stats.hits + stats.misses} batch hits "
            f"({stats.hit_rate:.0%}), {stats.work_hit_rate:.0%} attention-work hits"
        )
    if result.prefix_stats is not None:
        stats = result.prefix_stats
        print(
            f"prefix cache: {stats.hits}/{stats.lookups} lookups hit "
            f"({stats.hit_rate:.0%}), {stats.hit_tokens} prefill tokens reused, "
            f"{stats.cow_copies} COW copies, {stats.evictions} evictions"
        )
    print()
    print(f"median TTFT          {metrics.median_ttft:8.3f} s")
    print(f"P99 TBT              {metrics.p99_tbt:8.3f} s")
    print(f"max TBT              {metrics.max_tbt:8.3f} s")
    print(f"median sched delay   {metrics.median_scheduling_delay:8.3f} s")
    print(f"throughput           {metrics.throughput_tokens_per_s:8.0f} tok/s")
    print(f"preemptions          {metrics.num_preemptions:8d}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.cluster.fleet import (
        AdmissionPolicy,
        FaultSchedule,
        FleetConfig,
        HealthConfig,
        partition_domains,
        simulate_fleet,
    )
    from repro.experiments.fleet import DEFAULT_TTFT_DEADLINE, router_named
    from repro.metrics.goodput import RequestSLO, fleet_goodput
    from repro.metrics.recovery import recovery_report
    from repro.metrics.slo import derived_slo

    if args.sweep:
        from repro.experiments.common import scale_from_env
        from repro.experiments.registry import reproduce_figure

        print(reproduce_figure("fleet", scale_from_env(), **_sweep_kwargs(args)))
        return 0

    deployment = _deployment_from(args)
    scheduler = _scheduler_from(args)
    dataset = get_dataset(args.dataset)
    trace = generate_requests(
        dataset, num_requests=args.requests, qps=args.qps, seed=args.seed
    )
    config = ServingConfig(
        scheduler=scheduler,
        token_budget=args.token_budget,
        perf_cache=_perf_cache_from(args),
        **_engine_kwargs(args),
    )
    slo = derived_slo(deployment.execution_model(), strict=False)
    horizon = max(r.arrival_time for r in trace) + 30.0
    domains = None
    if args.fault_domains > 0:
        domains = partition_domains(args.replicas, args.fault_domains)
        faults = FaultSchedule.correlated(
            domains,
            rate=args.fault_rate,
            mean_downtime=args.mean_downtime,
            horizon=horizon,
            seed=args.fault_seed,
            kind=args.fault_kind,
            severity=args.fault_severity,
        )
    else:
        faults = FaultSchedule.poisson(
            args.replicas,
            rate=args.fault_rate,
            mean_downtime=args.mean_downtime,
            horizon=horizon,
            seed=args.fault_seed,
            kind=args.fault_kind,
            severity=args.fault_severity,
        )
    brownout = None
    if args.brownout:
        from repro.experiments.resilience import default_brownout

        brownout = default_brownout(slo.p99_tbt, args.token_budget)
    fleet_config = FleetConfig(
        num_replicas=args.replicas,
        faults=faults,
        domains=domains,
        max_queue_depth=args.max_queue_depth,
        admission=AdmissionPolicy(args.admission),
        health=HealthConfig() if args.health else None,
        brownout=brownout,
    )
    result, metrics = simulate_fleet(
        deployment,
        config,
        trace,
        fleet_config,
        router=router_named(args.router, args.replicas, slo.p99_tbt),
    )
    report = fleet_goodput(
        result, RequestSLO(ttft_deadline=DEFAULT_TTFT_DEADLINE, tbt_deadline=slo.p99_tbt)
    )
    print(f"deployment: {deployment.label} × {args.replicas} replicas")
    print(f"scheduler:  {scheduler} (budget {args.token_budget}), "
          f"router {args.router}")
    print(f"workload:   {dataset.name}, {args.requests} requests @ {args.qps} qps")
    unit = "domain" if args.fault_domains > 0 else "replica"
    print(f"faults:     {len(fleet_config.faults.faults)} scheduled "
          f"({args.fault_kind}, {args.fault_rate}/{unit}-s, "
          f"mean downtime {args.mean_downtime}s)")
    knobs = [k for k, on in (("health", args.health), ("brownout", args.brownout)) if on]
    if knobs:
        print(f"control:    {' + '.join(knobs)}")
    print()
    print(f"finished / offered   {report.num_finished:5d} / {report.num_offered}")
    print(f"shed (overload)      {report.num_shed:5d}")
    print(f"failovers            {report.num_failovers:5d}")
    print(f"prefill restarts     {report.num_restarts:5d}")
    print(f"rejections           {result.num_rejections:5d}")
    print(f"SLO attainment       {report.attainment:8.1%}")
    print(f"goodput              {report.goodput_rps:8.2f} req/s")
    print(f"median TTFT          {metrics.median_ttft:8.3f} s")
    print(f"P99 TBT              {metrics.p99_tbt:8.3f} s")
    recovery = recovery_report(result, slo_tbt=slo.p99_tbt)
    if recovery.num_disruptions:
        mttr = recovery.mean_recovery_time
        print(f"disruptions          {recovery.num_disruptions:5d} "
              f"({recovery.num_censored} unrecovered at end of run)")
        print(f"mean time-to-SLO     "
              f"{'   n/a' if mttr is None else f'{mttr:8.3f} s'}")
    drains = sum(1 for e in result.events if e.kind == "drain_start")
    brownouts = sum(1 for e in result.events if e.kind == "brownout_enter")
    if drains:
        print(f"health drains        {drains:5d}")
    if brownouts:
        print(f"brownout episodes    {brownouts:5d}")
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.experiments.capacity_runner import CapacityCellSpec, run_capacity_cells

    deployment = _deployment_from(args)
    dataset = get_dataset(args.dataset)
    strict = args.slo == "strict"
    slo = derived_slo(deployment.execution_model(), strict=strict)
    scheduler = _scheduler_from(args)
    config = serving_config_for(
        deployment, scheduler, strict, perf_cache=_perf_cache_from(args)
    )
    scale = Scale(
        num_requests=args.requests,
        capacity_rel_tol=0.15,
        capacity_max_probes=args.probes,
    )
    print(f"searching capacity for {deployment.label} / {scheduler} on "
          f"{dataset.name} under {slo.name} SLO (P99 TBT <= {slo.p99_tbt:.3f} s)…")
    spec = CapacityCellSpec(
        deployment=deployment,
        scheduler=scheduler,
        dataset=dataset,
        scale=scale,
        config=config,
        slo=slo,
        qps_hint=args.qps_hint,
    )
    reports: list = []
    outcomes = run_capacity_cells([spec], reports=reports, **_sweep_kwargs(args))
    if not outcomes:
        print("interrupted before the search completed; "
              "re-run with --resume to continue")
        return 130
    outcome = outcomes[0]
    cell = outcome.cell
    print(
        f"capacity: {cell.capacity_qps:.2f} qps "
        f"({cell.num_probes} probes: {outcome.num_bracket_probes} bracket + "
        f"{outcome.num_bisect_probes} bisect; {outcome.seconds:.1f}s)"
    )
    if outcome.resumed:
        print("result replayed from the run ledger (0 probes recomputed)")
    if args.cache_dir:
        print(
            f"perf cache: {outcome.cache_source} start "
            f"({outcome.loaded_entries} entries loaded, "
            f"{outcome.merged_entries} merged back)"
        )
    total_retries = sum(report.num_retries for report in reports)
    if total_retries:
        print(f"supervisor: {total_retries} task retries, "
              f"{sum(r.num_respawns for r in reports)} pool respawns")
    return 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.experiments.common import DEFAULT, FULL, SMOKE, format_table
    from repro.experiments.leaderboard import leaderboard_table, run_leaderboard
    from repro.runtime import sweep_env

    schedulers = None
    if args.schedulers:
        schedulers = tuple(
            name.strip() for name in args.schedulers.split(",") if name.strip()
        )
        for name in schedulers:
            resolve(name)  # fail with did-you-mean before any work starts
    scale = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}[args.scale]
    with sweep_env(**_sweep_kwargs(args)):
        rows = run_leaderboard(
            scale,
            deployment=_deployment_from(args),
            schedulers=schedulers,
            include_capacity=not args.no_capacity,
        )
    headers, table = leaderboard_table(rows)
    print("scheduler leaderboard — ranked by mean latency at saturation")
    print()
    print(format_table(headers, table))
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    deployment = _deployment_from(args)
    exec_model = deployment.execution_model()
    print(f"deployment: {deployment.label}")
    print(f"reference decode TBT: {reference_decode_time(exec_model) * 1e3:.1f} ms")
    for strict in (True, False):
        slo = derive_slo(exec_model, strict)
        budget = compute_token_budget(exec_model, slo)
        name = "strict" if strict else "relaxed"
        print(f"{name:8s} SLO {slo * 1e3:7.1f} ms -> token budget {budget}")
    if args.profile:
        print("\nbudget profile:")
        slo = derive_slo(exec_model, strict=True)
        for p in profile_token_budgets(exec_model, slo):
            marker = "ok" if p.meets_slo else "violates strict SLO"
            print(f"  {p.token_budget:6d} tokens -> {p.iteration_time * 1e3:8.1f} ms  {marker}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.reporting import compare_schedulers, render_markdown

    deployment = _deployment_from(args)
    dataset = get_dataset(args.dataset)
    trace = generate_requests(
        dataset, num_requests=args.requests, qps=args.qps, seed=args.seed
    )
    rows = compare_schedulers(
        deployment,
        trace,
        token_budget=args.token_budget,
        perf_cache=_perf_cache_from(args),
    )
    title = (
        f"{deployment.label} on {dataset.name} "
        f"({args.requests} requests @ {args.qps} qps)"
    )
    print(render_markdown(rows, title=title))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.common import DEFAULT, FULL, SMOKE
    from repro.experiments.registry import list_figures, reproduce_figure

    if args.figure is None:
        print("reproducible figures/tables:")
        for entry in list_figures():
            tag = " (capacity search — slow)" if entry.expensive else ""
            print(f"  {entry.figure_id:8s} {entry.title}{tag}")
        return 0
    scale = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}[args.scale]
    print(reproduce_figure(args.figure, scale, **_sweep_kwargs(args)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sarathi-Serve reproduction: simulate LLM serving schedulers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models, datasets and schedulers").set_defaults(
        func=_cmd_list
    )

    sub.add_parser(
        "schedulers",
        help="list registered schedulers: engines, memory family, description",
    ).set_defaults(func=_cmd_schedulers)

    sim = sub.add_parser("simulate", help="run one trace and print latency metrics")
    _add_deployment_args(sim)
    sim.add_argument("--dataset", default="openchat_sharegpt4")
    sim.add_argument("--workload", default="trace",
                     choices=["trace", "conversation"],
                     help="open-loop dataset trace, or closed-loop multi-round "
                     "conversations (--requests counts conversations)")
    _add_scheduler_arg(sim)
    sim.add_argument("--qps", type=float, default=1.0)
    sim.add_argument("--requests", type=int, default=128)
    sim.add_argument("--token-budget", type=int, default=512)
    sim.add_argument("--seed", type=int, default=0)
    _add_engine_arg(sim)
    _add_perf_cache_arg(sim)
    _add_prefix_cache_arg(sim)
    sim.set_defaults(func=_cmd_simulate)

    fleet = sub.add_parser(
        "fleet",
        help="simulate a multi-replica fleet with faults and overload control",
    )
    _add_deployment_args(fleet)
    fleet.add_argument("--replicas", type=int, default=2, help="fleet size")
    fleet.add_argument("--dataset", default="openchat_sharegpt4")
    _add_scheduler_arg(fleet)
    fleet.add_argument("--qps", type=float, default=2.0, help="aggregate arrival rate")
    fleet.add_argument("--requests", type=int, default=128)
    fleet.add_argument("--token-budget", type=int, default=512)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--router",
        default="least-outstanding",
        choices=["round-robin", "least-outstanding", "slo-aware"],
    )
    fleet.add_argument("--fault-rate", type=float, default=0.0,
                       help="faults per replica-second (Poisson), or per "
                       "domain-second with --fault-domains")
    fleet.add_argument("--fault-kind", default="crash",
                       choices=["crash", "slowdown", "capacity_loss"],
                       help="what a fault does: kill the replica, run it at a "
                       "perf multiplier, or shrink its KV pool")
    fleet.add_argument("--fault-severity", type=float, default=None,
                       help="slowdown multiplier (>1) or KV fraction lost "
                       "(0..1); defaults per kind")
    fleet.add_argument("--mean-downtime", type=float, default=5.0,
                       help="mean seconds a fault window stays open")
    fleet.add_argument("--fault-seed", type=int, default=0)
    fleet.add_argument("--fault-domains", type=int, default=0,
                       help="partition replicas into N failure domains and "
                       "draw correlated domain-level faults (0 = independent "
                       "per-replica faults)")
    fleet.add_argument("--brownout", action="store_true",
                       help="enable the SLO-aware brownout controller "
                       "(degrades chunk budget/context/lowest tenant under "
                       "TBT pressure)")
    fleet.add_argument("--health", action="store_true",
                       help="enable the health monitor (drains and restarts "
                       "replicas whose TBT inflates vs the fleet median)")
    fleet.add_argument("--max-queue-depth", type=int, default=None,
                       help="per-replica admission bound (default unbounded)")
    fleet.add_argument("--admission", default="reject",
                       choices=["reject", "shed", "spill"],
                       help="what happens when the routed replica's queue is full")
    fleet.add_argument("--sweep", action="store_true",
                       help="run the replicas × faults × load sweep instead")
    _add_engine_arg(fleet)
    _add_sweep_args(fleet)
    _add_perf_cache_arg(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    cap = sub.add_parser("capacity", help="search the max sustainable QPS under an SLO")
    _add_deployment_args(cap)
    cap.add_argument("--dataset", default="openchat_sharegpt4")
    _add_scheduler_arg(cap)
    cap.add_argument("--slo", choices=["strict", "relaxed"], default="strict")
    cap.add_argument("--requests", type=int, default=128)
    cap.add_argument("--probes", type=int, default=12)
    cap.add_argument("--qps-hint", type=float, default=1.0)
    _add_sweep_args(cap)
    _add_perf_cache_arg(cap)
    cap.set_defaults(func=_cmd_capacity)

    board = sub.add_parser(
        "leaderboard",
        help="rank all registered schedulers across the workload suite",
    )
    _add_deployment_args(board)
    board.add_argument(
        "--scale", choices=["smoke", "default", "full"], default="smoke"
    )
    board.add_argument(
        "--schedulers",
        default=None,
        metavar="NAMES",
        help="comma-separated registry names to rank (default: all)",
    )
    board.add_argument(
        "--no-capacity",
        action="store_true",
        help="skip the per-scheduler strict-SLO capacity search (much faster)",
    )
    _add_sweep_args(board)
    board.set_defaults(func=_cmd_leaderboard)

    budget = sub.add_parser("budget", help="derive SLOs and token budgets (§4.3)")
    _add_deployment_args(budget)
    budget.add_argument("--profile", action="store_true", help="print the full profile")
    budget.set_defaults(func=_cmd_budget)

    compare = sub.add_parser(
        "compare", help="run all four schedulers on one trace, print a table"
    )
    _add_deployment_args(compare)
    compare.add_argument("--dataset", default="openchat_sharegpt4")
    compare.add_argument("--qps", type=float, default=1.0)
    compare.add_argument("--requests", type=int, default=96)
    compare.add_argument("--token-budget", type=int, default=512)
    compare.add_argument("--seed", type=int, default=0)
    _add_perf_cache_arg(compare)
    compare.set_defaults(func=_cmd_compare)

    reproduce = sub.add_parser(
        "reproduce", help="re-run a paper figure/table and print its rows"
    )
    reproduce.add_argument(
        "figure",
        nargs="?",
        default=None,
        help="figure id (e.g. fig14, table4); omit to list all",
    )
    reproduce.add_argument(
        "--scale", choices=["smoke", "default", "full"], default="smoke"
    )
    _add_sweep_args(reproduce)
    reproduce.set_defaults(func=_cmd_reproduce)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
