"""Deterministic chaos injection for the sweep runtime.

The supervisor's recovery paths (worker death, hung tasks, corrupt
journals) only stay correct if they are exercised; this module makes
the faults themselves reproducible so recovery can be golden-tested:
the same seed injects the same kills into the same task attempts every
run, and — because faults only ever fire on a task's *first* attempt —
a chaos-ridden sweep retries its way to output **bit-identical** to the
unfaulted run.

Faults are drawn per ``(seed, index, attempt)`` from sha256, not from
shared RNG state, so the decision for one task never depends on how
many other tasks ran before it or on which worker picked it up.

Enable via ``REPRO_CHAOS`` / ``--chaos`` with a ``key=value`` spec::

    REPRO_CHAOS="kill=0.3,hang=0.1,seed=7" python -m repro reproduce fig10 --jobs 4

Knobs: ``kill`` (probability a task's first attempt SIGKILLs its
worker), ``hang`` (probability it wedges instead — pair with
``--task-timeout``), ``hang_seconds``, ``seed``, ``attempts`` (inject
on attempts < N; default 1).  Chaos only applies to worker processes
(``jobs >= 2``): killing the serial path would kill the caller.

:func:`corrupt_file` is the disk half of the harness — deterministic
byte flips for ledger/perf-cache corruption drills.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

CHAOS_ENV = "REPRO_CHAOS"

# Fault kinds, in draw order: one uniform draw per (task, attempt) is
# carved into [0, kill) -> kill, [kill, kill+hang) -> hang.
KILL = "kill"
HANG = "hang"


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection plan, picklable so workers can carry it."""

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 3600.0
    max_attempt: int = 1  # inject only while attempt < max_attempt

    def __post_init__(self) -> None:
        if not (0.0 <= self.kill_rate <= 1.0):
            raise ValueError(f"kill rate must be in [0, 1], got {self.kill_rate}")
        if not (0.0 <= self.hang_rate <= 1.0):
            raise ValueError(f"hang rate must be in [0, 1], got {self.hang_rate}")
        if self.kill_rate + self.hang_rate > 1.0:
            raise ValueError("kill + hang rates must not exceed 1")
        if self.hang_seconds <= 0:
            raise ValueError(f"hang_seconds must be positive, got {self.hang_seconds}")
        if self.max_attempt < 0:
            raise ValueError(f"max_attempt must be >= 0, got {self.max_attempt}")

    def __bool__(self) -> bool:
        return self.kill_rate > 0 or self.hang_rate > 0

    def draw(self, index: int, attempt: int) -> float:
        """Uniform [0, 1) for one task attempt, stable across processes."""
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decision(self, index: int, attempt: int) -> str | None:
        """``"kill"``, ``"hang"`` or ``None`` for one task attempt."""
        if attempt >= self.max_attempt:
            return None
        u = self.draw(index, attempt)
        if u < self.kill_rate:
            return KILL
        if u < self.kill_rate + self.hang_rate:
            return HANG
        return None

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig | None":
        """A config from a ``kill=0.2,hang=0.1,seed=3`` spec; None if off."""
        spec = spec.strip()
        if not spec or spec.lower() in ("0", "off", "none"):
            return None
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"chaos spec items must be key=value, got {part!r}"
                )
            key, _, value = part.partition("=")
            key = key.strip().replace("-", "_")
            try:
                if key in ("seed", "attempts", "max_attempt"):
                    kwargs["seed" if key == "seed" else "max_attempt"] = int(value)
                elif key in ("kill", "kill_rate"):
                    kwargs["kill_rate"] = float(value)
                elif key in ("hang", "hang_rate"):
                    kwargs["hang_rate"] = float(value)
                elif key == "hang_seconds":
                    kwargs["hang_seconds"] = float(value)
                else:
                    raise ValueError(f"unknown chaos knob {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad chaos spec item {part!r}: {exc}") from None
        config = cls(**kwargs)
        return config if config else None


def chaos_from_env() -> ChaosConfig | None:
    """The chaos plan from ``REPRO_CHAOS``, or None when unset/off."""
    return ChaosConfig.parse(os.environ.get(CHAOS_ENV, ""))


def inject(chaos: ChaosConfig | None, index: int, attempt: int) -> None:
    """Apply this attempt's fault (if any) inside a worker process.

    ``kill`` is an uncatchable SIGKILL — the worker vanishes mid-task,
    exactly like an OOM kill; ``hang`` sleeps past any sane task
    timeout, like a wedged collective or a deadlocked allocator.
    """
    if chaos is None:
        return
    fault = chaos.decision(index, attempt)
    if fault == KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == HANG:
        time.sleep(chaos.hang_seconds)


def corrupt_file(path: str | Path, seed: int = 0, num_bytes: int = 8) -> int:
    """Deterministically flip bytes of a file in place; bytes flipped.

    The disk-fault half of the chaos harness: tests aim it at ledger
    lines and perf-cache pickles to prove both degrade to recompute
    rather than crash.  Offsets and XOR masks derive from sha256 of the
    seed, so a drill is reproducible.  Empty/missing files flip 0.
    """
    path = Path(path)
    try:
        data = bytearray(path.read_bytes())
    except OSError:
        return 0
    if not data:
        return 0
    flipped = 0
    for i in range(num_bytes):
        digest = hashlib.sha256(f"corrupt:{seed}:{i}".encode()).digest()
        offset = int.from_bytes(digest[:8], "big") % len(data)
        mask = digest[8] or 0xFF
        data[offset] ^= mask
        flipped += 1
    path.write_bytes(bytes(data))
    return flipped
