"""Supervised process-pool execution: crash-safe fan-out with retries.

``ProcessPoolExecutor.map`` is all-or-nothing: one worker OOM-killed or
wedged raises ``BrokenProcessPool`` and throws away every cell of a
multi-hour sweep.  This module replaces it with a submission/completion
loop that treats worker failure as an event, not an abort:

* **Bounded in-flight window** — at most ``jobs`` tasks are submitted
  at once, so a per-task timeout measured from submission approximates
  time-on-worker and a hung worker is detected within one timeout.
* **Death and hang recovery** — a broken pool (worker SIGKILL/OOM) or a
  timed-out task kills and respawns the pool with capped exponential
  backoff; affected tasks are retried.  Python cannot attribute a
  worker death to one task, so every in-flight task of a broken pool
  gets its attempt count bumped — innocents burn one of their
  ``max_retries`` retries, the actual culprit keeps getting bumped
  until it completes or quarantines, so the loop always terminates.
* **Poison-task quarantine** — a task that keeps failing past
  ``max_retries`` becomes a structured :class:`TaskFailure` (exception
  repr, traceback, attempts, worker pid when known) instead of
  aborting the sweep; the caller chooses strict vs. degraded
  completion.
* **Clean interruption** — ``KeyboardInterrupt``/SIGTERM cancels the
  queue, kills the pool (no orphaned workers) and returns everything
  that already finished, marked interrupted.

Worker-raised exceptions are caught *inside* the worker and returned
as values, so they carry the real worker pid and traceback; only
death/timeout failures lose the pid.  Results are keyed by task index,
so canonical output order never depends on completion order.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.chaos import ChaosConfig, inject


@dataclass(frozen=True)
class TaskOutcome:
    """One task's result plus its execution footprint."""

    index: int
    value: Any
    worker_pid: int
    seconds: float
    attempt: int = 0       # 0 = first try; >0 = survived that many retries
    resumed: bool = False  # replayed from a run ledger, not recomputed


@dataclass(frozen=True)
class TaskFailure:
    """A task quarantined after exhausting its retries."""

    index: int
    error: str          # repr of the final exception / failure kind
    traceback: str      # worker traceback when the task raised; else a note
    attempts: int       # total attempts made (1 = failed on first try)
    worker_pid: int | None = None  # known only for in-worker exceptions
    kind: str = "exception"        # "exception" | "worker-death" | "timeout"


class SweepFailedError(RuntimeError):
    """Raised by strict sweeps when any task was quarantined."""

    def __init__(self, report: Any) -> None:
        self.report = report
        failures = report.failures
        summary = "; ".join(
            f"task {f.index} after {f.attempts} attempts: {f.error}"
            for f in failures[:3]
        )
        if len(failures) > 3:
            summary += f"; … {len(failures) - 3} more"
        super().__init__(
            f"{len(failures)} task(s) failed permanently ({summary}); "
            "pass strict=False for degraded completion"
        )


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/backoff knobs for one supervised run."""

    task_timeout: float | None = None  # seconds a task may run; None = forever
    max_retries: int = 2               # retries per task beyond the first attempt
    backoff_base: float = 0.1          # pool-respawn backoff: base * 2**(n-1) …
    backoff_cap: float = 5.0           # … capped here (seconds)
    poll_interval: float = 0.05        # completion/timeout polling tick
    chaos: ChaosConfig | None = None   # deterministic fault injection

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass
class SupervisedRun:
    """What one supervised execution did, for the report and telemetry."""

    outcomes: dict[int, TaskOutcome] = field(default_factory=dict)
    failures: list[TaskFailure] = field(default_factory=list)
    num_retries: int = 0
    num_respawns: int = 0
    interrupted: bool = False


@dataclass(frozen=True)
class _TaskError:
    """An exception caught inside a worker, shipped home as a value."""

    index: int
    attempt: int
    error: str
    traceback: str
    worker_pid: int


@dataclass(frozen=True)
class _Attempt:
    index: int
    item: Any
    attempt: int = 0


def _supervised_run_one(
    fn: Callable[[Any], Any],
    index: int,
    attempt: int,
    item: Any,
    chaos: ChaosConfig | None,
) -> TaskOutcome | _TaskError:
    """Worker-side task body (module-level: the pool pickles it)."""
    inject(chaos, index, attempt)
    start = time.perf_counter()
    try:
        value = fn(item)
    except Exception as exc:
        return _TaskError(
            index=index,
            attempt=attempt,
            error=repr(exc),
            traceback=traceback_module.format_exc(),
            worker_pid=os.getpid(),
        )
    return TaskOutcome(
        index=index,
        value=value,
        worker_pid=os.getpid(),
        seconds=time.perf_counter() - start,
        attempt=attempt,
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: SIGKILL its workers, drop its queue.

    ``shutdown`` alone waits forever on a wedged worker; killing the
    processes first (private attribute, guarded defensively) is the
    only way to reap a hung task.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_supervised(
    fn: Callable[[Any], Any],
    tasks: list[tuple[int, Any]],
    jobs: int,
    policy: SupervisorPolicy,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    on_complete: Callable[[TaskOutcome], None] | None = None,
) -> SupervisedRun:
    """Run tasks across a supervised worker pool; never raises for task faults.

    ``tasks`` are ``(index, item)`` pairs; ``on_complete`` fires once
    per completed outcome, in completion order (the ledger journals
    there).  Returns outcomes keyed by index, quarantined failures, and
    retry/respawn/interrupt accounting.  Only ``KeyboardInterrupt`` is
    intercepted (and reported, not re-raised); programming errors in
    the supervisor itself still propagate.
    """
    run = SupervisedRun()
    max_workers = max(1, min(jobs, len(tasks)))
    pending: deque[_Attempt] = deque(
        _Attempt(index=index, item=item) for index, item in tasks
    )
    in_flight: dict[Future, tuple[_Attempt, float]] = {}
    pool: ProcessPoolExecutor | None = None

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers, initializer=initializer, initargs=initargs
        )

    def settle(result: TaskOutcome | _TaskError) -> None:
        """File a worker's return value: success, or a retryable error."""
        if isinstance(result, _TaskError):
            requeue(
                _Attempt(index=result.index, item=item_by_index[result.index],
                         attempt=result.attempt),
                bump=True,
                error=result.error,
                tb=result.traceback,
                pid=result.worker_pid,
                kind="exception",
            )
        else:
            run.outcomes[result.index] = result
            if on_complete is not None:
                on_complete(result)

    def requeue(
        attempt: _Attempt,
        bump: bool,
        error: str = "",
        tb: str = "",
        kind: str = "exception",
        pid: int | None = None,
    ) -> None:
        """Retry an attempt, or quarantine it once retries are exhausted.

        ``bump=False`` resubmits without charging a retry — used for
        tasks that merely shared a pool with a hung one.
        """
        if not bump:
            pending.append(attempt)
            return
        attempts_made = attempt.attempt + 1
        if attempts_made > policy.max_retries:
            run.failures.append(
                TaskFailure(
                    index=attempt.index,
                    error=error,
                    traceback=tb,
                    attempts=attempts_made,
                    worker_pid=pid,
                    kind=kind,
                )
            )
        else:
            run.num_retries += 1
            pending.append(
                _Attempt(index=attempt.index, item=attempt.item,
                         attempt=attempts_made)
            )

    def abandon_pool(bump_survivors: bool = True) -> None:
        """Harvest what finished, requeue the rest, and kill the pool.

        ``bump_survivors=False`` (the hang path) resubmits unfinished
        collateral tasks without charging them a retry — only the task
        that actually timed out burns one.
        """
        nonlocal pool
        for future, (attempt, _) in list(in_flight.items()):
            harvested = False
            if future.done() and not future.cancelled():
                try:
                    settle(future.result())
                    harvested = True
                except BaseException:
                    pass  # died with the pool; fall through to requeue
            if not harvested:
                requeue(
                    attempt,
                    bump=bump_survivors,
                    error="worker process died (BrokenProcessPool)",
                    tb="worker exited abnormally; no traceback available",
                    kind="worker-death",
                )
        in_flight.clear()
        if pool is not None:
            _kill_pool(pool)
            pool = None

    item_by_index = {index: item for index, item in tasks}

    try:
        while pending or in_flight:
            if pool is None:
                if run.num_respawns:
                    delay = min(
                        policy.backoff_base * 2 ** (run.num_respawns - 1),
                        policy.backoff_cap,
                    )
                    time.sleep(delay)
                pool = make_pool()
            # Keep the in-flight window at the worker count so "time
            # since submission" tracks "time on a worker".
            while pending and len(in_flight) < max_workers:
                attempt = pending.popleft()
                try:
                    future = pool.submit(
                        _supervised_run_one,
                        fn, attempt.index, attempt.attempt, attempt.item,
                        policy.chaos,
                    )
                except (BrokenProcessPool, RuntimeError):
                    pending.appendleft(attempt)
                    run.num_respawns += 1
                    abandon_pool()
                    break
                in_flight[future] = (attempt, time.monotonic())
            if not in_flight:
                continue

            done, _ = wait(
                list(in_flight), timeout=policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                attempt, _ = in_flight.pop(future)
                try:
                    settle(future.result())
                except BrokenProcessPool:
                    broken = True
                    requeue(
                        attempt,
                        bump=True,
                        error="worker process died (BrokenProcessPool)",
                        tb="worker exited abnormally; no traceback available",
                        kind="worker-death",
                    )
                except Exception as exc:
                    # Pool-infrastructure error (e.g. unpicklable fn).
                    requeue(
                        attempt,
                        bump=True,
                        error=repr(exc),
                        tb="".join(
                            traceback_module.format_exception(
                                type(exc), exc, exc.__traceback__
                            )
                        ),
                        kind="exception",
                    )
            if broken:
                run.num_respawns += 1
                abandon_pool()
                continue

            if policy.task_timeout is not None and in_flight:
                now = time.monotonic()
                hung = [
                    future
                    for future, (_, submitted_at) in in_flight.items()
                    if now - submitted_at > policy.task_timeout
                ]
                if hung:
                    # A wedged worker can only be reaped by killing the
                    # pool; hung tasks burn a retry, the collateral
                    # in-flight tasks are resubmitted for free.
                    for future in hung:
                        attempt, _ = in_flight.pop(future)
                        requeue(
                            attempt,
                            bump=True,
                            error=(
                                f"task exceeded timeout "
                                f"({policy.task_timeout:.3g}s)"
                            ),
                            tb="task was still running at its deadline; "
                               "worker killed",
                            kind="timeout",
                        )
                    run.num_respawns += 1
                    abandon_pool(bump_survivors=False)
    except KeyboardInterrupt:
        run.interrupted = True
        for future in in_flight:
            future.cancel()
        pending.clear()
        if pool is not None:
            _kill_pool(pool)
            pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return run
