"""Sweep execution runtime: supervised fan-out, warm caches, resume.

See :mod:`repro.runtime.engine` for the worker model and determinism
contract, :mod:`repro.runtime.supervisor` for crash/hang recovery and
quarantine, :mod:`repro.runtime.ledger` for the checkpointed-resume
journal, and :mod:`repro.runtime.chaos` for deterministic fault
injection.  Experiments use :func:`map_tasks` for the fan-out and
:func:`shared_execution_model`/:func:`persist_execution_model` to start
warm from — and contribute back to — the persistent perf cache.
"""

from repro.runtime.chaos import CHAOS_ENV, ChaosConfig, chaos_from_env, corrupt_file
from repro.runtime.engine import (
    CACHE_DIR_ENV,
    JOBS_ENV,
    MAX_RETRIES_ENV,
    RESUME_ENV,
    RUN_DIR_ENV,
    SURROGATE_ENV,
    TASK_TIMEOUT_ENV,
    ModelLease,
    SweepReport,
    cache_dir_from_env,
    clear_process_models,
    current_cache_dir,
    jobs_from_env,
    map_tasks,
    max_retries_from_env,
    persist_execution_model,
    resume_from_env,
    run_dir_from_env,
    shared_execution_model,
    surrogate_from_env,
    sweep_env,
    task_timeout_from_env,
)
from repro.runtime.ledger import (
    RunLedger,
    decode_outcome,
    encode_outcome,
    sweep_fingerprint,
)
from repro.runtime.supervisor import (
    SupervisorPolicy,
    SweepFailedError,
    TaskFailure,
    TaskOutcome,
    run_supervised,
)

__all__ = [
    "JOBS_ENV",
    "CACHE_DIR_ENV",
    "RUN_DIR_ENV",
    "RESUME_ENV",
    "TASK_TIMEOUT_ENV",
    "MAX_RETRIES_ENV",
    "SURROGATE_ENV",
    "CHAOS_ENV",
    "ChaosConfig",
    "ModelLease",
    "RunLedger",
    "SupervisorPolicy",
    "SweepFailedError",
    "SweepReport",
    "TaskFailure",
    "TaskOutcome",
    "cache_dir_from_env",
    "chaos_from_env",
    "clear_process_models",
    "corrupt_file",
    "current_cache_dir",
    "decode_outcome",
    "encode_outcome",
    "jobs_from_env",
    "map_tasks",
    "max_retries_from_env",
    "persist_execution_model",
    "resume_from_env",
    "run_dir_from_env",
    "run_supervised",
    "shared_execution_model",
    "surrogate_from_env",
    "sweep_env",
    "sweep_fingerprint",
    "task_timeout_from_env",
]
