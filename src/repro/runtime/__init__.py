"""Sweep execution runtime: parallel fan-out with persistent warm caches.

See :mod:`repro.runtime.engine` for the worker model and determinism
contract.  Experiments use :func:`map_tasks` for the fan-out and :func:`shared_execution_model`/:func:`persist_execution_model`
to start warm from — and contribute back to — the persistent perf
cache.
"""

from repro.runtime.engine import (
    CACHE_DIR_ENV,
    JOBS_ENV,
    ModelLease,
    SweepReport,
    TaskOutcome,
    cache_dir_from_env,
    clear_process_models,
    current_cache_dir,
    jobs_from_env,
    map_tasks,
    persist_execution_model,
    shared_execution_model,
    sweep_env,
)

__all__ = [
    "JOBS_ENV",
    "CACHE_DIR_ENV",
    "ModelLease",
    "SweepReport",
    "TaskOutcome",
    "cache_dir_from_env",
    "clear_process_models",
    "current_cache_dir",
    "jobs_from_env",
    "map_tasks",
    "persist_execution_model",
    "shared_execution_model",
    "sweep_env",
]
