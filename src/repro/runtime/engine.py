"""Fault-tolerant parallel sweep execution engine.

Capacity figures and fleet grids are embarrassingly parallel: dozens of
independent (deployment, scheduler, dataset, SLO) cells, each a pile of
deterministic simulations.  This module fans those cells out across
**supervised** worker processes while keeping the results
*bit-identical* to a serial run:

* tasks carry canonical indices and results are collected by index, so
  the output never depends on completion order, retries, or which
  worker ran what;
* every task carries its own seeds inside its spec, so a task computes
  the same result in any process on any attempt;
* the only cross-task state — the memoized execution-model cache — is
  bit-identical by construction (see :mod:`repro.perf.cache`), so
  sharing it between tasks, processes and runs can change wall-clock
  but never values.

Unlike a bare ``pool.map``, worker death, hangs and poison tasks are
survivable events (:mod:`repro.runtime.supervisor`): dead/wedged pools
are respawned with capped backoff and the affected tasks retried;
tasks that keep failing are quarantined into structured
:class:`TaskFailure` records instead of aborting the sweep.  With a
``run_dir``, every completed outcome is journaled to an fsynced ledger
(:mod:`repro.runtime.ledger`) keyed by the sweep's fingerprint, so
``resume=True`` skips already-completed cells bit-identically after a
crash or Ctrl-C.  The recovery paths themselves are exercised by the
deterministic chaos harness (:mod:`repro.runtime.chaos`).

Workers start warm: when a cache directory is configured, each process
loads the persistent snapshot for a configuration the first time it
prices it (:mod:`repro.perf.disk_cache`) and merges its new entries
back after each task, so run N+1 — and every late-starting worker of
run N — skips work any earlier process already did.

``jobs=1`` (the default) runs tasks in-process through the *same*
journaling code path, which is both the fallback on single-core
machines and the reference the parallel path is golden-tested against.
Chaos injection and task timeouts need worker processes, so they apply
only at ``jobs >= 2``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback as traceback_module
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.perf.cache import CachedExecutionModel
from repro.perf.disk_cache import PersistentPerfCache
from repro.perf.iteration import ExecutionModel
from repro.runtime.chaos import CHAOS_ENV, ChaosConfig, chaos_from_env
from repro.runtime.ledger import RunLedger, sweep_fingerprint
from repro.runtime.supervisor import (
    SupervisorPolicy,
    SweepFailedError,
    TaskFailure,
    TaskOutcome,
    run_supervised,
)

# Environment knobs mirrored by the CLI's sweep flags.
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
RUN_DIR_ENV = "REPRO_RUN_DIR"
RESUME_ENV = "REPRO_RESUME"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
SURROGATE_ENV = "REPRO_SURROGATE"

DEFAULT_MAX_RETRIES = 2


def jobs_from_env(default: int = 1) -> int:
    """Worker-process count from ``REPRO_JOBS`` (>= 1)."""
    value = os.environ.get(JOBS_ENV, "").strip()
    if not value:
        return default
    try:
        jobs = int(value)
    except ValueError:
        raise ValueError(f"{JOBS_ENV} must be an integer, got {value!r}") from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def cache_dir_from_env() -> Path | None:
    """Persistent perf-cache directory from ``REPRO_CACHE_DIR``."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


def run_dir_from_env() -> Path | None:
    """Run-ledger directory from ``REPRO_RUN_DIR``."""
    value = os.environ.get(RUN_DIR_ENV, "").strip()
    return Path(value) if value else None


def resume_from_env() -> bool:
    """Whether ``REPRO_RESUME`` asks for ledger resume."""
    value = os.environ.get(RESUME_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def task_timeout_from_env() -> float | None:
    """Per-task timeout (seconds) from ``REPRO_TASK_TIMEOUT``."""
    value = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
    if not value:
        return None
    try:
        timeout = float(value)
    except ValueError:
        raise ValueError(
            f"{TASK_TIMEOUT_ENV} must be a number, got {value!r}"
        ) from None
    if timeout <= 0:
        raise ValueError(f"{TASK_TIMEOUT_ENV} must be positive, got {timeout}")
    return timeout


def max_retries_from_env(default: int = DEFAULT_MAX_RETRIES) -> int:
    """Per-task retry budget from ``REPRO_MAX_RETRIES`` (>= 0)."""
    value = os.environ.get(MAX_RETRIES_ENV, "").strip()
    if not value:
        return default
    try:
        retries = int(value)
    except ValueError:
        raise ValueError(
            f"{MAX_RETRIES_ENV} must be an integer, got {value!r}"
        ) from None
    if retries < 0:
        raise ValueError(f"{MAX_RETRIES_ENV} must be >= 0, got {retries}")
    return retries


def surrogate_from_env() -> bool:
    """Whether ``REPRO_SURROGATE`` asks for surrogate-seeded capacity
    searches (:mod:`repro.perf.surrogate`)."""
    value = os.environ.get(SURROGATE_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


@contextmanager
def sweep_env(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    run_dir: str | Path | None = None,
    resume: bool | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    chaos: str | ChaosConfig | None = None,
    surrogate: bool | None = None,
):
    """Temporarily pin the sweep knobs in the environment.

    The figure registry's runners read the ``REPRO_*`` sweep variables
    when not passed explicit arguments, so the CLI can thread --jobs,
    --cache-dir, --resume, --task-timeout, --max-retries and --chaos
    through ``reproduce_figure`` without changing every runner's
    signature.
    """
    values = {
        JOBS_ENV: str(jobs) if jobs is not None else None,
        CACHE_DIR_ENV: str(cache_dir) if cache_dir is not None else None,
        RUN_DIR_ENV: str(run_dir) if run_dir is not None else None,
        RESUME_ENV: ("1" if resume else "0") if resume is not None else None,
        TASK_TIMEOUT_ENV: str(task_timeout) if task_timeout is not None else None,
        MAX_RETRIES_ENV: str(max_retries) if max_retries is not None else None,
        SURROGATE_ENV: ("1" if surrogate else "0") if surrogate is not None else None,
        CHAOS_ENV: (
            None if chaos is None
            else chaos if isinstance(chaos, str)
            else f"kill={chaos.kill_rate},hang={chaos.hang_rate},"
                 f"hang_seconds={chaos.hang_seconds},seed={chaos.seed},"
                 f"attempts={chaos.max_attempt}"
        ),
    }
    saved = {key: os.environ.get(key) for key in values}
    try:
        for key, value in values.items():
            if value is not None:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# ----------------------------------------------------------------------
# Per-process shared state
# ----------------------------------------------------------------------
# One warm execution model per configuration fingerprint, shared by
# every task this process runs (exactly the sharing measure_capacity
# already does across the probes of one cell, widened to the whole
# sweep).  Values are bit-identical regardless of which task populated
# an entry, so this affects wall-clock only.
_process_models: dict[tuple[str, int], CachedExecutionModel] = {}
# Entry count of each shared model at its last persist, so fully-warm
# tasks (no new entries) skip the disk read-union-write entirely.
_persisted_entries: dict[tuple[str, int], int] = {}
_process_cache_dir: Path | None = None


def _set_process_cache_dir(cache_dir: Path | None) -> None:
    global _process_cache_dir
    _process_cache_dir = cache_dir


def current_cache_dir() -> Path | None:
    """The persistent cache directory active in this process, if any."""
    return _process_cache_dir


def _worker_init(cache_dir_str: str | None) -> None:
    """ProcessPool initializer: adopt the sweep's cache directory."""
    _set_process_cache_dir(Path(cache_dir_str) if cache_dir_str else None)


@dataclass
class ModelLease:
    """How a task obtained its execution model, for telemetry."""

    exec_model: ExecutionModel
    # "off" (uncached model), "cold", "disk" (warmed from the persistent
    # store) or "process" (reused from an earlier task in this process).
    source: str
    loaded_entries: int = 0


def shared_execution_model(deployment, config) -> ModelLease:
    """A (possibly disk-warmed) execution model for one task.

    Cached models are keyed by configuration fingerprint and reused
    across every task of this process; the first lease per fingerprint
    pre-loads the persistent snapshot when a cache directory is active.
    Uncached configs (``config.perf_cache=False``) always build fresh.
    """
    from repro.api import execution_model_for

    exec_model = execution_model_for(deployment, config)
    if not isinstance(exec_model, CachedExecutionModel):
        return ModelLease(exec_model=exec_model, source="off")
    key = (exec_model.fingerprint, exec_model.max_entries)
    shared = _process_models.get(key)
    if shared is not None:
        return ModelLease(exec_model=shared, source="process")
    loaded = 0
    source = "cold"
    if _process_cache_dir is not None:
        loaded = PersistentPerfCache(_process_cache_dir).warm(exec_model)
        if loaded:
            source = "disk"
    _process_models[key] = exec_model
    _persisted_entries[key] = exec_model.num_entries
    return ModelLease(exec_model=exec_model, source=source, loaded_entries=loaded)


def persist_execution_model(exec_model: ExecutionModel) -> int:
    """Merge a model's entries into the persistent store; new entries.

    No-op (returns 0) when no cache directory is active, the model is
    uncached, or the model has gained no entries since its last persist
    (the fully-warm fast path: no disk traffic at all).
    """
    if _process_cache_dir is None or not isinstance(exec_model, CachedExecutionModel):
        return 0
    key = (exec_model.fingerprint, exec_model.max_entries)
    if _persisted_entries.get(key) == exec_model.num_entries:
        return 0
    merged = PersistentPerfCache(_process_cache_dir).persist(exec_model)
    _persisted_entries[key] = exec_model.num_entries
    return merged


def clear_process_models() -> None:
    """Drop this process's shared warm models (tests and benchmarks)."""
    _process_models.clear()
    _persisted_entries.clear()


# ----------------------------------------------------------------------
# The fan-out engine
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """Everything one ``map_tasks`` call did, in canonical task order.

    ``outcomes`` holds every *completed* task (fresh or ledger-resumed)
    sorted by index; ``failures`` holds tasks quarantined after
    exhausting their retries.  ``interrupted`` marks a partial report
    cut short by Ctrl-C/SIGTERM — the journaled cells are safe in the
    ledger and a ``resume`` run completes only what is missing.
    """

    outcomes: list[TaskOutcome] = field(default_factory=list)
    failures: list[TaskFailure] = field(default_factory=list)
    jobs: int = 1
    cache_dir: Path | None = None
    run_dir: Path | None = None
    fingerprint: str | None = None
    wall_seconds: float = 0.0
    interrupted: bool = False
    num_resumed: int = 0
    num_retries: int = 0
    num_respawns: int = 0

    @property
    def values(self) -> list[Any]:
        return [outcome.value for outcome in self.outcomes]

    @property
    def ok(self) -> bool:
        """Every task completed: nothing failed, nothing cut short."""
        return not self.failures and not self.interrupted

    @property
    def num_workers(self) -> int:
        return len({outcome.worker_pid for outcome in self.outcomes})

    def worker_rows(self) -> list[dict[str, Any]]:
        """Per-task timing rows for telemetry export."""
        return [
            {
                "task_index": outcome.index,
                "worker_pid": outcome.worker_pid,
                "task_seconds": outcome.seconds,
                "attempt": outcome.attempt,
                "resumed": outcome.resumed,
                "jobs": self.jobs,
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            }
            for outcome in self.outcomes
        ]

    def failure_rows(self) -> list[dict[str, Any]]:
        """Per-quarantined-task rows for telemetry export."""
        return [
            {
                "task_index": failure.index,
                "kind": failure.kind,
                "error": failure.error,
                "attempts": failure.attempts,
                "worker_pid": failure.worker_pid,
                "jobs": self.jobs,
            }
            for failure in self.failures
        ]


def _run_one(fn: Callable[[Any], Any], payload: tuple[int, Any]) -> TaskOutcome:
    index, item = payload
    start = time.perf_counter()
    value = fn(item)
    return TaskOutcome(
        index=index,
        value=value,
        worker_pid=os.getpid(),
        seconds=time.perf_counter() - start,
    )


@contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM as KeyboardInterrupt so both unwind identically.

    Only the main thread may install signal handlers; elsewhere this is
    a no-op and SIGTERM keeps its default disposition.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _handler(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _run_serial(
    fn: Callable[[Any], Any],
    tasks: list[tuple[int, Any]],
    cache_dir: Path | None,
    on_complete: Callable[[TaskOutcome], None],
) -> tuple[dict[int, TaskOutcome], list[TaskFailure], bool]:
    """The in-process reference path: same journaling, no pool.

    A failing task is quarantined after one attempt (retrying a pure
    function in the same process cannot change the answer); Ctrl-C
    returns the completed prefix.
    """
    outcomes: dict[int, TaskOutcome] = {}
    failures: list[TaskFailure] = []
    interrupted = False
    previous = _process_cache_dir
    _set_process_cache_dir(cache_dir)
    try:
        for index, item in tasks:
            try:
                outcome = _run_one(fn, (index, item))
            except KeyboardInterrupt:
                interrupted = True
                break
            except Exception as exc:
                failures.append(
                    TaskFailure(
                        index=index,
                        error=repr(exc),
                        traceback=traceback_module.format_exc(),
                        attempts=1,
                        worker_pid=os.getpid(),
                        kind="exception",
                    )
                )
                continue
            outcomes[index] = outcome
            on_complete(outcome)
    finally:
        _set_process_cache_dir(previous)
    return outcomes, failures, interrupted


def map_tasks(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    run_dir: str | Path | None = None,
    resume: bool | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    chaos: ChaosConfig | str | None = None,
    strict: bool = True,
    backoff_base: float = 0.1,
) -> SweepReport:
    """Run ``fn`` over ``items`` under supervision; survives worker faults.

    Results always come back in item order — the parallel path is
    output-equivalent to the serial one whenever ``fn`` is a pure
    function of its item (every sweep task is: specs carry their own
    seeds, and the shared perf cache is bit-identical by construction).
    Worker death and hangs (``task_timeout``) are retried up to
    ``max_retries`` times; persistent failures are quarantined into
    ``report.failures``.  ``strict=True`` (the default) raises
    :class:`SweepFailedError` when anything was quarantined;
    ``strict=False`` returns the degraded report instead.

    With ``run_dir``, completed outcomes are journaled to an fsynced
    ledger named by the sweep fingerprint; ``resume=True`` replays
    recorded cells bit-identically and computes only what is missing.
    A Ctrl-C/SIGTERM persists the ledger and returns a partial report
    with ``interrupted=True`` (never an exception), so callers can
    stop cleanly and users can resume.

    ``fn`` and each item must be picklable (module-level function,
    dataclass specs) when ``jobs > 1``.  All knobs default to their
    ``REPRO_*`` environment variables.
    """
    if jobs is None:
        jobs = jobs_from_env()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cache_dir is None:
        cache_dir = cache_dir_from_env()
    cache_dir = Path(cache_dir) if cache_dir is not None else None
    if run_dir is None:
        run_dir = run_dir_from_env()
    run_dir = Path(run_dir) if run_dir is not None else None
    if resume is None:
        resume = resume_from_env()
    if task_timeout is None:
        task_timeout = task_timeout_from_env()
    if max_retries is None:
        max_retries = max_retries_from_env()
    if chaos is None:
        chaos = chaos_from_env()
    elif isinstance(chaos, str):
        chaos = ChaosConfig.parse(chaos)

    tasks = list(enumerate(items))
    fingerprint: str | None = None
    ledger: RunLedger | None = None
    recorded: dict[int, TaskOutcome] = {}
    if run_dir is not None:
        fingerprint = sweep_fingerprint(fn, [item for _, item in tasks])
        ledger = RunLedger(run_dir, fingerprint)
        recorded = ledger.start(num_tasks=len(tasks), resume=resume)

    def journal(outcome: TaskOutcome) -> None:
        if ledger is not None:
            ledger.record(outcome)

    remaining = [(index, item) for index, item in tasks if index not in recorded]
    start = time.perf_counter()
    try:
        with _sigterm_as_interrupt():
            if jobs == 1 or len(remaining) <= 1:
                outcomes, failures, interrupted = _run_serial(
                    fn, remaining, cache_dir, journal
                )
                num_retries = num_respawns = 0
            else:
                policy = SupervisorPolicy(
                    task_timeout=task_timeout,
                    max_retries=max_retries,
                    backoff_base=backoff_base,
                    chaos=chaos,
                )
                run = run_supervised(
                    fn,
                    remaining,
                    jobs=jobs,
                    policy=policy,
                    initializer=_worker_init,
                    initargs=(str(cache_dir) if cache_dir else None,),
                    on_complete=journal,
                )
                outcomes, failures = run.outcomes, run.failures
                interrupted = run.interrupted
                num_retries, num_respawns = run.num_retries, run.num_respawns
    finally:
        if ledger is not None:
            ledger.close()

    outcomes.update(recorded)
    report = SweepReport(
        outcomes=[outcomes[index] for index in sorted(outcomes)],
        failures=sorted(failures, key=lambda f: f.index),
        jobs=jobs,
        cache_dir=cache_dir,
        run_dir=run_dir,
        fingerprint=fingerprint,
        wall_seconds=time.perf_counter() - start,
        interrupted=interrupted,
        num_resumed=len(recorded),
        num_retries=num_retries,
        num_respawns=num_respawns,
    )
    if strict and report.failures and not report.interrupted:
        raise SweepFailedError(report)
    return report
