"""Parallel sweep execution engine.

Capacity figures and fleet grids are embarrassingly parallel: dozens of
independent (deployment, scheduler, dataset, SLO) cells, each a pile of
deterministic simulations.  This module fans those cells out across
worker processes while keeping the results *bit-identical* to a serial
run:

* tasks are submitted in canonical order and results are collected in
  that same order (``ProcessPoolExecutor.map`` preserves it), so the
  output never depends on completion order;
* every task carries its own seeds inside its spec, so a task computes
  the same result in any process;
* the only cross-task state — the memoized execution-model cache — is
  bit-identical by construction (see :mod:`repro.perf.cache`), so
  sharing it between tasks, processes and runs can change wall-clock
  but never values.

Workers start warm: when a cache directory is configured, each process
loads the persistent snapshot for a configuration the first time it
prices it (:mod:`repro.perf.disk_cache`) and merges its new entries
back after each task, so run N+1 — and every late-starting worker of
run N — skips work any earlier process already did.

``jobs=1`` (the default) runs tasks in-process through the *same* code
path, which is both the fallback on single-core machines and the
reference the parallel path is golden-tested against.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any

from repro.perf.cache import CachedExecutionModel
from repro.perf.disk_cache import PersistentPerfCache
from repro.perf.iteration import ExecutionModel

# Environment knobs mirrored by the CLI's --jobs / --cache-dir flags.
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def jobs_from_env(default: int = 1) -> int:
    """Worker-process count from ``REPRO_JOBS`` (>= 1)."""
    value = os.environ.get(JOBS_ENV, "").strip()
    if not value:
        return default
    try:
        jobs = int(value)
    except ValueError:
        raise ValueError(f"{JOBS_ENV} must be an integer, got {value!r}") from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def cache_dir_from_env() -> Path | None:
    """Persistent perf-cache directory from ``REPRO_CACHE_DIR``."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


@contextmanager
def sweep_env(jobs: int | None = None, cache_dir: str | Path | None = None):
    """Temporarily pin the sweep knobs in the environment.

    The figure registry's runners read ``REPRO_JOBS``/``REPRO_CACHE_DIR``
    when not passed explicit arguments, so the CLI can thread --jobs and
    --cache-dir through ``reproduce_figure`` without changing every
    runner's signature.
    """
    saved = {
        key: os.environ.get(key)
        for key in (JOBS_ENV, CACHE_DIR_ENV)
    }
    try:
        if jobs is not None:
            os.environ[JOBS_ENV] = str(jobs)
        if cache_dir is not None:
            os.environ[CACHE_DIR_ENV] = str(cache_dir)
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# ----------------------------------------------------------------------
# Per-process shared state
# ----------------------------------------------------------------------
# One warm execution model per configuration fingerprint, shared by
# every task this process runs (exactly the sharing measure_capacity
# already does across the probes of one cell, widened to the whole
# sweep).  Values are bit-identical regardless of which task populated
# an entry, so this affects wall-clock only.
_process_models: dict[tuple[str, int], CachedExecutionModel] = {}
# Entry count of each shared model at its last persist, so fully-warm
# tasks (no new entries) skip the disk read-union-write entirely.
_persisted_entries: dict[tuple[str, int], int] = {}
_process_cache_dir: Path | None = None


def _set_process_cache_dir(cache_dir: Path | None) -> None:
    global _process_cache_dir
    _process_cache_dir = cache_dir


def current_cache_dir() -> Path | None:
    """The persistent cache directory active in this process, if any."""
    return _process_cache_dir


def _worker_init(cache_dir_str: str | None) -> None:
    """ProcessPool initializer: adopt the sweep's cache directory."""
    _set_process_cache_dir(Path(cache_dir_str) if cache_dir_str else None)


@dataclass
class ModelLease:
    """How a task obtained its execution model, for telemetry."""

    exec_model: ExecutionModel
    # "off" (uncached model), "cold", "disk" (warmed from the persistent
    # store) or "process" (reused from an earlier task in this process).
    source: str
    loaded_entries: int = 0


def shared_execution_model(deployment, config) -> ModelLease:
    """A (possibly disk-warmed) execution model for one task.

    Cached models are keyed by configuration fingerprint and reused
    across every task of this process; the first lease per fingerprint
    pre-loads the persistent snapshot when a cache directory is active.
    Uncached configs (``config.perf_cache=False``) always build fresh.
    """
    from repro.api import execution_model_for

    exec_model = execution_model_for(deployment, config)
    if not isinstance(exec_model, CachedExecutionModel):
        return ModelLease(exec_model=exec_model, source="off")
    key = (exec_model.fingerprint, exec_model.max_entries)
    shared = _process_models.get(key)
    if shared is not None:
        return ModelLease(exec_model=shared, source="process")
    loaded = 0
    source = "cold"
    if _process_cache_dir is not None:
        loaded = PersistentPerfCache(_process_cache_dir).warm(exec_model)
        if loaded:
            source = "disk"
    _process_models[key] = exec_model
    _persisted_entries[key] = exec_model.num_entries
    return ModelLease(exec_model=exec_model, source=source, loaded_entries=loaded)


def persist_execution_model(exec_model: ExecutionModel) -> int:
    """Merge a model's entries into the persistent store; new entries.

    No-op (returns 0) when no cache directory is active, the model is
    uncached, or the model has gained no entries since its last persist
    (the fully-warm fast path: no disk traffic at all).
    """
    if _process_cache_dir is None or not isinstance(exec_model, CachedExecutionModel):
        return 0
    key = (exec_model.fingerprint, exec_model.max_entries)
    if _persisted_entries.get(key) == exec_model.num_entries:
        return 0
    merged = PersistentPerfCache(_process_cache_dir).persist(exec_model)
    _persisted_entries[key] = exec_model.num_entries
    return merged


def clear_process_models() -> None:
    """Drop this process's shared warm models (tests and benchmarks)."""
    _process_models.clear()
    _persisted_entries.clear()


# ----------------------------------------------------------------------
# The fan-out engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskOutcome:
    """One task's result plus its execution footprint."""

    index: int
    value: Any
    worker_pid: int
    seconds: float


@dataclass
class SweepReport:
    """Everything one ``map_tasks`` call did, in canonical task order."""

    outcomes: list[TaskOutcome] = field(default_factory=list)
    jobs: int = 1
    cache_dir: Path | None = None
    wall_seconds: float = 0.0

    @property
    def values(self) -> list[Any]:
        return [outcome.value for outcome in self.outcomes]

    @property
    def num_workers(self) -> int:
        return len({outcome.worker_pid for outcome in self.outcomes})

    def worker_rows(self) -> list[dict[str, Any]]:
        """Per-task timing rows for telemetry export."""
        return [
            {
                "task_index": outcome.index,
                "worker_pid": outcome.worker_pid,
                "task_seconds": outcome.seconds,
                "jobs": self.jobs,
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            }
            for outcome in self.outcomes
        ]


def _run_one(fn: Callable[[Any], Any], payload: tuple[int, Any]) -> TaskOutcome:
    index, item = payload
    start = time.perf_counter()
    value = fn(item)
    return TaskOutcome(
        index=index,
        value=value,
        worker_pid=os.getpid(),
        seconds=time.perf_counter() - start,
    )


def map_tasks(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> SweepReport:
    """Run ``fn`` over ``items``, serially or across worker processes.

    Results always come back in item order — the parallel path is
    output-equivalent to the serial one whenever ``fn`` is a pure
    function of its item (every sweep task is: specs carry their own
    seeds, and the shared perf cache is bit-identical by construction).

    ``fn`` and each item must be picklable (module-level function,
    dataclass specs) when ``jobs > 1``.  ``jobs`` and ``cache_dir``
    default to ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``.
    """
    if jobs is None:
        jobs = jobs_from_env()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cache_dir is None:
        cache_dir = cache_dir_from_env()
    cache_dir = Path(cache_dir) if cache_dir is not None else None

    tasks = list(enumerate(items))
    start = time.perf_counter()
    if jobs == 1 or len(tasks) <= 1:
        previous = _process_cache_dir
        _set_process_cache_dir(cache_dir)
        try:
            outcomes = [_run_one(fn, task) for task in tasks]
        finally:
            _set_process_cache_dir(previous)
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=_worker_init,
            initargs=(str(cache_dir) if cache_dir else None,),
        ) as pool:
            outcomes = list(pool.map(partial(_run_one, fn), tasks))
    return SweepReport(
        outcomes=outcomes,
        jobs=jobs,
        cache_dir=cache_dir,
        wall_seconds=time.perf_counter() - start,
    )
