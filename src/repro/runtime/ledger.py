"""Append-only run ledger: crash-safe journaling of sweep task outcomes.

A multi-hour sweep that dies at cell 47/48 should not owe the world 47
recomputations.  The ledger gives every ``map_tasks`` call a durable
record of what already finished:

* the sweep is identified by a **fingerprint** — sha256 over the
  canonical ``repr`` of the task function and every item, so a ledger
  can never be replayed against a different grid;
* every completed :class:`~repro.runtime.engine.TaskOutcome` is
  appended as one self-checksummed JSONL line (pickled value, base64),
  flushed and fsynced before the supervisor moves on — a ``kill -9``
  loses at most the cell in flight;
* ``--resume`` loads the ledger back and skips every recorded index;
  replayed values are pickle round-trips, so a resumed sweep is
  bit-identical to an uninterrupted one;
* a corrupt line (torn write, flipped bits, truncation) fails its
  checksum and degrades to *recompute that cell*, never to an error —
  symmetric with :mod:`repro.perf.disk_cache`'s cold-start-on-garbage
  policy.

File layout: ``<run_dir>/ledger-<fingerprint16>.jsonl`` — a header line
(`magic`, version, full fingerprint, task count) followed by one task
line per completed outcome.  Opening a ledger for resume compacts it:
valid lines are rewritten atomically, corrupt ones dropped.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.runtime.supervisor import TaskOutcome

LEDGER_MAGIC = "repro-sweep-ledger"
LEDGER_VERSION = 1


def sweep_fingerprint(fn: Any, items: list[Any]) -> str:
    """sha256 identity of one sweep: the task function plus every item.

    Built from canonical ``repr``\\ s (dataclass reprs are deterministic),
    so equal spec lists fingerprint equal across processes and runs,
    and any reordering, addition or edit changes the fingerprint.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{getattr(fn, '__module__', '')}.{getattr(fn, '__qualname__', repr(fn))}".encode())
    hasher.update(f"#{len(items)}".encode())
    for item in items:
        hasher.update(b"\x00")
        hasher.update(repr(item).encode())
    return hasher.hexdigest()


def _checksum(record: dict[str, Any]) -> str:
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def encode_outcome(outcome: "TaskOutcome") -> str:
    """One outcome as a self-checksummed JSON line (no trailing newline)."""
    record = {
        "kind": "task",
        "index": outcome.index,
        "attempt": outcome.attempt,
        "worker_pid": outcome.worker_pid,
        "seconds": outcome.seconds,
        "payload": base64.b64encode(
            pickle.dumps(outcome.value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }
    record["sha256"] = _checksum(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def decode_outcome(line: str) -> "TaskOutcome | None":
    """Parse one ledger line back into an outcome; ``None`` on any damage.

    Every failure mode — broken JSON, missing fields, checksum
    mismatch, unpicklable payload — returns ``None`` so the caller
    recomputes that cell instead of aborting the resume.
    """
    from repro.runtime.supervisor import TaskOutcome

    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or record.get("kind") != "task":
        return None
    stated = record.pop("sha256", None)
    if stated != _checksum(record):
        return None
    try:
        value = pickle.loads(base64.b64decode(record["payload"]))
        return TaskOutcome(
            index=int(record["index"]),
            value=value,
            worker_pid=int(record["worker_pid"]),
            seconds=float(record["seconds"]),
            attempt=int(record["attempt"]),
            resumed=True,
        )
    except Exception:
        return None


class RunLedger:
    """One sweep's append-only outcome journal inside a run directory."""

    def __init__(self, run_dir: str | Path, fingerprint: str) -> None:
        self.run_dir = Path(run_dir)
        self.fingerprint = fingerprint
        self.path = self.run_dir / f"ledger-{fingerprint[:16]}.jsonl"
        self._handle = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> dict[int, "TaskOutcome"]:
        """Recorded outcomes by task index; ``{}`` when cold or foreign.

        A missing file, a bad/missing header, or a header naming a
        different fingerprint all read as an empty ledger.  Damaged
        task lines are skipped individually.  A later record for the
        same index wins (a retried-then-journaled cell).
        """
        try:
            # Flipped bytes may not be valid UTF-8; substitute rather
            # than raise, so only the damaged lines fail their checksum.
            lines = self.path.read_text(errors="replace").splitlines()
        except OSError:
            return {}
        if not lines or not self._header_ok(lines[0]):
            return {}
        outcomes: dict[int, "TaskOutcome"] = {}
        for line in lines[1:]:
            outcome = decode_outcome(line)
            if outcome is not None:
                outcomes[outcome.index] = outcome
        return outcomes

    def _header_ok(self, line: str) -> bool:
        try:
            header = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return False
        return (
            isinstance(header, dict)
            and header.get("kind") == "header"
            and header.get("magic") == LEDGER_MAGIC
            and header.get("version") == LEDGER_VERSION
            and header.get("fingerprint") == self.fingerprint
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def start(self, num_tasks: int, resume: bool) -> dict[int, "TaskOutcome"]:
        """Open the ledger for appending; recorded outcomes if resuming.

        Resume compacts the file first — header plus every valid task
        line, rewritten atomically — so damage never accumulates.  A
        fresh (non-resume) start truncates any previous ledger.
        """
        self.run_dir.mkdir(parents=True, exist_ok=True)
        recorded = self.load() if resume else {}
        header = {
            "kind": "header",
            "magic": LEDGER_MAGIC,
            "version": LEDGER_VERSION,
            "fingerprint": self.fingerprint,
            "num_tasks": num_tasks,
        }
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        with tmp.open("w") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for index in sorted(recorded):
                handle.write(encode_outcome(recorded[index]) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._handle = self.path.open("a")
        return recorded

    def record(self, outcome: "TaskOutcome") -> None:
        """Append one completed outcome, flushed and fsynced."""
        if self._handle is None:
            raise RuntimeError("ledger not started")
        self._handle.write(encode_outcome(outcome) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
