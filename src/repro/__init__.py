"""Reproduction of *Sarathi-Serve* (Agrawal et al., OSDI 2024).

Chunked-prefills and stall-free batching for LLM inference serving,
implemented end to end on a discrete-event GPU-roofline simulator:

* ``repro.models`` / ``repro.hardware`` / ``repro.parallel`` — the
  model, device and parallelism catalogs (Table 1);
* ``repro.perf`` — the analytical execution-time model (§3.1);
* ``repro.memory`` — paged and reservation KV-cache allocators;
* ``repro.scheduling`` + ``repro.core`` — the four schedulers
  (Algorithms 1-3) and the Table 4 ablations;
* ``repro.engine`` — the event-driven replica/pipeline engine;
* ``repro.workload`` — Table 2 workload synthesis;
* ``repro.metrics`` — TTFT/TBT/SLO/capacity machinery (§2.4, §5.1);
* ``repro.api`` — the high-level ``Deployment``/``simulate`` facade.

Quickstart::

    from repro import Deployment, ServingConfig, SchedulerKind, simulate
    from repro.models import MISTRAL_7B
    from repro.hardware import A100_80G
    from repro.workload import SHAREGPT4, generate_requests

    deployment = Deployment(model=MISTRAL_7B, gpu=A100_80G)
    trace = generate_requests(SHAREGPT4, num_requests=100, qps=1.0, seed=0)
    result, metrics = simulate(
        deployment, ServingConfig(scheduler=SchedulerKind.SARATHI), trace
    )
    print(metrics.p99_tbt, metrics.median_ttft)
"""

from repro.api import (
    Deployment,
    ServingConfig,
    build_engine,
    build_memory,
    build_scheduler,
    clone_requests,
    simulate,
)
from repro.cluster import (
    AdmissionPolicy,
    FaultSchedule,
    FleetConfig,
    FleetResult,
    LeastOutstandingTokensRouter,
    ReplicaFault,
    SloAwareRouter,
    simulate_fleet,
)
from repro.types import (
    IterationTime,
    PreemptionMode,
    Request,
    RequestPhase,
    SchedulerKind,
    TokenWork,
)

__version__ = "0.1.0"

__all__ = [
    "Deployment",
    "ServingConfig",
    "SchedulerKind",
    "PreemptionMode",
    "simulate",
    "simulate_fleet",
    "FleetConfig",
    "FleetResult",
    "FaultSchedule",
    "ReplicaFault",
    "AdmissionPolicy",
    "LeastOutstandingTokensRouter",
    "SloAwareRouter",
    "build_engine",
    "build_scheduler",
    "build_memory",
    "clone_requests",
    "Request",
    "RequestPhase",
    "TokenWork",
    "IterationTime",
    "__version__",
]
