"""Fundamental value types shared across the whole library.

Everything in the simulator runs on two base units:

* **seconds** (floats) for all wall-clock quantities, and
* **tokens** (ints) for all sequence-length quantities.

Keeping the units uniform at the type layer means the perf model, the
schedulers and the metrics pipeline never need unit conversions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class RequestPhase(enum.Enum):
    """Lifecycle phase of a request inside the serving engine."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"
    PREEMPTED = "preempted"


class SchedulerKind(enum.Enum):
    """The scheduler families studied by the paper (§2.5, §4)."""

    FASTER_TRANSFORMER = "faster_transformer"
    ORCA = "orca"
    VLLM = "vllm"
    SARATHI = "sarathi"
    SARATHI_DYNAMIC = "sarathi_dynamic"
    CHUNKED_ONLY = "chunked_prefills_only"
    HYBRID_ONLY = "hybrid_batching_only"


class PreemptionMode(str, enum.Enum):
    """What eviction does to a preempted request's KV cache.

    ``RECOMPUTE`` frees the cache and re-prefills from scratch (vLLM's
    default); ``SWAP`` parks it in host memory and pays PCIe transfers
    instead.  The ``str`` mixin keeps the enum comparable and
    serializable as its plain string value, so existing call sites that
    pass ``"recompute"``/``"swap"`` keep working unchanged.
    """

    RECOMPUTE = "recompute"
    SWAP = "swap"

    @classmethod
    def parse(cls, value: "PreemptionMode | str") -> "PreemptionMode":
        """Coerce a string (or enum) into a mode, with a naming error."""
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(repr(mode.value) for mode in cls)
            raise ValueError(
                f"unknown preemption_mode {value!r}; choose one of {choices}"
            ) from None


_request_ids = itertools.count()


def next_request_id() -> int:
    """Return a process-unique monotonically increasing request id."""
    return next(_request_ids)


@dataclass
class Request:
    """A single inference request and its mutable serving state.

    A request owns ``prompt_len`` input tokens that must be prefilled
    (possibly over several chunked iterations) and then emits
    ``output_len`` output tokens: the first one when its prefill
    completes and the rest from decode iterations, one token each.

    Preemption with recompute (vLLM's policy) frees the KV cache and
    folds already-emitted output tokens back into the prefill work:
    ``prefill_target`` grows to ``prompt_len + num_emitted`` and the
    request re-queues.  Emitted-token bookkeeping (``num_emitted``,
    ``token_times``) is monotone — users saw those tokens.
    """

    prompt_len: int
    output_len: int
    arrival_time: float = 0.0
    request_id: int = field(default_factory=next_request_id)
    # Multi-tenant accounting: which client/tenant issued the request
    # (used by fairness-aware schedulers; 0 = single-tenant default).
    client_id: int = 0

    # --- prefix-cache identity (immutable) -------------------------
    # Which shared-prefix lineage the request belongs to (conversation
    # id, tenant id, …); None opts out of prefix caching entirely.
    prefix_id: int | None = None
    # How many leading prompt tokens are attested byte-identical to the
    # lineage's published prefix; sharing never exceeds this.
    prefix_len: int = 0
    # Cap on how much of the *final* context this request publishes
    # back to the store when it finishes: None publishes everything
    # (conversation-style history), N publishes only the first N tokens
    # (e.g. a tenant's shared system prompt).
    prefix_publish_len: int | None = None

    # --- mutable serving state -------------------------------------
    phase: RequestPhase = RequestPhase.QUEUED
    prefill_target: int = 0          # tokens that must be (re)prefilled
    prefill_done: int = 0            # prefill tokens processed this epoch
    decode_steps: int = 0            # decode iterations run this epoch
    num_emitted: int = 0             # output tokens emitted (monotone)
    first_scheduled_at: float | None = None
    first_token_at: float | None = None
    finished_at: float | None = None
    token_times: list[float] = field(default_factory=list)
    num_restarts: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len <= 0:
            raise ValueError(f"prompt_len must be positive, got {self.prompt_len}")
        if self.output_len <= 0:
            raise ValueError(f"output_len must be positive, got {self.output_len}")
        if self.prefix_id is not None and self.prefix_id < 0:
            raise ValueError(f"prefix_id must be non-negative, got {self.prefix_id}")
        if not 0 <= self.prefix_len <= self.prompt_len:
            raise ValueError(
                f"prefix_len must be in [0, prompt_len], got {self.prefix_len} "
                f"with prompt_len {self.prompt_len}"
            )
        if self.prefix_publish_len is not None and self.prefix_publish_len < 0:
            raise ValueError(
                f"prefix_publish_len must be non-negative or None, "
                f"got {self.prefix_publish_len}"
            )
        if self.prefill_target == 0:
            self.prefill_target = self.prompt_len

    # --- derived quantities ------------------------------------------------
    @property
    def total_len(self) -> int:
        """Prompt plus output tokens — the final KV-cache footprint."""
        return self.prompt_len + self.output_len

    @property
    def context_len(self) -> int:
        """Tokens currently resident in the KV cache."""
        return self.prefill_done + self.decode_steps

    @property
    def remaining_prefill(self) -> int:
        return self.prefill_target - self.prefill_done

    @property
    def remaining_output(self) -> int:
        return self.output_len - self.num_emitted

    @property
    def is_prefill_complete(self) -> bool:
        return self.prefill_done >= self.prefill_target

    @property
    def is_finished(self) -> bool:
        return self.phase is RequestPhase.FINISHED

    # --- lifecycle transitions (called by schedulers) -----------------------
    def record_prefill(self, num_tokens: int, now: float) -> None:
        """Commit a completed prefill chunk of ``num_tokens``."""
        if num_tokens > self.remaining_prefill:
            raise ValueError(
                f"request {self.request_id}: prefill of {num_tokens} exceeds "
                f"remaining {self.remaining_prefill}"
            )
        self.prefill_done += num_tokens
        if self.is_prefill_complete:
            self.phase = RequestPhase.DECODE
            if self.num_emitted == 0:
                self._emit_token(now)
            self._maybe_finish(now)

    def record_decode(self, now: float) -> None:
        """Commit one completed decode step, emitting one token."""
        if not self.is_prefill_complete:
            raise ValueError(f"request {self.request_id} decoded before prefill done")
        self.decode_steps += 1
        self._emit_token(now)
        self._maybe_finish(now)

    def _emit_token(self, now: float) -> None:
        self.num_emitted += 1
        self.token_times.append(now)
        if self.first_token_at is None:
            self.first_token_at = now

    def _maybe_finish(self, now: float) -> None:
        if self.num_emitted >= self.output_len:
            self.phase = RequestPhase.FINISHED
            self.finished_at = now

    def restart_after_preemption(self) -> None:
        """Re-queue after a recompute preemption freed the KV cache.

        Already-emitted tokens must have their KV rebuilt, so they join
        the prefill work; nothing is re-emitted.
        """
        self.prefill_target = self.prompt_len + self.num_emitted
        self.prefill_done = 0
        self.decode_steps = 0
        self.phase = RequestPhase.QUEUED
        self.num_restarts += 1

    # --- latency metrics ----------------------------------------------------
    @property
    def ttft(self) -> float | None:
        """Time-to-first-token measured from arrival (§2.4)."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.arrival_time

    @property
    def scheduling_delay(self) -> float | None:
        """Queueing delay before the request first entered a batch."""
        if self.first_scheduled_at is None:
            return None
        return self.first_scheduled_at - self.arrival_time

    @property
    def tbt_samples(self) -> list[float]:
        """Intervals between consecutive output tokens (§2.4).

        The first output token is covered by TTFT, so TBT samples start
        with the gap between tokens one and two.
        """
        times = self.token_times
        return [b - a for a, b in zip(times, times[1:])]

    @property
    def e2e_latency(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival_time


@dataclass(frozen=True)
class TokenWork:
    """One request's contribution of work to a batch iteration.

    ``num_tokens`` tokens are processed whose attention spans
    ``past_len`` previously cached tokens plus (causally) themselves.
    A decode step is ``num_tokens == 1`` with ``past_len`` equal to the
    full context; a prefill chunk has ``num_tokens == chunk`` with
    ``past_len`` equal to the tokens of earlier chunks.
    """

    num_tokens: int
    past_len: int
    is_prefill: bool
    emits_token: bool = True

    def __post_init__(self) -> None:
        if self.num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        if self.past_len < 0:
            raise ValueError("past_len must be non-negative")

    @property
    def attention_span(self) -> int:
        """Total KV positions attended to by the last token of the work."""
        return self.past_len + self.num_tokens

    @classmethod
    def decode(cls, context_len: int) -> "TokenWork":
        """One decode step attending to ``context_len`` cached tokens."""
        return cls(num_tokens=1, past_len=context_len, is_prefill=False)

    @classmethod
    def prefill_chunk(
        cls, chunk: int, past_len: int = 0, is_last: bool = True
    ) -> "TokenWork":
        """A prefill chunk; only the final chunk emits the first token."""
        return cls(
            num_tokens=chunk,
            past_len=past_len,
            is_prefill=True,
            emits_token=is_last,
        )


@dataclass(frozen=True)
class IterationTime:
    """Decomposition of one model iteration's execution time (seconds).

    Mirrors the paper's Figure 4 breakdown: linear operators, attention,
    and "others" (norms, embeddings, elementwise), plus communication
    (TP allreduce + PP sends) and fixed kernel/CPU overheads.
    """

    linear: float
    attention: float
    others: float
    communication: float
    overhead: float

    @property
    def total(self) -> float:
        return self.linear + self.attention + self.others + self.communication + self.overhead

    def __add__(self, other: "IterationTime") -> "IterationTime":
        return IterationTime(
            linear=self.linear + other.linear,
            attention=self.attention + other.attention,
            others=self.others + other.others,
            communication=self.communication + other.communication,
            overhead=self.overhead + other.overhead,
        )

    def scaled(self, factor: float) -> "IterationTime":
        return IterationTime(
            linear=self.linear * factor,
            attention=self.attention * factor,
            others=self.others * factor,
            communication=self.communication * factor,
            overhead=self.overhead * factor,
        )


ZERO_TIME = IterationTime(0.0, 0.0, 0.0, 0.0, 0.0)
