"""Comparison and perf-trajectory reports.

One call replays the same trace under several schedulers and renders a
markdown table of the paper's key metrics — the quickest way to see
the throughput-latency tradeoff on a new deployment or workload.
Exposed on the CLI as ``python -m repro compare``.

The module also defines the perf-regression report format: each
``BenchCase`` times one workload on the cached and uncached execution
models (``repro.perf.cache``) and asserts the outputs stayed
bit-identical; ``write_bench_json`` persists the cases as
``BENCH_simulator.json`` so successive PRs have a speed trajectory to
compare against (see ``benchmarks/bench_simulator_speed.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api import Deployment, ServingConfig, simulate
from repro.metrics.timeline import longest_stall
from repro.types import Request, SchedulerKind

DEFAULT_COMPARISON = (
    SchedulerKind.FASTER_TRANSFORMER,
    SchedulerKind.ORCA,
    SchedulerKind.VLLM,
    SchedulerKind.SARATHI,
)


@dataclass(frozen=True)
class ComparisonRow:
    """One scheduler's metrics on the shared trace."""

    scheduler: str
    median_ttft: float
    p99_tbt: float
    max_tbt: float
    worst_stall: float
    throughput_tokens_per_s: float
    num_preemptions: int


def compare_schedulers(
    deployment: Deployment,
    requests: list[Request],
    schedulers: tuple[SchedulerKind, ...] = DEFAULT_COMPARISON,
    token_budget: int = 512,
    max_batch_size: int = 128,
    perf_cache: bool = True,
) -> list[ComparisonRow]:
    """Replay ``requests`` under each scheduler and collect metrics."""
    if not requests:
        raise ValueError("compare_schedulers needs a non-empty trace")
    rows = []
    for kind in schedulers:
        config = ServingConfig(
            scheduler=kind,
            token_budget=token_budget,
            max_batch_size=max_batch_size,
            perf_cache=perf_cache,
        )
        result, metrics = simulate(deployment, config, requests)
        rows.append(
            ComparisonRow(
                scheduler=kind.value,
                median_ttft=metrics.median_ttft,
                p99_tbt=metrics.p99_tbt,
                max_tbt=metrics.max_tbt,
                worst_stall=longest_stall(result.finished_requests),
                throughput_tokens_per_s=metrics.throughput_tokens_per_s,
                num_preemptions=metrics.num_preemptions,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Perf-regression reporting (BENCH_simulator.json)
# ----------------------------------------------------------------------
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCase:
    """One workload timed on the uncached vs the cached execution model.

    ``identical`` records whether the two paths produced bit-identical
    simulation outputs — a speedup only counts when it is True.
    """

    name: str
    uncached_seconds: float
    cached_seconds: float
    identical: bool
    cache_hits: int = 0
    cache_misses: int = 0
    work_hits: int = 0
    work_misses: int = 0
    detail: str = ""

    @property
    def speedup(self) -> float:
        if self.cached_seconds <= 0:
            return float("inf")
        return self.uncached_seconds / self.cached_seconds

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def work_hit_rate(self) -> float:
        total = self.work_hits + self.work_misses
        return self.work_hits / total if total else 0.0

    def as_row(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "uncached_seconds": self.uncached_seconds,
            "cached_seconds": self.cached_seconds,
            "speedup": self.speedup,
            "identical": self.identical,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "work_hits": self.work_hits,
            "work_misses": self.work_misses,
            "work_hit_rate": self.work_hit_rate,
            "detail": self.detail,
        }


def bench_payload(
    cases: list[BenchCase], meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The JSON document ``BENCH_simulator.json`` holds."""
    if not cases:
        raise ValueError("a bench payload needs at least one case")
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "simulator_speed",
        "meta": meta or {},
        "cases": [case.as_row() for case in cases],
    }


def write_bench_json(
    path: str | Path, cases: list[BenchCase], meta: dict[str, Any] | None = None
) -> Path:
    """Persist a perf-regression report; returns the resolved path."""
    path = Path(path)
    path.write_text(json.dumps(bench_payload(cases, meta), indent=2) + "\n")
    return path


def read_bench_json(path: str | Path) -> dict[str, Any]:
    """Load a previously written perf-regression report."""
    return json.loads(Path(path).read_text())


def render_bench_table(cases: list[BenchCase]) -> str:
    """Plain-text summary of a perf-regression run."""
    from repro.experiments.common import format_table

    headers = ["case", "uncached (s)", "cached (s)", "speedup", "batch hits", "work hits", "identical"]
    rows = [
        [
            case.name,
            f"{case.uncached_seconds:.2f}",
            f"{case.cached_seconds:.2f}",
            f"{case.speedup:.2f}x",
            f"{case.hit_rate:.0%}",
            f"{case.work_hit_rate:.0%}",
            "yes" if case.identical else "NO",
        ]
        for case in cases
    ]
    return format_table(headers, rows)


def render_markdown(rows: list[ComparisonRow], title: str = "") -> str:
    """A GitHub-flavoured markdown table of the comparison."""
    if not rows:
        raise ValueError("nothing to render")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(
        "| scheduler | median TTFT (s) | P99 TBT (s) | worst stall (s) "
        "| throughput (tok/s) | preemptions |"
    )
    lines.append("|---|---|---|---|---|---|")
    for row in rows:
        lines.append(
            f"| {row.scheduler} | {row.median_ttft:.3f} | {row.p99_tbt:.3f} "
            f"| {row.worst_stall:.2f} | {row.throughput_tokens_per_s:.0f} "
            f"| {row.num_preemptions} |"
        )
    return "\n".join(lines)
