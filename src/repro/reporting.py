"""Side-by-side scheduler comparison reports.

One call replays the same trace under several schedulers and renders a
markdown table of the paper's key metrics — the quickest way to see
the throughput-latency tradeoff on a new deployment or workload.
Exposed on the CLI as ``python -m repro compare``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, simulate
from repro.metrics.timeline import longest_stall
from repro.types import Request, SchedulerKind

DEFAULT_COMPARISON = (
    SchedulerKind.FASTER_TRANSFORMER,
    SchedulerKind.ORCA,
    SchedulerKind.VLLM,
    SchedulerKind.SARATHI,
)


@dataclass(frozen=True)
class ComparisonRow:
    """One scheduler's metrics on the shared trace."""

    scheduler: str
    median_ttft: float
    p99_tbt: float
    max_tbt: float
    worst_stall: float
    throughput_tokens_per_s: float
    num_preemptions: int


def compare_schedulers(
    deployment: Deployment,
    requests: list[Request],
    schedulers: tuple[SchedulerKind, ...] = DEFAULT_COMPARISON,
    token_budget: int = 512,
    max_batch_size: int = 128,
) -> list[ComparisonRow]:
    """Replay ``requests`` under each scheduler and collect metrics."""
    if not requests:
        raise ValueError("compare_schedulers needs a non-empty trace")
    rows = []
    for kind in schedulers:
        config = ServingConfig(
            scheduler=kind, token_budget=token_budget, max_batch_size=max_batch_size
        )
        result, metrics = simulate(deployment, config, requests)
        rows.append(
            ComparisonRow(
                scheduler=kind.value,
                median_ttft=metrics.median_ttft,
                p99_tbt=metrics.p99_tbt,
                max_tbt=metrics.max_tbt,
                worst_stall=longest_stall(result.finished_requests),
                throughput_tokens_per_s=metrics.throughput_tokens_per_s,
                num_preemptions=metrics.num_preemptions,
            )
        )
    return rows


def render_markdown(rows: list[ComparisonRow], title: str = "") -> str:
    """A GitHub-flavoured markdown table of the comparison."""
    if not rows:
        raise ValueError("nothing to render")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(
        "| scheduler | median TTFT (s) | P99 TBT (s) | worst stall (s) "
        "| throughput (tok/s) | preemptions |"
    )
    lines.append("|---|---|---|---|---|---|")
    for row in rows:
        lines.append(
            f"| {row.scheduler} | {row.median_ttft:.3f} | {row.p99_tbt:.3f} "
            f"| {row.worst_stall:.2f} | {row.throughput_tokens_per_s:.0f} "
            f"| {row.num_preemptions} |"
        )
    return "\n".join(lines)
