"""Iteration timeline records and the analyses built on them.

Every executed (stage, batch) pair leaves one ``IterationRecord``.
From these we derive the paper's scheduling diagnostics: pipeline
bubbles (idle gaps inside a stage's busy span, Fig. 8) and per-stage
utilization; generation stalls (Fig. 1a) are derived from request
token timestamps instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import IterationTime, Request


@dataclass(frozen=True)
class IterationRecord:
    """One batch's execution on one pipeline stage."""

    stage: int
    start: float
    end: float
    batch_id: int
    num_prefill_tokens: int
    num_decode_tokens: int
    num_prefill_seqs: int
    num_decode_seqs: int
    breakdown: IterationTime

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def num_tokens(self) -> int:
        return self.num_prefill_tokens + self.num_decode_tokens

    @property
    def is_hybrid(self) -> bool:
        return self.num_prefill_seqs > 0 and self.num_decode_seqs > 0


@dataclass(frozen=True)
class StageUtilization:
    """Busy/idle accounting of one pipeline stage over its active span."""

    stage: int
    busy_time: float
    span: float
    num_bubbles: int
    bubble_time: float

    @property
    def utilization(self) -> float:
        if self.span <= 0:
            return 0.0
        return self.busy_time / self.span

    @property
    def bubble_fraction(self) -> float:
        if self.span <= 0:
            return 0.0
        return self.bubble_time / self.span


def stage_utilization(
    records: list[IterationRecord],
    stage: int,
    min_gap: float = 1e-9,
) -> StageUtilization:
    """Bubble accounting for one stage: gaps between consecutive batches.

    The span runs from the stage's first batch start to its last batch
    end; every gap larger than ``min_gap`` inside the span is a bubble
    (wasted GPU cycles, §3.3).
    """
    mine = sorted((r for r in records if r.stage == stage), key=lambda r: r.start)
    if not mine:
        return StageUtilization(stage, 0.0, 0.0, 0, 0.0)
    busy = sum(r.duration for r in mine)
    span = mine[-1].end - mine[0].start
    bubbles = 0
    bubble_time = 0.0
    for prev, cur in zip(mine, mine[1:]):
        gap = cur.start - prev.end
        if gap > min_gap:
            bubbles += 1
            bubble_time += gap
    return StageUtilization(stage, busy, span, bubbles, bubble_time)


def pipeline_bubble_time(
    records: list[IterationRecord],
    stage: int,
    min_gap: float = 1e-9,
) -> tuple[int, float]:
    """True pipeline bubbles of ``stage``: idle gaps while work existed.

    A gap in this stage's schedule only wastes GPU cycles when the
    *previous* stage was busy during it (a micro-batch was in flight
    but not ready here yet — the paper's PB1/PB2/PB3).  Gaps where the
    whole pipeline was drained are load idleness, not bubbles.
    Returns ``(num_bubbles, total_bubble_seconds)``.
    """
    if stage <= 0:
        return (0, 0.0)
    mine = sorted((r for r in records if r.stage == stage), key=lambda r: r.start)
    upstream = sorted(
        ((r.start, r.end) for r in records if r.stage == stage - 1)
    )
    count = 0
    total = 0.0
    for prev, cur in zip(mine, mine[1:]):
        gap_start, gap_end = prev.end, cur.start
        if gap_end - gap_start <= min_gap:
            continue
        overlap = _interval_overlap(gap_start, gap_end, upstream)
        if overlap > min_gap:
            count += 1
            total += overlap
    return (count, total)


def _interval_overlap(
    start: float, end: float, intervals: list[tuple[float, float]]
) -> float:
    """Length of ``[start, end]`` covered by a sorted interval list."""
    total = 0.0
    for a, b in intervals:
        if b <= start:
            continue
        if a >= end:
            break
        total += min(b, end) - max(a, start)
    return total


def generation_stalls(request: Request, threshold: float) -> list[float]:
    """TBT gaps of one request exceeding ``threshold`` seconds.

    A *generation stall* is a long pause between consecutive output
    tokens of a running request, caused by prefills (or preemptions)
    scheduled in between its decodes (§3.2, Fig. 1a).
    """
    return [gap for gap in request.tbt_samples if gap > threshold]


def longest_stall(requests: list[Request]) -> float:
    """The single worst inter-token gap across all requests."""
    worst = 0.0
    for request in requests:
        for gap in request.tbt_samples:
            worst = max(worst, gap)
    return worst
