"""Aggregate a simulation run into the paper's reported metrics.

The paper focuses on **median TTFT** (once per request) and **P99 TBT**
(one sample per decode token, pooled across requests) — §5 "Metrics".
We also report scheduling delay (sustainability check), throughput and
stall/bubble diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.metrics.slo import SLOSpec
from repro.metrics.stats import percentile
from repro.metrics.timeline import stage_utilization

if TYPE_CHECKING:  # avoid a runtime cycle with repro.engine.replica
    from repro.engine.replica import SimulationResult


@dataclass(frozen=True)
class RunMetrics:
    """Latency and throughput summary of one simulation run."""

    num_requests: int
    makespan: float
    median_ttft: float
    p90_ttft: float
    p99_ttft: float
    median_tbt: float
    p99_tbt: float
    max_tbt: float
    median_scheduling_delay: float
    p99_scheduling_delay: float
    output_tokens: int
    total_tokens: int
    num_preemptions: int
    throughput_rps: float
    throughput_tokens_per_s: float
    mean_bubble_fraction: float

    def meets(self, slo: SLOSpec) -> bool:
        """Whether this run satisfies an SLO (latency + sustainability)."""
        return (
            self.p99_tbt <= slo.p99_tbt
            and self.median_scheduling_delay <= slo.max_median_scheduling_delay
        )


def summarize(result: "SimulationResult") -> RunMetrics:
    """Compute ``RunMetrics`` from a finished simulation.

    TBT samples are taken from tokens emitted while load was still
    being offered (up to the last request arrival).  Without this
    window, a finite trace's *drain phase* — where a backlogged
    prefill-prioritizing scheduler degenerates into one giant prefill
    burst followed by stall-free decodes — would dilute the tail and
    make an unsustainable operating point look healthy.  Closed-loop
    traces (every request arrives at t=0) keep all samples.
    """
    finished = result.finished_requests
    if not finished:
        raise ValueError("no finished requests to summarize")

    ttfts = [r.ttft for r in finished]
    delays = [r.scheduling_delay for r in finished]
    window_end = max(r.arrival_time for r in result.requests)
    tbts: list[float] = []
    for request in finished:
        times = request.token_times
        tbts.extend(
            b - a for a, b in zip(times, times[1:]) if b <= window_end
        )
    if not tbts:
        # Closed-loop trace or too-short window: use every sample.
        for request in finished:
            tbts.extend(request.tbt_samples)
    if not tbts:
        # Degenerate single-token outputs; report zeros rather than fail.
        tbts = [0.0]

    output_tokens = sum(r.num_emitted for r in finished)
    total_tokens = sum(r.prompt_len + r.num_emitted for r in finished)
    makespan = result.makespan

    bubble_fracs = [
        stage_utilization(result.records, s).bubble_fraction
        for s in range(result.num_stages)
    ]

    return RunMetrics(
        num_requests=len(finished),
        makespan=makespan,
        median_ttft=percentile(ttfts, 50),
        p90_ttft=percentile(ttfts, 90),
        p99_ttft=percentile(ttfts, 99),
        median_tbt=percentile(tbts, 50),
        p99_tbt=percentile(tbts, 99),
        max_tbt=max(tbts),
        median_scheduling_delay=percentile(delays, 50),
        p99_scheduling_delay=percentile(delays, 99),
        output_tokens=output_tokens,
        total_tokens=total_tokens,
        num_preemptions=result.num_preemptions,
        throughput_rps=len(finished) / makespan if makespan > 0 else 0.0,
        throughput_tokens_per_s=total_tokens / makespan if makespan > 0 else 0.0,
        mean_bubble_fraction=sum(bubble_fracs) / len(bubble_fracs),
    )
