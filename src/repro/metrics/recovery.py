"""Time-to-SLO-reattainment: an MTTR-style recovery metric for fleets.

Goodput and aggregate percentiles say *how much* damage a fault did;
an operator also needs to know *how long* the fleet took to get back
inside its SLO.  This module scans a fleet run's token stream around
each disruption (a crash or a degraded-mode fault window opening) and
reports, per disruption, the delay until the fleet's windowed p99 TBT
was back under the SLO — the serving-system analogue of mean time to
recovery.

Derived purely from :class:`~repro.cluster.fleet.FleetResult` (events
plus per-request token timestamps), so it is bit-identical across the
two engines and costs nothing during simulation.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.metrics.stats import percentile

if TYPE_CHECKING:
    from repro.cluster.fleet import FleetResult

# Fleet event kinds that open a disruption.  Recoveries/restores close
# windows on their own; only the onset starts a recovery clock.
DISRUPTION_KINDS = frozenset({"fault_down", "fault_degrade"})


@dataclass(frozen=True)
class Disruption:
    """One disruption onset and its measured recovery."""

    time: float
    # Replica indices hit at this instant (a correlated domain event
    # lands several fault events on one timestamp — one disruption).
    replicas: tuple[int, ...]
    kinds: tuple[str, ...]
    # Seconds until windowed p99 TBT was back under the SLO, or None
    # when the run ended first (censored).
    recovery_time: float | None


@dataclass(frozen=True)
class RecoveryReport:
    """All disruptions of one run plus the MTTR-style summary."""

    slo_tbt: float
    window: float
    disruptions: tuple[Disruption, ...]

    @property
    def num_disruptions(self) -> int:
        return len(self.disruptions)

    @property
    def num_censored(self) -> int:
        return sum(1 for d in self.disruptions if d.recovery_time is None)

    @property
    def mean_recovery_time(self) -> float | None:
        """Mean over *measured* recoveries (censored ones excluded)."""
        measured = [
            d.recovery_time
            for d in self.disruptions
            if d.recovery_time is not None
        ]
        if not measured:
            return None
        return sum(measured) / len(measured)

    @property
    def max_recovery_time(self) -> float | None:
        measured = [
            d.recovery_time
            for d in self.disruptions
            if d.recovery_time is not None
        ]
        return max(measured) if measured else None


def _tbt_samples(result: "FleetResult") -> tuple[list[float], list[float]]:
    """All (timestamp, TBT) decode samples of the run, time-sorted.

    Each sample is stamped at the instant its token landed, so windowed
    percentiles reflect what users experienced *during* that window —
    including tokens from requests that only finished much later.
    """
    pairs: list[tuple[float, float]] = []
    for request in result.requests:
        times = request.token_times
        for earlier, later in zip(times, times[1:]):
            pairs.append((later, later - earlier))
    pairs.sort()
    return [t for t, _ in pairs], [gap for _, gap in pairs]


def recovery_report(
    result: "FleetResult",
    slo_tbt: float,
    window: float = 2.0,
    min_samples: int = 4,
) -> RecoveryReport:
    """Measure time-to-SLO-reattainment for every disruption in a run.

    A disruption is recovered at the first instant ``t`` at or after
    its onset whose following ``window`` seconds contain at least
    ``min_samples`` decode samples with p99 TBT at or under ``slo_tbt``.
    Candidate instants are the sample timestamps themselves (plus the
    onset), so the scan is exact, not grid-quantized.  A disruption the
    run ends on before reattainment is reported censored
    (``recovery_time=None``) rather than optimistically clamped.
    """
    if slo_tbt <= 0:
        raise ValueError(f"slo_tbt must be positive, got {slo_tbt}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")

    onsets: dict[float, tuple[list[int], list[str]]] = {}
    for event in result.events:
        if event.kind in DISRUPTION_KINDS:
            replicas, kinds = onsets.setdefault(event.time, ([], []))
            if event.replica is not None:
                replicas.append(event.replica)
            kinds.append(event.kind)

    times, gaps = _tbt_samples(result)

    def recovered_at(onset: float) -> float | None:
        start = bisect_left(times, onset)
        # Candidate window starts: the onset itself, then every sample
        # timestamp after it (the windowed p99 only changes there).
        candidates = [onset] + times[start:]
        for t in candidates:
            lo = bisect_left(times, t)
            hi = bisect_right(times, t + window)
            if hi - lo < min_samples:
                continue
            if t + window > result.makespan + 1e-9:
                # Window runs past the end of the run: whatever it
                # holds is truncated evidence, not a recovery.
                return None
            if percentile(sorted(gaps[lo:hi]), 99) <= slo_tbt:
                return t - onset
        return None

    disruptions = tuple(
        Disruption(
            time=onset,
            replicas=tuple(replicas),
            kinds=tuple(kinds),
            recovery_time=recovered_at(onset),
        )
        for onset, (replicas, kinds) in sorted(onsets.items())
    )
    return RecoveryReport(
        slo_tbt=slo_tbt, window=window, disruptions=disruptions
    )
