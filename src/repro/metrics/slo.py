"""Service-level objectives for capacity evaluation (§2.4, §5.1).

A system's *capacity* is the maximum sustainable load under which it
still meets the P99 TBT target and keeps scheduling delay bounded (the
paper uses a 2-second limit on *median* scheduling delay to ensure the
load is actually sustainable).

Two ways to obtain SLO values are provided: the paper's published
absolute thresholds (Table 3) and the derivation the paper used to
produce them — 5× (strict) or 25× (relaxed) the latency of a
reference decode iteration on the *same* substrate.  The derived mode
is the default for experiments here, because it stays self-consistent
with the simulator's calibration the same way the paper's SLOs were
self-consistent with their testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.iteration import ExecutionModel
from repro.perf.profiler import derive_slo

MAX_MEDIAN_SCHEDULING_DELAY = 2.0


@dataclass(frozen=True)
class SLOSpec:
    """A named latency target for capacity search."""

    name: str
    p99_tbt: float
    max_median_scheduling_delay: float = MAX_MEDIAN_SCHEDULING_DELAY

    def __post_init__(self) -> None:
        if self.p99_tbt <= 0:
            raise ValueError("p99_tbt must be positive")


# Table 3: absolute P99-TBT SLO thresholds in seconds (relaxed, strict).
PAPER_SLOS: dict[str, tuple[float, float]] = {
    "mistral-7b": (0.5, 0.1),
    "yi-34b": (1.0, 0.2),
    "llama2-70b": (5.0, 1.0),
    "falcon-180b": (5.0, 1.0),
}


def paper_slo(model_name: str, strict: bool) -> SLOSpec:
    """The paper's published Table 3 threshold for a model."""
    key = model_name.lower()
    if key not in PAPER_SLOS:
        raise KeyError(f"no Table 3 SLO for {model_name!r}; known: {sorted(PAPER_SLOS)}")
    relaxed, strict_value = PAPER_SLOS[key]
    if strict:
        return SLOSpec(name="strict", p99_tbt=strict_value)
    return SLOSpec(name="relaxed", p99_tbt=relaxed)


def derived_slo(exec_model: ExecutionModel, strict: bool) -> SLOSpec:
    """SLO derived from this substrate's reference decode latency (§5.1)."""
    name = "strict" if strict else "relaxed"
    return SLOSpec(name=name, p99_tbt=derive_slo(exec_model, strict))
