"""Per-request SLO attainment and goodput.

Capacity (§5.1) gates on *aggregate* percentiles; the disaggregation
papers the paper compares against (DistServe, SplitWise) instead report
**goodput** — the rate of requests that individually met their latency
deadlines.  Both views are useful: a system can pass an aggregate P99
while a specific user's stream was unusable.  This module scores each
request against a TTFT deadline and a per-token TBT deadline and
aggregates the attainment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.types import Request

if TYPE_CHECKING:
    from repro.cluster.fleet import FleetResult
    from repro.engine.replica import SimulationResult


@dataclass(frozen=True)
class RequestSLO:
    """Per-request deadlines (seconds)."""

    ttft_deadline: float
    tbt_deadline: float

    def __post_init__(self) -> None:
        if self.ttft_deadline <= 0 or self.tbt_deadline <= 0:
            raise ValueError("deadlines must be positive")


def request_meets_slo(request: Request, slo: RequestSLO) -> bool:
    """Whether one finished request met both of its deadlines."""
    if not request.is_finished or request.ttft is None:
        return False
    if request.ttft > slo.ttft_deadline:
        return False
    return all(gap <= slo.tbt_deadline for gap in request.tbt_samples)


@dataclass(frozen=True)
class GoodputReport:
    """SLO attainment of one run."""

    num_requests: int
    num_attained: int
    goodput_rps: float          # attained requests per second of makespan
    ttft_violations: int
    tbt_violations: int

    @property
    def attainment(self) -> float:
        if self.num_requests == 0:
            return 0.0
        return self.num_attained / self.num_requests


def goodput(result: "SimulationResult", slo: RequestSLO) -> GoodputReport:
    """Score every finished request against its deadlines."""
    finished = result.finished_requests
    attained = 0
    ttft_violations = 0
    tbt_violations = 0
    for request in finished:
        ok = True
        if request.ttft is None or request.ttft > slo.ttft_deadline:
            ttft_violations += 1
            ok = False
        if any(gap > slo.tbt_deadline for gap in request.tbt_samples):
            tbt_violations += 1
            ok = False
        if ok:
            attained += 1
    makespan = result.makespan if result.makespan > 0 else 1.0
    return GoodputReport(
        num_requests=len(finished),
        num_attained=attained,
        goodput_rps=attained / makespan,
        ttft_violations=ttft_violations,
        tbt_violations=tbt_violations,
    )


@dataclass(frozen=True)
class FleetGoodput:
    """SLO attainment of a fleet run, charged for overload drops.

    Unlike :class:`GoodputReport` (which scores finished requests), the
    fleet view divides by every request *offered* to the fleet — a shed
    or still-unfinished request counts against attainment, so an
    operator cannot improve the score by dropping hard requests.
    """

    num_offered: int
    num_finished: int
    num_shed: int
    num_attained: int
    goodput_rps: float
    ttft_violations: int
    tbt_violations: int
    num_failovers: int
    num_restarts: int

    @property
    def attainment(self) -> float:
        if self.num_offered == 0:
            return 0.0
        return self.num_attained / self.num_offered

    @property
    def shed_fraction(self) -> float:
        if self.num_offered == 0:
            return 0.0
        return self.num_shed / self.num_offered


def fleet_goodput(result: "FleetResult", slo: RequestSLO) -> FleetGoodput:
    """Score a fleet run: attained / offered, shed charged against it."""
    attained = 0
    ttft_violations = 0
    tbt_violations = 0
    for request in result.finished_requests:
        ok = True
        if request.ttft is None or request.ttft > slo.ttft_deadline:
            ttft_violations += 1
            ok = False
        if any(gap > slo.tbt_deadline for gap in request.tbt_samples):
            tbt_violations += 1
            ok = False
        if ok:
            attained += 1
    makespan = result.makespan if result.makespan > 0 else 1.0
    return FleetGoodput(
        num_offered=len(result.requests),
        num_finished=len(result.finished_requests),
        num_shed=result.num_shed,
        num_attained=attained,
        goodput_rps=attained / makespan,
        ttft_violations=ttft_violations,
        tbt_violations=tbt_violations,
        num_failovers=result.num_failovers,
        num_restarts=result.num_restarts,
    )
