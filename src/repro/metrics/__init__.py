"""Latency/throughput metrics, SLOs, timelines, and capacity search."""

from repro.metrics.capacity import CapacityResult, find_capacity
from repro.metrics.slo import (
    MAX_MEDIAN_SCHEDULING_DELAY,
    PAPER_SLOS,
    SLOSpec,
    derived_slo,
    paper_slo,
)
from repro.metrics.recovery import (
    Disruption,
    RecoveryReport,
    recovery_report,
)
from repro.metrics.stats import jain_fairness, mean, median, p90, p99, percentile
from repro.metrics.summary import RunMetrics, summarize
from repro.metrics.goodput import (
    FleetGoodput,
    GoodputReport,
    RequestSLO,
    fleet_goodput,
    goodput,
    request_meets_slo,
)
from repro.metrics.utilization import (
    BatchUtilization,
    RunUtilization,
    batch_utilization,
    run_utilization,
)
from repro.metrics.timeline import (
    IterationRecord,
    StageUtilization,
    generation_stalls,
    longest_stall,
    pipeline_bubble_time,
    stage_utilization,
)

__all__ = [
    "CapacityResult",
    "find_capacity",
    "SLOSpec",
    "PAPER_SLOS",
    "MAX_MEDIAN_SCHEDULING_DELAY",
    "paper_slo",
    "derived_slo",
    "percentile",
    "median",
    "mean",
    "p90",
    "p99",
    "RunMetrics",
    "summarize",
    "IterationRecord",
    "StageUtilization",
    "stage_utilization",
    "generation_stalls",
    "longest_stall",
    "pipeline_bubble_time",
    "BatchUtilization",
    "RunUtilization",
    "batch_utilization",
    "run_utilization",
    "RequestSLO",
    "GoodputReport",
    "goodput",
    "request_meets_slo",
    "FleetGoodput",
    "fleet_goodput",
    "jain_fairness",
    "Disruption",
    "RecoveryReport",
    "recovery_report",
]
