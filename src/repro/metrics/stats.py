"""Small statistics helpers shared by the metrics pipeline."""

from __future__ import annotations

import numpy as np


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of a non-empty sample."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


def median(values: list[float]) -> float:
    return percentile(values, 50.0)


def p90(values: list[float]) -> float:
    return percentile(values, 90.0)


def p99(values: list[float]) -> float:
    return percentile(values, 99.0)


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("cannot take the mean of an empty sample")
    return float(np.mean(values))


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1].

    1.0 means everyone got the same value; 1/n means one party got
    everything.  Used here on per-request latencies, where a high index
    means the latency burden is evenly spread rather than concentrated
    on a starved few.
    """
    if not values:
        raise ValueError("cannot take a fairness index of an empty sample")
    arr = np.asarray(values, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("fairness values must be non-negative")
    denom = float(len(arr) * np.sum(arr * arr))
    if denom == 0.0:
        return 1.0  # all-zero sample: perfectly equal
    return float(np.sum(arr)) ** 2 / denom
