"""Small statistics helpers shared by the metrics pipeline."""

from __future__ import annotations

import numpy as np


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of a non-empty sample."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


def median(values: list[float]) -> float:
    return percentile(values, 50.0)


def p90(values: list[float]) -> float:
    return percentile(values, 90.0)


def p99(values: list[float]) -> float:
    return percentile(values, 99.0)


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("cannot take the mean of an empty sample")
    return float(np.mean(values))
