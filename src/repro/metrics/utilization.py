"""Model FLOPs / bandwidth utilization accounting (MFU / MBU, §3.1).

The paper's Fig. 5 argument is that decode-only batches waste compute
(low MFU) and prefill-only batches waste bandwidth (low MBU), while
Sarathi's hybrid batches push both toward the roofline.  This module
computes per-batch and per-run MFU/MBU from the same accounting the
execution model uses, so the claim can be measured on real schedules.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.perf.iteration import ExecutionModel
from repro.types import TokenWork

if TYPE_CHECKING:
    from repro.engine.replica import SimulationResult


@dataclass(frozen=True)
class BatchUtilization:
    """Roofline utilization of one batch on one stage."""

    mfu: float   # achieved FLOP/s ÷ peak FLOP/s
    mbu: float   # achieved bytes/s ÷ peak bytes/s

    @property
    def balance(self) -> float:
        """min(MFU, MBU): 1.0 means the batch sits on the roofline knee."""
        return min(self.mfu, self.mbu)


def batch_utilization(
    exec_model: ExecutionModel, works: Sequence[TokenWork]
) -> BatchUtilization:
    """MFU/MBU of one batch iteration on one pipeline stage.

    FLOPs count the stage's linear + attention math; bytes count weight
    streaming, activations and KV reads.  Time is the execution model's
    own prediction, so utilization is consistent with the simulation.
    """
    if not works:
        return BatchUtilization(mfu=0.0, mbu=0.0)
    num_tokens = sum(w.num_tokens for w in works)
    flops = exec_model.linear.flops(num_tokens)
    num_bytes = exec_model.linear.weight_bytes() + exec_model.linear.activation_bytes(
        num_tokens
    )
    for work in works:
        flops += exec_model.attention.flops(work)
        num_bytes += exec_model.attention.kv_read_bytes(work)
    time = exec_model.stage_iteration_time(works).total
    if time <= 0:
        return BatchUtilization(mfu=0.0, mbu=0.0)
    return BatchUtilization(
        mfu=flops / time / exec_model.gpu.peak_flops,
        mbu=num_bytes / time / exec_model.gpu.memory_bandwidth,
    )


@dataclass(frozen=True)
class RunUtilization:
    """Time-weighted roofline utilization of a whole simulation run."""

    mean_mfu: float
    mean_mbu: float
    mean_balance: float


def run_utilization(
    exec_model: ExecutionModel, result: "SimulationResult"
) -> RunUtilization:
    """Time-weighted MFU/MBU over a run's stage-0 iteration records.

    Reconstructs each batch's utilization from the recorded token
    composition — exact for linear terms; attention uses the recorded
    aggregate token counts with a uniform-context approximation, which
    is a second-order term for the MFU/MBU comparison.
    """
    total_time = 0.0
    weighted_mfu = 0.0
    weighted_mbu = 0.0
    for record in result.records:
        if record.stage != 0 or record.duration <= 0:
            continue
        works: list[TokenWork] = []
        if record.num_prefill_tokens > 0:
            works.append(TokenWork.prefill_chunk(record.num_prefill_tokens))
        for _ in range(record.num_decode_seqs):
            avg_ctx = max(
                1, record.num_prefill_tokens + 1024  # nominal decode context
            )
            works.append(TokenWork.decode(avg_ctx))
        if not works:
            continue
        util = batch_utilization(exec_model, works)
        total_time += record.duration
        weighted_mfu += util.mfu * record.duration
        weighted_mbu += util.mbu * record.duration
    if total_time <= 0:
        return RunUtilization(0.0, 0.0, 0.0)
    mfu = weighted_mfu / total_time
    mbu = weighted_mbu / total_time
    return RunUtilization(mean_mfu=mfu, mean_mbu=mbu, mean_balance=min(mfu, mbu))
