"""Capacity search: the maximum sustainable QPS under an SLO (§5.1).

Capacity is the paper's headline throughput metric.  The search first
grows the load geometrically until the SLO breaks, then bisects the
bracketing interval to the requested relative tolerance.  Each probe
is a full simulation at that QPS supplied by the caller, so the search
is policy- and substrate-agnostic.

The bracket can be seeded with a ``qps_hint`` — typically the measured
capacity of an adjacent cell in a sweep grid (same deployment and
dataset, neighbouring scheduler or SLO).  A good hint lands the true
capacity inside the initial bracket, collapsing the growth phase to a
probe or two; accounting splits probes into bracketing vs bisection so
sweeps can measure exactly how much warm-starting saves.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.metrics.slo import SLOSpec
from repro.metrics.summary import RunMetrics

RunAtQPS = Callable[[float], RunMetrics]

# Fallback bracket when no hint is supplied (matches the historical
# qps_lo/qps_hi defaults of find_capacity).
DEFAULT_QPS_LO = 0.05
DEFAULT_QPS_HI = 4.0


@dataclass
class CapacityResult:
    """Outcome of one capacity search.

    ``probes`` records every simulation the search ran, in execution
    order: the first ``num_bracket_probes`` established the feasible/
    infeasible bracket, the remaining ``num_bisect_probes`` narrowed
    it.  ``qps_hint`` is the bracket seed the search started from (None
    when the caller passed explicit bounds) — comparing it with
    ``num_bracket_probes`` across a sweep shows what warm-started
    hints save.
    """

    capacity_qps: float
    slo: SLOSpec
    probes: list[tuple[float, RunMetrics, bool]] = field(default_factory=list)
    qps_hint: float | None = None
    num_bracket_probes: int = 0
    num_bisect_probes: int = 0

    @property
    def num_probes(self) -> int:
        return len(self.probes)


def find_capacity(
    run_at_qps: RunAtQPS,
    slo: SLOSpec,
    qps_lo: float = DEFAULT_QPS_LO,
    qps_hi: float = DEFAULT_QPS_HI,
    rel_tol: float = 0.10,
    max_probes: int = 20,
    qps_hint: float | None = None,
) -> CapacityResult:
    """Largest QPS whose run meets ``slo``, to ``rel_tol`` accuracy.

    ``qps_lo``/``qps_hi`` seed the bracket; both ends are expanded when
    needed (halving below ``qps_lo`` until a feasible point is found,
    doubling above ``qps_hi`` while still feasible).  Returns 0.0 when
    even a trickle of load violates the SLO.

    ``qps_hint`` — when given — overrides the explicit bounds with the
    bracket ``[hint / 4, hint]``, the seeding sweep grids use to
    warm-start one cell's search from a neighbour's result.
    """
    if qps_hint is not None:
        if qps_hint <= 0:
            raise ValueError(f"qps_hint must be positive, got {qps_hint}")
        qps_lo, qps_hi = qps_hint / 4.0, qps_hint
    if qps_lo <= 0 or qps_hi < qps_lo:
        raise ValueError("need 0 < qps_lo <= qps_hi")
    result = CapacityResult(capacity_qps=0.0, slo=slo, qps_hint=qps_hint)

    def probe(qps: float) -> bool:
        metrics = run_at_qps(qps)
        ok = metrics.meets(slo)
        result.probes.append((qps, metrics, ok))
        return ok

    def finish(capacity: float) -> CapacityResult:
        result.capacity_qps = capacity
        result.num_bisect_probes = result.num_probes - result.num_bracket_probes
        return result

    # Find a feasible lower end.
    lo = qps_lo
    attempts = 0
    while not probe(lo):
        lo /= 4.0
        attempts += 1
        if attempts >= 3:
            result.num_bracket_probes = result.num_probes
            return finish(0.0)

    # Grow until infeasible (or give up and accept hi as capacity).
    hi = max(qps_hi, lo * 2)
    while probe(hi):
        lo = hi
        hi *= 2.0
        if len(result.probes) >= max_probes:
            result.num_bracket_probes = result.num_probes
            return finish(lo)
    result.num_bracket_probes = result.num_probes

    # Bisect [lo feasible, hi infeasible].
    while hi - lo > rel_tol * lo and len(result.probes) < max_probes:
        mid = (lo + hi) / 2.0
        if probe(mid):
            lo = mid
        else:
            hi = mid

    return finish(lo)
