"""Capacity search: the maximum sustainable QPS under an SLO (§5.1).

Capacity is the paper's headline throughput metric.  The search walks a
fixed geometric ladder of QPS rungs ``(1 + rel_tol) ** k`` anchored at
1.0: an exponential walk from the starting rung brackets the feasible/
infeasible boundary, then an integer bisection narrows it to adjacent
rungs.  Each probe is a full simulation at that QPS supplied by the
caller, so the search is policy- and substrate-agnostic.

The starting rung can be seeded with a ``qps_hint`` — a neighbouring
cell's measured capacity in a sweep grid, or a surrogate model's
prediction (:mod:`repro.perf.surrogate`).  Because every probe lands on
the same global ladder regardless of the seed, the search converges to
the *same rung* — bit-identical capacity — whether the hint was absent,
perfect, or wrong; a hint only changes how many probes the walk needs
to bracket the boundary.  (The one caveat: an exhausted ``max_probes``
truncates the search path-dependently, so probe budgets must be
adequate for identity guarantees — the defaults are.)  Accounting
splits probes into bracketing vs bisection so sweeps can measure
exactly how much warm-starting and surrogate seeding save.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.metrics.slo import SLOSpec
from repro.metrics.summary import RunMetrics

RunAtQPS = Callable[[float], RunMetrics]

# Fallback bracket when no hint is supplied (matches the historical
# qps_lo/qps_hi defaults of find_capacity).
DEFAULT_QPS_LO = 0.05
DEFAULT_QPS_HI = 4.0

# The zero-capacity floor sits this factor below qps_lo: walking down
# to it without finding a feasible rung declares capacity 0.0.  The
# floor depends only on qps_lo (never the hint), preserving
# hint-independence of the outcome.
_FLOOR_FACTOR = 64.0


@dataclass
class CapacityResult:
    """Outcome of one capacity search.

    ``probes`` records every simulation the search ran, in execution
    order: the first ``num_bracket_probes`` established the feasible/
    infeasible bracket, the remaining ``num_bisect_probes`` narrowed
    it.  ``qps_hint`` is the starting-rung seed (None when the search
    cold-started from ``qps_hi``) — comparing it with
    ``num_bracket_probes`` across a sweep shows what warm-started
    hints save.
    """

    capacity_qps: float
    slo: SLOSpec
    probes: list[tuple[float, RunMetrics, bool]] = field(default_factory=list)
    qps_hint: float | None = None
    num_bracket_probes: int = 0
    num_bisect_probes: int = 0

    @property
    def num_probes(self) -> int:
        return len(self.probes)


def ladder_rung(qps: float, rel_tol: float) -> int:
    """Index of the largest ladder rung ``<= qps`` (grid anchored at 1.0)."""
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    return math.floor(math.log(qps) / math.log(1.0 + rel_tol) + 1e-9)


def ladder_qps(rung: int, rel_tol: float) -> float:
    """The QPS of ladder rung ``rung`` — a pure function of the index."""
    return (1.0 + rel_tol) ** rung


def find_capacity(
    run_at_qps: RunAtQPS,
    slo: SLOSpec,
    qps_lo: float = DEFAULT_QPS_LO,
    qps_hi: float = DEFAULT_QPS_HI,
    rel_tol: float = 0.10,
    max_probes: int = 20,
    qps_hint: float | None = None,
) -> CapacityResult:
    """Largest ladder QPS whose run meets ``slo``.

    The returned capacity is ``(1 + rel_tol) ** k`` for the largest
    ``k`` with a feasible probe adjacent to an infeasible ``k + 1`` —
    a property of the feasibility oracle and the grid alone.  The
    search starts at the rung of ``qps_hint`` when given (else
    ``qps_hi``), walks exponentially toward the boundary, and bisects
    the bracketing rungs; a good hint collapses the walk to a couple of
    probes without ever changing the answer.  Returns 0.0 when no rung
    down to ``qps_lo / 64`` is feasible.
    """
    if qps_lo <= 0 or qps_hi < qps_lo:
        raise ValueError("need 0 < qps_lo <= qps_hi")
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    if qps_hint is not None and qps_hint <= 0:
        raise ValueError(f"qps_hint must be positive, got {qps_hint}")
    result = CapacityResult(capacity_qps=0.0, slo=slo, qps_hint=qps_hint)

    seen: dict[int, bool] = {}

    def probe(rung: int) -> bool:
        ok = seen.get(rung)
        if ok is None:
            qps = ladder_qps(rung, rel_tol)
            metrics = run_at_qps(qps)
            ok = metrics.meets(slo)
            result.probes.append((qps, metrics, ok))
            seen[rung] = ok
        return ok

    def finish(capacity: float) -> CapacityResult:
        result.capacity_qps = capacity
        result.num_bisect_probes = result.num_probes - result.num_bracket_probes
        return result

    k_floor = ladder_rung(qps_lo / _FLOOR_FACTOR, rel_tol)
    start = ladder_rung(qps_hint if qps_hint is not None else qps_hi, rel_tol)
    start = max(start, k_floor)

    # Phase 1: exponential walk from the starting rung to a bracket
    # (lo feasible, hi infeasible, probed at adjacent-in-walk rungs).
    lo: int | None = None
    hi: int | None = None
    if probe(start):
        lo = start
        step = 1
        while result.num_probes < max_probes:
            candidate = lo + step
            if probe(candidate):
                lo = candidate
                step *= 2
            else:
                hi = candidate
                break
        if hi is None:  # budget exhausted while still feasible
            result.num_bracket_probes = result.num_probes
            return finish(ladder_qps(lo, rel_tol))
    else:
        hi = start
        step = 1
        while True:
            if hi <= k_floor or result.num_probes >= max_probes:
                result.num_bracket_probes = result.num_probes
                return finish(0.0)
            candidate = max(hi - step, k_floor)
            if probe(candidate):
                lo = candidate
                break
            hi = candidate
            step *= 2
    result.num_bracket_probes = result.num_probes

    # Phase 2: integer bisection to adjacent rungs.  The bracket
    # endpoints move monotonically toward each other, so the final
    # (lo, hi = lo + 1) pair — and hence the capacity — is a function
    # of the oracle and the grid, not of the starting rung.
    while hi - lo > 1 and result.num_probes < max_probes:
        mid = (lo + hi) // 2
        if probe(mid):
            lo = mid
        else:
            hi = mid

    return finish(ladder_qps(lo, rel_tol))
