"""Capacity search: the maximum sustainable QPS under an SLO (§5.1).

Capacity is the paper's headline throughput metric.  The search first
grows the load geometrically until the SLO breaks, then bisects the
bracketing interval to the requested relative tolerance.  Each probe
is a full simulation at that QPS supplied by the caller, so the search
is policy- and substrate-agnostic.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.metrics.slo import SLOSpec
from repro.metrics.summary import RunMetrics

RunAtQPS = Callable[[float], RunMetrics]


@dataclass
class CapacityResult:
    """Outcome of one capacity search."""

    capacity_qps: float
    slo: SLOSpec
    probes: list[tuple[float, RunMetrics, bool]] = field(default_factory=list)

    @property
    def num_probes(self) -> int:
        return len(self.probes)


def find_capacity(
    run_at_qps: RunAtQPS,
    slo: SLOSpec,
    qps_lo: float = 0.05,
    qps_hi: float = 4.0,
    rel_tol: float = 0.10,
    max_probes: int = 20,
) -> CapacityResult:
    """Largest QPS whose run meets ``slo``, to ``rel_tol`` accuracy.

    ``qps_lo``/``qps_hi`` seed the bracket; both ends are expanded when
    needed (halving below ``qps_lo`` until a feasible point is found,
    doubling above ``qps_hi`` while still feasible).  Returns 0.0 when
    even a trickle of load violates the SLO.
    """
    if qps_lo <= 0 or qps_hi < qps_lo:
        raise ValueError("need 0 < qps_lo <= qps_hi")
    result = CapacityResult(capacity_qps=0.0, slo=slo)

    def probe(qps: float) -> bool:
        metrics = run_at_qps(qps)
        ok = metrics.meets(slo)
        result.probes.append((qps, metrics, ok))
        return ok

    # Find a feasible lower end.
    lo = qps_lo
    attempts = 0
    while not probe(lo):
        lo /= 4.0
        attempts += 1
        if attempts >= 3:
            result.capacity_qps = 0.0
            return result

    # Grow until infeasible (or give up and accept hi as capacity).
    hi = max(qps_hi, lo * 2)
    while probe(hi):
        lo = hi
        hi *= 2.0
        if len(result.probes) >= max_probes:
            result.capacity_qps = lo
            return result

    # Bisect [lo feasible, hi infeasible].
    while hi - lo > rel_tol * lo and len(result.probes) < max_probes:
        mid = (lo + hi) / 2.0
        if probe(mid):
            lo = mid
        else:
            hi = mid

    result.capacity_qps = lo
    return result
