"""Figure 7: the A/B/C/D scheduling example, executed for real.

Requests A and B are mid-decode when C and D (long prompts) arrive.
Each policy produces a characteristically different iteration sequence:

* vLLM — prefill-only iterations for C and D stall A/B's decodes;
* Orca — one giant hybrid iteration (full C+D prefills with A/B's
  decodes) that is just as stalling;
* FasterTransformer — C and D wait until A and B drain;
* Sarathi-Serve — C and D's prefills are chunked and coalesced with
  A/B's decodes; no decode-to-decode gap exceeds the budgeted
  iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, build_engine, clone_requests
from repro.experiments.common import mistral_deployment
from repro.types import Request, SchedulerKind

SCHEDULERS = (
    SchedulerKind.VLLM,
    SchedulerKind.ORCA,
    SchedulerKind.FASTER_TRANSFORMER,
    SchedulerKind.SARATHI,
)


@dataclass(frozen=True)
class ScheduleTrace:
    """The iteration sequence one scheduler produced."""

    scheduler: str
    iterations: list[str]       # human-readable composition per iteration
    worst_decode_gap: float     # max TBT over A and B
    first_token_c: float        # TTFT of request C


def make_abcd_trace(
    prompt_ab: int = 128,
    output_ab: int = 64,
    prompt_cd: int = 4096,
    output_cd: int = 32,
    cd_arrival: float = 0.25,
) -> list[Request]:
    """A, B decoding from t≈0; long-prompt C, D arrive at ``cd_arrival``."""
    a = Request(prompt_len=prompt_ab, output_len=output_ab, arrival_time=0.0)
    b = Request(prompt_len=prompt_ab, output_len=output_ab, arrival_time=0.0)
    c = Request(prompt_len=prompt_cd, output_len=output_cd, arrival_time=cd_arrival)
    d = Request(prompt_len=prompt_cd, output_len=output_cd, arrival_time=cd_arrival)
    return [a, b, c, d]


def run_schedule_traces(
    deployment: Deployment | None = None,
    token_budget: int = 512,
) -> list[ScheduleTrace]:
    """Execute the A/B/C/D example under all four policies."""
    deployment = deployment or mistral_deployment()
    base_trace = make_abcd_trace()
    traces = []
    for kind in SCHEDULERS:
        requests = clone_requests(base_trace)
        names = {r.request_id: label for r, label in zip(requests, "ABCD")}
        config = ServingConfig(scheduler=kind, token_budget=token_budget)
        engine = build_engine(deployment, config)

        compositions: list[str] = []
        original_schedule = engine.scheduler.schedule

        def recording_schedule(now, _orig=original_schedule, _names=names):
            batch = _orig(now)
            if batch is not None:
                parts = []
                for item in batch.items:
                    label = _names.get(item.request.request_id, "?")
                    kind_char = "p" if item.work.is_prefill else "d"
                    parts.append(f"{label}{kind_char}{item.work.num_tokens}")
                compositions.append("+".join(parts))
            return batch

        engine.scheduler.schedule = recording_schedule  # type: ignore[method-assign]
        engine.run(requests)

        a, b, c, _d = requests
        worst_gap = max(
            max(a.tbt_samples, default=0.0), max(b.tbt_samples, default=0.0)
        )
        traces.append(
            ScheduleTrace(
                scheduler=kind.value,
                iterations=compositions,
                worst_decode_gap=worst_gap,
                first_token_c=c.ttft if c.ttft is not None else float("inf"),
            )
        )
    return traces
