"""Scheduler leaderboard: every registered policy, identical workloads.

The plug-in registry's payoff experiment: all registered schedulers —
the paper's four baselines, the ablations, and the theory-grounded
plug-ins (SRPT oracle/predicted, priority+aging) — run the same
workload suite under identical seeds and are ranked by mean end-to-end
latency at saturation, where scheduling order matters most.  SRPT with
oracle lengths minimizes mean flow time on a single server, so it
should head the table; the gap each practical policy leaves to it is
the price of not knowing (or mispredicting) output lengths.

Three workloads per scheduler, all through the object engine (the
golden reference every policy supports):

* ``static`` — the ShareGPT4 open-loop trace at a saturating arrival
  rate, through the 1-replica fleet path (`fleet_goodput` accounting);
* ``conversation`` — closed-loop multi-round chat with think times;
* ``production`` — the multi-tenant bursty/diurnal trace generator.

Plus, optionally, a strict-SLO capacity search per scheduler on the
static dataset (one warm-start group, so the grid shares bisection
brackets).  Cells fan out through the parallel/resumable sweep runtime
exactly like the capacity figures; run it via
``python -m repro reproduce leaderboard`` or ``python -m repro
leaderboard`` (which can restrict the scheduler set).

Caveat for plug-in authors: sweep workers import ``repro`` fresh, so
schedulers registered imperatively in the parent process are only
visible with ``--jobs 1`` (the default).  Package your policy as an
importable module to leaderboard it at higher job counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api import Deployment, ServingConfig
from repro.experiments.capacity_runner import (
    CapacityCellSpec,
    run_capacity_cells,
    serving_config_for,
)
from repro.experiments.common import DEFAULT, Scale, mistral_deployment
from repro.metrics.goodput import RequestSLO, fleet_goodput, goodput
from repro.metrics.slo import derived_slo
from repro.metrics.stats import jain_fairness
from repro.runtime import map_tasks, persist_execution_model, shared_execution_model
from repro.scheduling.registry import registered_names, scheduler_name
from repro.workload.datasets import SHAREGPT4, generate_requests

# The suite's workloads, in display order.
WORKLOADS = ("static", "conversation", "production")
# Arrival rates per workload.  The static rate deliberately saturates a
# single Mistral/A100 replica (strict-SLO capacity is well below it),
# so queueing — and therefore scheduling order — dominates latency.
# 4.0 sits in the moderately-overloaded band where SRPT's ordering
# advantage shows; far beyond it raw batch throughput dominates and
# the hybrid/dynamic cores win on makespan instead.
SATURATION_QPS = 4.0
CONVERSATION_QPS = 0.5
PRODUCTION_QPS = 1.5
# Per-request TTFT deadline for goodput accounting (the fleet sweep's
# default, repro.experiments.fleet.DEFAULT_TTFT_DEADLINE).
TTFT_DEADLINE = 2.0


@dataclass(frozen=True)
class LeaderboardCellSpec:
    """One (scheduler, workload) cell, picklable for sweep workers."""

    deployment: Deployment
    config: ServingConfig
    workload: str
    qps: float
    num_requests: int
    seed: int
    ttft_deadline: float
    tbt_deadline: float

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose one of {', '.join(WORKLOADS)}"
            )
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.num_requests <= 0:
            raise ValueError(
                f"num_requests must be positive, got {self.num_requests}"
            )


@dataclass(frozen=True)
class LeaderboardCell:
    """One scheduler's measurements on one workload."""

    scheduler: str
    workload: str
    qps: float
    num_offered: int
    num_finished: int
    mean_latency: float
    median_ttft: float
    p99_tbt: float
    attainment: float
    goodput_rps: float
    num_preemptions: int
    # Fairness: a policy can buy a great mean by starving the tail.
    # ``max_wait`` is the worst scheduling delay any request saw;
    # ``latency_fairness`` is Jain's index over per-request end-to-end
    # latencies (1.0 = everyone waited alike, 1/n = one request ate it).
    max_wait: float = 0.0
    latency_fairness: float = 1.0


@dataclass(frozen=True)
class LeaderboardRow:
    """A cell joined with its scheduler's capacity (static dataset)."""

    cell: LeaderboardCell
    capacity_qps: float | None  # None when capacity search was skipped
    rank: int                   # 1 = best mean latency on the static cell


def run_leaderboard_cell(spec: LeaderboardCellSpec) -> LeaderboardCell:
    """Execute one cell (module-level: the sweep engine pickles this)."""
    slo = RequestSLO(
        ttft_deadline=spec.ttft_deadline, tbt_deadline=spec.tbt_deadline
    )
    if spec.workload == "conversation":
        from repro.workload.conversation import (
            ConversationSpec,
            simulate_conversations,
        )

        conv = ConversationSpec(
            num_conversations=spec.num_requests, arrival_qps=spec.qps
        )
        result, metrics = simulate_conversations(
            spec.deployment, spec.config, conv, seed=spec.seed
        )
        report = goodput(result, slo)
        num_offered = report.num_requests
        attainment = report.attainment
        goodput_rps = report.goodput_rps
    else:
        from repro.cluster.fleet import FleetConfig, simulate_fleet

        if spec.workload == "production":
            from repro.workload.production import (
                ProductionSpec,
                generate_production_trace,
            )

            trace = generate_production_trace(
                ProductionSpec(
                    num_requests=spec.num_requests, base_qps=spec.qps
                ),
                seed=spec.seed,
            )
        else:
            trace = generate_requests(
                SHAREGPT4,
                num_requests=spec.num_requests,
                qps=spec.qps,
                seed=spec.seed,
            )
        lease = shared_execution_model(spec.deployment, spec.config)
        fleet_result, metrics = simulate_fleet(
            spec.deployment,
            spec.config,
            trace,
            FleetConfig(num_replicas=1),
            exec_model=lease.exec_model,
        )
        persist_execution_model(lease.exec_model)
        result = fleet_result.merged()
        report = fleet_goodput(fleet_result, slo)
        num_offered = report.num_offered
        attainment = report.attainment
        goodput_rps = report.goodput_rps

    latencies = [
        r.e2e_latency for r in result.requests if r.e2e_latency is not None
    ]
    waits = [
        r.scheduling_delay
        for r in result.requests
        if r.scheduling_delay is not None
    ]
    return LeaderboardCell(
        scheduler=scheduler_name(spec.config.scheduler),
        workload=spec.workload,
        qps=spec.qps,
        num_offered=num_offered,
        num_finished=len(result.finished_requests),
        mean_latency=sum(latencies) / len(latencies) if latencies else float("inf"),
        median_ttft=metrics.median_ttft,
        p99_tbt=metrics.p99_tbt,
        attainment=attainment,
        goodput_rps=goodput_rps,
        num_preemptions=metrics.num_preemptions,
        max_wait=max(waits) if waits else 0.0,
        latency_fairness=jain_fairness(latencies) if latencies else 1.0,
    )


def leaderboard_config(
    deployment: Deployment, scheduler: str
) -> ServingConfig:
    """The level playing field: strict-regime knobs, object engine.

    The object engine is forced (overriding ``REPRO_ENGINE``) because
    it is the golden reference every registered policy supports —
    plug-in policies have no vectorized core, and mixing engines would
    compare implementations, not policies.
    """
    config = serving_config_for(deployment, scheduler, strict=True)
    return replace(config, engine="object")


def build_specs(
    deployment: Deployment,
    schedulers: tuple[str, ...],
    scale: Scale,
    tbt_deadline: float,
) -> list[LeaderboardCellSpec]:
    """The cell grid: workload-major, scheduler order preserved inside."""
    loads = (
        ("static", SATURATION_QPS, scale.num_requests),
        # Conversations fan out into ~3 rounds each; divide so the
        # closed-loop cells stay comparable in simulated work.
        ("conversation", CONVERSATION_QPS, max(8, scale.num_requests // 4)),
        ("production", PRODUCTION_QPS, scale.num_requests),
    )
    return [
        LeaderboardCellSpec(
            deployment=deployment,
            config=leaderboard_config(deployment, name),
            workload=workload,
            qps=qps,
            num_requests=num_requests,
            seed=scale.seed,
            ttft_deadline=TTFT_DEADLINE,
            tbt_deadline=tbt_deadline,
        )
        for workload, qps, num_requests in loads
        for name in schedulers
    ]


def run_leaderboard(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    schedulers: tuple[str, ...] | None = None,
    include_capacity: bool = True,
) -> list[LeaderboardRow]:
    """Rank schedulers across the workload suite under identical seeds.

    Returns one row per (scheduler, workload), grouped by scheduler in
    rank order — rank 1 is the lowest mean end-to-end latency on the
    saturating static workload.  ``schedulers`` defaults to every
    registered name; ``include_capacity=False`` skips the per-scheduler
    strict-SLO capacity search (the expensive part).
    """
    deployment = deployment or mistral_deployment()
    names = tuple(schedulers) if schedulers is not None else tuple(registered_names())
    if not names:
        raise ValueError("no schedulers to rank")
    slo = derived_slo(deployment.execution_model(), strict=False)

    specs = build_specs(deployment, names, scale, tbt_deadline=slo.p99_tbt)
    cells: list[LeaderboardCell] = map_tasks(run_leaderboard_cell, specs).values

    capacity: dict[str, float] = {}
    if include_capacity:
        capacity_specs = [
            CapacityCellSpec(
                deployment=deployment,
                scheduler=name,
                dataset=SHAREGPT4,
                scale=scale,
                strict=None,
                config=leaderboard_config(deployment, name),
                slo=derived_slo(deployment.execution_model(), strict=True),
                # One warm-start group: the first scheduler's measured
                # capacity seeds every other policy's bracket.
                group=("leaderboard", deployment.label, SHAREGPT4.name),
            )
            for name in names
        ]
        for outcome in run_capacity_cells(capacity_specs):
            capacity[outcome.cell.scheduler] = outcome.cell.capacity_qps

    by_scheduler: dict[str, dict[str, LeaderboardCell]] = {}
    for cell in cells:
        by_scheduler.setdefault(cell.scheduler, {})[cell.workload] = cell
    ranked = sorted(
        names, key=lambda n: by_scheduler[n]["static"].mean_latency
    )
    return [
        LeaderboardRow(
            cell=by_scheduler[name][workload],
            capacity_qps=capacity.get(name),
            rank=rank,
        )
        for rank, name in enumerate(ranked, start=1)
        for workload in WORKLOADS
        if workload in by_scheduler[name]
    ]


def leaderboard_table(
    rows: list[LeaderboardRow],
) -> tuple[list[str], list[list[str]]]:
    """Render leaderboard rows into (headers, table-rows)."""
    headers = [
        "rank", "scheduler", "workload", "qps", "capacity qps",
        "mean latency (s)", "med TTFT (s)", "P99 TBT (s)",
        "attainment", "goodput rps", "max wait (s)", "fairness",
    ]
    table: list[list[str]] = []
    for row in rows:
        cell = row.cell
        first = cell.workload == WORKLOADS[0]
        table.append([
            str(row.rank) if first else "",
            cell.scheduler if first else "",
            cell.workload,
            f"{cell.qps:.2f}",
            f"{row.capacity_qps:.2f}"
            if first and row.capacity_qps is not None
            else "-",
            f"{cell.mean_latency:.2f}",
            f"{cell.median_ttft:.3f}",
            f"{cell.p99_tbt:.3f}",
            f"{cell.attainment:.0%}",
            f"{cell.goodput_rps:.2f}",
            f"{cell.max_wait:.2f}",
            f"{cell.latency_fairness:.3f}",
        ])
    return headers, table
