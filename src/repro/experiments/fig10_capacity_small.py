"""Figure 10: serving capacity of Mistral-7B and Yi-34B.

Orca vs vLLM vs Sarathi-Serve across both datasets under strict and
relaxed SLOs.  The paper's headline: Sarathi sustains up to 2.6×
(Mistral) and 3.7× (Yi) higher load than vLLM, with the gap widest
under strict SLOs and on the long-prompt arxiv workload.
"""

from __future__ import annotations

from repro.api import Deployment
from repro.experiments.capacity_runner import (
    CapacityCell,
    CapacityCellSpec,
    run_capacity_cells,
)
from repro.experiments.common import DEFAULT, Scale, mistral_deployment, yi_deployment
from repro.types import SchedulerKind
from repro.workload.datasets import ARXIV_SUMMARIZATION, SHAREGPT4, DatasetSpec

CAPACITY_SCHEDULERS = (
    SchedulerKind.ORCA,
    SchedulerKind.VLLM,
    SchedulerKind.SARATHI,
)

# Search hints keep probe counts low; searches expand beyond them.
# Only each (deployment, dataset) group's first cell uses the static
# hint — every later cell warm-starts from the group's measured anchor.
_QPS_HINTS = {
    ("Mistral-7B", "openchat_sharegpt4"): 2.0,
    ("Mistral-7B", "arxiv_summarization"): 0.6,
    ("Yi-34B", "openchat_sharegpt4"): 1.0,
    ("Yi-34B", "arxiv_summarization"): 0.4,
}


def capacity_grid_specs(
    scale: Scale,
    deployments: tuple[Deployment, ...],
    datasets: tuple[DatasetSpec, ...],
    schedulers: tuple[SchedulerKind, ...],
    strict_values: tuple[bool, ...],
    hints: dict[tuple[str, str], float] | None = None,
    default_hint: float = 0.5,
) -> list[CapacityCellSpec]:
    """Canonically-ordered cell specs for a Fig. 10/11-shaped grid."""
    hints = hints if hints is not None else _QPS_HINTS
    specs = []
    for deployment in deployments:
        for dataset in datasets:
            hint = hints.get((deployment.model.name, dataset.name), default_hint)
            for strict in strict_values:
                for scheduler in schedulers:
                    specs.append(
                        CapacityCellSpec(
                            deployment=deployment,
                            scheduler=scheduler,
                            dataset=dataset,
                            scale=scale,
                            strict=strict,
                            qps_hint=hint,
                        )
                    )
    return specs


def run_capacity_grid(
    scale: Scale = DEFAULT,
    deployments: tuple[Deployment, ...] | None = None,
    datasets: tuple[DatasetSpec, ...] = (SHAREGPT4, ARXIV_SUMMARIZATION),
    schedulers: tuple[SchedulerKind, ...] = CAPACITY_SCHEDULERS,
    strict_values: tuple[bool, ...] = (True, False),
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
) -> list[CapacityCell]:
    """The full Fig. 10 grid (or any sub-grid), via the sweep engine.

    ``run_dir``/``resume`` (and the ``REPRO_RUN_DIR``/``REPRO_RESUME``
    env defaults) journal completed cells and replay them after a
    crash; see :func:`repro.experiments.capacity_runner.run_capacity_cells`.
    """
    if deployments is None:
        deployments = (mistral_deployment(), yi_deployment())
    specs = capacity_grid_specs(
        scale, deployments, datasets, schedulers, strict_values
    )
    outcomes = run_capacity_cells(
        specs, jobs=jobs, cache_dir=cache_dir, run_dir=run_dir, resume=resume
    )
    return [outcome.cell for outcome in outcomes]


def sarathi_gain_over(cells: list[CapacityCell], baseline: str) -> dict[tuple, float]:
    """Sarathi capacity ÷ baseline capacity, per (deployment, dataset, slo)."""
    table: dict[tuple, dict[str, float]] = {}
    for cell in cells:
        key = (cell.deployment, cell.dataset, cell.slo_name)
        table.setdefault(key, {})[cell.scheduler] = cell.capacity_qps
    gains = {}
    for key, by_sched in table.items():
        if "sarathi" in by_sched and baseline in by_sched and by_sched[baseline] > 0:
            gains[key] = by_sched["sarathi"] / by_sched[baseline]
    return gains
