"""Figure 12: the throughput–latency tradeoff swept across SLO targets.

For each P99-TBT SLO value, capacity is searched for vLLM at max batch
sizes 32/64/128 and Sarathi-Serve at token budgets 512/2048 (batch
128).  The paper's findings: vLLM's capacity is nearly identical
across batch sizes (generation stalls, not memory, are its binding
constraint) and collapses under stringent SLOs, while Sarathi trades
smoothly — small budgets win strict SLOs, large budgets win relaxed
ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig
from repro.experiments.capacity_runner import CapacityCellSpec, run_capacity_cells
from repro.experiments.common import DEFAULT, Scale, mistral_deployment
from repro.metrics.slo import SLOSpec
from repro.perf.profiler import reference_decode_time
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, DatasetSpec

VLLM_BATCH_SIZES = (32, 64, 128)
SARATHI_BUDGETS = (512, 2048)
# SLO targets as multiples of the reference decode-iteration latency
# (5× is the paper's strict setting, 25× its relaxed one).
SLO_MULTIPLIERS = (3.0, 5.0, 10.0, 25.0, 40.0)


@dataclass(frozen=True)
class SweepPoint:
    """Capacity of one variant at one SLO value."""

    variant: str
    slo_p99_tbt: float
    capacity_qps: float


def sweep_variants(deployment: Deployment) -> dict[str, ServingConfig]:
    """The Fig. 12 scheduler variants."""
    variants: dict[str, ServingConfig] = {}
    for bs in VLLM_BATCH_SIZES:
        variants[f"vllm-bs{bs}"] = ServingConfig(
            scheduler=SchedulerKind.VLLM, max_batch_size=bs
        )
    for budget in SARATHI_BUDGETS:
        variants[f"sarathi-{budget}"] = ServingConfig(
            scheduler=SchedulerKind.SARATHI, token_budget=budget, max_batch_size=128
        )
    return variants


def run_slo_sweep(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    dataset: DatasetSpec = SHAREGPT4,
    slo_multipliers: tuple[float, ...] = SLO_MULTIPLIERS,
    qps_hint: float = 3.0,
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
) -> list[SweepPoint]:
    """Capacity vs SLO for every Fig. 12 variant.

    Warm-start groups are per variant: each variant's first (strictest)
    SLO anchors, and its measured capacity seeds the same variant's
    searches at every other SLO value.
    """
    deployment = deployment or mistral_deployment()
    reference = reference_decode_time(deployment.execution_model())
    variants = sweep_variants(deployment)
    specs = []
    for multiplier in slo_multipliers:
        slo = SLOSpec(name=f"{multiplier:g}x", p99_tbt=multiplier * reference)
        for variant, config in variants.items():
            specs.append(
                CapacityCellSpec(
                    deployment=deployment,
                    scheduler=config.scheduler,
                    dataset=dataset,
                    scale=scale,
                    config=config,
                    slo=slo,
                    qps_hint=qps_hint,
                    group=(variant,),
                    variant=variant,
                )
            )
    outcomes = run_capacity_cells(
        specs, jobs=jobs, cache_dir=cache_dir, run_dir=run_dir, resume=resume
    )
    return [
        SweepPoint(
            variant=outcome.variant,
            slo_p99_tbt=outcome.cell.slo_p99_tbt,
            capacity_qps=outcome.cell.capacity_qps,
        )
        for outcome in outcomes
    ]
