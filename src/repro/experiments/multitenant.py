"""Multi-tenant fairness: FCFS Sarathi vs virtual-token-counter Sarathi.

One heavy tenant floods the queue with long prompts while a light
tenant sends occasional short requests.  Plain (FCFS) admission makes
the light tenant wait behind the flood; fair admission bounds its TTFT
near its own service time — while both variants keep the stall-free
TBT guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import Deployment, clone_requests
from repro.core.fairness import FairSarathiScheduler
from repro.core.sarathi import SarathiScheduler
from repro.engine.replica import ReplicaEngine
from repro.experiments.common import DEFAULT, Scale, mistral_deployment
from repro.memory.block_manager import PagedBlockManager
from repro.types import Request

HEAVY_CLIENT = 1
LIGHT_CLIENT = 2


@dataclass(frozen=True)
class TenantMetrics:
    """Per-tenant latency under one admission policy."""

    policy: str
    client: str
    median_ttft: float
    p99_ttft: float
    max_tbt: float


def make_multitenant_trace(
    num_heavy: int,
    num_light: int,
    seed: int = 0,
    heavy_qps: float = 8.0,
    light_qps: float = 0.5,
) -> list[Request]:
    """A flood of heavy long-prompt requests plus sparse light ones."""
    rng = np.random.default_rng(seed)
    requests = []
    t = 0.0
    for _ in range(num_heavy):
        t += float(rng.exponential(1.0 / heavy_qps))
        requests.append(
            Request(
                prompt_len=int(rng.integers(2000, 4000)),
                output_len=int(rng.integers(50, 150)),
                arrival_time=t,
                client_id=HEAVY_CLIENT,
            )
        )
    t = 0.5
    for _ in range(num_light):
        t += float(rng.exponential(1.0 / light_qps))
        requests.append(
            Request(
                prompt_len=int(rng.integers(100, 400)),
                output_len=int(rng.integers(20, 60)),
                arrival_time=t,
                client_id=LIGHT_CLIENT,
            )
        )
    return sorted(requests, key=lambda r: r.arrival_time)


def run_fairness_comparison(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    token_budget: int = 512,
) -> list[TenantMetrics]:
    """Per-tenant latency under FCFS vs fair admission."""
    deployment = deployment or mistral_deployment()
    num_heavy = scale.num_requests
    num_light = max(4, scale.num_requests // 8)
    trace = make_multitenant_trace(num_heavy, num_light, seed=scale.seed)

    capacity = deployment.kv_capacity_tokens()
    policies = {
        "fcfs": lambda: SarathiScheduler(
            PagedBlockManager(capacity), token_budget=token_budget
        ),
        "fair": lambda: FairSarathiScheduler(
            PagedBlockManager(capacity), token_budget=token_budget
        ),
    }
    rows = []
    for policy, make_scheduler in policies.items():
        engine = ReplicaEngine(deployment.execution_model(), make_scheduler())
        result = engine.run(clone_requests(trace))
        for client_id, label in ((HEAVY_CLIENT, "heavy"), (LIGHT_CLIENT, "light")):
            mine = [r for r in result.requests if r.client_id == client_id]
            ttfts = [r.ttft for r in mine]
            tbts = [gap for r in mine for gap in r.tbt_samples]
            rows.append(
                TenantMetrics(
                    policy=policy,
                    client=label,
                    median_ttft=float(np.median(ttfts)),
                    p99_ttft=float(np.percentile(ttfts, 99)),
                    max_tbt=max(tbts) if tbts else 0.0,
                )
            )
    return rows
