"""Figure 4: where iteration time goes — linear vs attention vs others.

Mistral-7B on one A100 across input sizes.  Linear operators dominate
both phases (>80% even at long sequences); attention grows
quadratically with sequence length during prefill but stays a minority
share.  The paper's companion observation: one decode token's linear
cost ≈ 128 prefill tokens' linear cost (skinny GEMMs are memory-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment
from repro.experiments.common import mistral_deployment
from repro.types import TokenWork

SEQUENCE_LENGTHS = (128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class BreakdownRow:
    """Time decomposition of one iteration."""

    phase: str
    seq_len: int
    total: float
    linear: float
    attention: float
    others: float
    overhead_and_comm: float

    @property
    def linear_fraction(self) -> float:
        return self.linear / self.total if self.total else 0.0


def run_breakdown(
    deployment: Deployment | None = None,
    seq_lens: tuple[int, ...] = SEQUENCE_LENGTHS,
    decode_batch_size: int = 32,
) -> list[BreakdownRow]:
    """Prefill and decode time decomposition across sequence lengths."""
    deployment = deployment or mistral_deployment()
    exec_model = deployment.execution_model()
    rows = []
    for seq_len in seq_lens:
        prefill = exec_model.iteration_time([TokenWork.prefill_chunk(seq_len)])
        rows.append(
            BreakdownRow(
                phase="prefill",
                seq_len=seq_len,
                total=prefill.total,
                linear=prefill.linear,
                attention=prefill.attention,
                others=prefill.others,
                overhead_and_comm=prefill.overhead + prefill.communication,
            )
        )
        decode = exec_model.decode_iteration_time(decode_batch_size, seq_len)
        rows.append(
            BreakdownRow(
                phase="decode",
                seq_len=seq_len,
                total=decode.total,
                linear=decode.linear,
                attention=decode.attention,
                others=decode.others,
                overhead_and_comm=decode.overhead + decode.communication,
            )
        )
    return rows


def decode_vs_prefill_linear_parity(
    deployment: Deployment | None = None,
    tolerance: float = 1.10,
) -> float:
    """How many prefill tokens cost (about) the same *linear* time as 1
    decode token.

    While a batch sits in the memory-bound regime, adding tokens is
    nearly free: the largest token count whose linear time is within
    ``tolerance`` of the single-token time.  The paper reports ≈128 for
    Mistral-7B on an A100 (Fig. 4 caption).
    """
    deployment = deployment or mistral_deployment()
    exec_model = deployment.execution_model()
    budget = tolerance * exec_model.linear.stage_time(1)
    lo, hi = 1, 1
    while exec_model.linear.stage_time(hi * 2) <= budget and hi < 65536:
        hi *= 2
    lo = hi
    hi = hi * 2
    # Bisect for the largest count still under the budget.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if exec_model.linear.stage_time(mid) <= budget:
            lo = mid
        else:
            hi = mid
    return float(lo)
