"""Figure 2: the throughput–latency quadrant of scheduling policies.

The paper's Fig. 2 is illustrative; here we make it quantitative by
running all four schedulers on the same trace and placing each at its
(throughput, P99 TBT) operating point.  Expected ordering:

* FasterTransformer — low TBT, low throughput (decode-prioritizing);
* Orca / vLLM — high throughput, high TBT (prefill-prioritizing);
* Sarathi-Serve — high throughput *and* low TBT (stall-free).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, simulate
from repro.experiments.common import DEFAULT, STRICT_TOKEN_BUDGET, Scale, mistral_deployment
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests

QUADRANT_SCHEDULERS = (
    SchedulerKind.FASTER_TRANSFORMER,
    SchedulerKind.ORCA,
    SchedulerKind.VLLM,
    SchedulerKind.SARATHI,
)


@dataclass(frozen=True)
class QuadrantPoint:
    """One scheduler's operating point."""

    scheduler: str
    throughput_tokens_per_s: float
    p99_tbt: float
    median_ttft: float


def run_quadrant(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 1.5,
) -> list[QuadrantPoint]:
    """Place each scheduler in the throughput/latency plane."""
    deployment = deployment or mistral_deployment()
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    points = []
    for kind in QUADRANT_SCHEDULERS:
        config = ServingConfig(scheduler=kind, token_budget=STRICT_TOKEN_BUDGET)
        _, metrics = simulate(deployment, config, trace)
        points.append(
            QuadrantPoint(
                scheduler=kind.value,
                throughput_tokens_per_s=metrics.throughput_tokens_per_s,
                p99_tbt=metrics.p99_tbt,
                median_ttft=metrics.median_ttft,
            )
        )
    return points
