"""Resilience sweep: fault rate × domain correlation × brownout.

The paper evaluates a healthy cluster; this experiment measures what
its serving stack does when the cluster is *not* healthy.  A
multi-tenant trace is offered to a fleet under seeded **slowdown**
faults — replicas that keep serving at a deterministic perf multiplier
(thermal throttling, a noisy neighbour) — arriving independently per
replica or correlated through rack-style failure domains so half the
fleet degrades at once.  The SLO-aware brownout controller is swept
off/on; each point reports fleet goodput, p99 TBT, the shed fraction,
and the MTTR-style time-to-SLO-reattainment from
:mod:`repro.metrics.recovery`.

Why slowdowns and a large baseline chunk: the sweep runs Sarathi with
``token_budget=1024``, so hybrid-batch iteration time is dominated by
the prefill chunk.  A ~2x slowdown pushes exactly those iterations
past the strict TBT deadline while decode-only iterations stay under
it — damage the brownout's first rung (shrink the chunk budget) can
actually repair, by moving along the paper's own chunk-size tradeoff
curve at degraded replicas' expense of prefill throughput.  The
headline comparison: at high fault rates the brownout-on rows beat
brownout-off on goodput — degrading deliberately beats violating the
SLO at full quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api import Deployment, ServingConfig, execution_model_for
from repro.cluster.degradation import BrownoutConfig, DegradationLevel
from repro.cluster.fleet import (
    FaultSchedule,
    FleetConfig,
    FleetSimulator,
    partition_domains,
)
from repro.experiments.common import Scale, mistral_deployment, perf_cache_from_env
from repro.metrics.goodput import RequestSLO, fleet_goodput
from repro.metrics.recovery import recovery_report
from repro.metrics.slo import derived_slo
from repro.metrics.summary import summarize
from repro.runtime import map_tasks, persist_execution_model, shared_execution_model
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests

# Tenant classes cycled over the trace; class 0 is the most important
# (production), class NUM_TENANT_CLASSES-1 the first to be shed.
NUM_TENANT_CLASSES = 3

DEFAULT_TTFT_DEADLINE = 2.0
SWEEP_MAX_QUEUE_DEPTH = 64

# Failure domains per fleet: 2 racks, so a correlated event degrades
# half the replicas at once.
NUM_DOMAINS = 2

# Sweep baseline: a large chunk budget maximizes healthy prefill
# throughput and gives the brownout's budget rung real leverage.
SWEEP_TOKEN_BUDGET = 1024

# Slowdown multiplier drawn by every fault in the sweep: chunk-heavy
# iterations breach the strict TBT deadline, decode-only ones do not.
SWEEP_FAULT_SEVERITY = 2.0


def default_brownout(tbt_slo: float, token_budget: int) -> BrownoutConfig:
    """The three-rung ladder the sweep uses when brownout is on.

    Mild → severe: quarter the chunk budget, then also cap context,
    then also shed the lowest-priority tenant class.  The trigger is
    deliberately tight (enter at 1.05x the SLO, exit at the SLO) — a
    slowdown fault parks pooled p99 TBT just above the deadline, and
    waiting for a 2x breach would never engage.
    """
    budget = max(32, token_budget // 4)
    return BrownoutConfig(
        levels=(
            DegradationLevel(token_budget=budget),
            DegradationLevel(token_budget=budget, max_context=2048),
            DegradationLevel(
                token_budget=budget,
                max_context=2048,
                shed_client_ids=(NUM_TENANT_CLASSES - 1,),
            ),
        ),
        tbt_slo=tbt_slo,
        enter_margin=0.05,
        exit_margin=0.0,
        min_dwell=2.0,
        check_interval=0.25,
        min_samples=8,
    )


@dataclass(frozen=True)
class ResiliencePoint:
    """One (fault rate, correlation, brownout) operating point."""

    fault_rate: float
    correlated: bool
    brownout: bool
    num_offered: int
    num_finished: int
    attainment: float
    goodput_rps: float
    p99_tbt: float
    shed_fraction: float
    num_disruptions: int
    # Mean/max time-to-SLO-reattainment over measured disruptions
    # (None when there were no disruptions, or none recovered in-run).
    mean_recovery_s: float | None
    max_recovery_s: float | None
    num_censored: int


@dataclass(frozen=True)
class ResiliencePointSpec:
    """One resilience operating point, picklable for the sweep engine."""

    deployment: Deployment
    config: ServingConfig
    scale: Scale
    num_replicas: int
    qps: float
    fault_rate: float
    correlated: bool
    brownout: bool
    mean_downtime: float
    tbt_deadline: float
    ttft_deadline: float = DEFAULT_TTFT_DEADLINE
    fault_kind: str = "slowdown"
    fault_severity: float = SWEEP_FAULT_SEVERITY


def _multitenant_trace(spec: ResiliencePointSpec):
    """The shared arrival trace with tenant classes cycled over it."""
    trace = generate_requests(
        SHAREGPT4,
        num_requests=spec.scale.num_requests,
        qps=spec.qps,
        seed=spec.scale.seed,
    )
    for i, request in enumerate(trace):
        request.client_id = i % NUM_TENANT_CLASSES
    return trace


def run_resilience_point(spec: ResiliencePointSpec) -> ResiliencePoint:
    """Simulate one resilience operating point (module-level: picklable)."""
    lease = shared_execution_model(spec.deployment, spec.config)
    trace = _multitenant_trace(spec)
    # Faults are drawn over the live arrival span, not the drain tail:
    # a window that opens after the last arrival cannot interact with
    # admission control, so it would only dilute the comparison.
    live_span = max(r.arrival_time for r in trace)
    domains = partition_domains(spec.num_replicas, NUM_DOMAINS)
    if spec.fault_rate == 0.0:
        faults = FaultSchedule()
    elif spec.correlated:
        # Same expected replica-hits as the independent arm: an event
        # at domain rate r_d hits `size` replicas, so r_d * domains *
        # size = rate * num_replicas when r_d = rate.
        faults = FaultSchedule.correlated(
            domains,
            rate=spec.fault_rate,
            mean_downtime=spec.mean_downtime,
            horizon=live_span,
            seed=spec.scale.seed,
            kind=spec.fault_kind,
            severity=spec.fault_severity,
        )
    else:
        faults = FaultSchedule.poisson(
            spec.num_replicas,
            rate=spec.fault_rate * NUM_DOMAINS,
            mean_downtime=spec.mean_downtime,
            horizon=live_span,
            seed=spec.scale.seed,
            kind=spec.fault_kind,
            severity=spec.fault_severity,
        )
    fleet_config = FleetConfig(
        num_replicas=spec.num_replicas,
        faults=faults,
        domains=domains,
        max_queue_depth=SWEEP_MAX_QUEUE_DEPTH,
        brownout=(
            default_brownout(spec.tbt_deadline, spec.config.token_budget)
            if spec.brownout
            else None
        ),
    )
    simulator = FleetSimulator(
        spec.deployment, spec.config, fleet_config, exec_model=lease.exec_model
    )
    result = simulator.run(trace)
    persist_execution_model(lease.exec_model)

    report = fleet_goodput(
        result,
        RequestSLO(
            ttft_deadline=spec.ttft_deadline, tbt_deadline=spec.tbt_deadline
        ),
    )
    p99_tbt = (
        summarize(result.merged()).p99_tbt
        if result.finished_requests
        else float("inf")
    )
    recovery = recovery_report(result, slo_tbt=spec.tbt_deadline)
    return ResiliencePoint(
        fault_rate=spec.fault_rate,
        correlated=spec.correlated,
        brownout=spec.brownout,
        num_offered=report.num_offered,
        num_finished=report.num_finished,
        attainment=report.attainment,
        goodput_rps=report.goodput_rps,
        p99_tbt=p99_tbt,
        shed_fraction=report.shed_fraction,
        num_disruptions=recovery.num_disruptions,
        mean_recovery_s=recovery.mean_recovery_time,
        max_recovery_s=recovery.max_recovery_time,
        num_censored=recovery.num_censored,
    )


def run_resilience_sweep(
    scale: Scale,
    num_replicas: int = 4,
    fault_rates: Sequence[float] = (0.0, 0.05, 0.15),
    qps_per_replica: float = 1.5,
    mean_downtime: float = 6.0,
    perf_cache: bool | None = None,
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
) -> list[ResiliencePoint]:
    """Sweep fault rate × correlation × brownout on one fleet.

    ``fault_rates`` are domain-events per domain-second for the
    correlated arm; the independent arm scales its per-replica rate so
    both arms expect the same number of replica-hits.  A zero fault
    rate runs once per brownout setting (correlation is meaningless
    without faults).  Scored against the *strict* derived TBT SLO —
    the relaxed one leaves a 2x slowdown invisible.
    """
    deployment = mistral_deployment()
    if perf_cache is None:
        perf_cache = perf_cache_from_env()
    config = ServingConfig(
        scheduler=SchedulerKind.SARATHI,
        token_budget=SWEEP_TOKEN_BUDGET,
        perf_cache=perf_cache,
    )
    slo = derived_slo(execution_model_for(deployment, config), strict=True)

    specs = [
        ResiliencePointSpec(
            deployment=deployment,
            config=config,
            scale=scale,
            num_replicas=num_replicas,
            qps=qps_per_replica * num_replicas,
            fault_rate=fault_rate,
            correlated=correlated,
            brownout=brownout,
            mean_downtime=mean_downtime,
            tbt_deadline=slo.p99_tbt,
        )
        for fault_rate in fault_rates
        for correlated in ((False,) if fault_rate == 0.0 else (False, True))
        for brownout in (False, True)
    ]
    return map_tasks(
        run_resilience_point, specs, jobs=jobs, cache_dir=cache_dir,
        run_dir=run_dir, resume=resume,
    ).values
