"""Prefix caching × chunk size × capacity on conversation workloads.

The headline question for the KV prefix cache: at a fixed P99-TBT SLO,
how much more conversation load can a replica sustain when follow-up
rounds reuse their history's KV blocks instead of re-prefilling them?
For each Sarathi token budget (chunk size) we search capacity — the
maximum conversation-arrival rate meeting the SLO — with the cache off
and on, then re-run one simulation at the found capacity to report the
cache's own counters (hit rate, COW copies).

Chunk size interacts with caching: reuse removes prefill work, which
is exactly what small chunks ration, so strict-SLO (small-budget)
configurations see the largest relative gain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api import Deployment, ServingConfig
from repro.experiments.common import DEFAULT, Scale, mistral_deployment
from repro.metrics.capacity import find_capacity
from repro.metrics.slo import SLOSpec
from repro.perf.profiler import reference_decode_time
from repro.types import SchedulerKind
from repro.workload.conversation import ConversationSpec, simulate_conversations

CHUNK_SIZES = (512, 2048)
SLO_MULTIPLIER = 25.0  # the paper's relaxed P99-TBT setting


@dataclass(frozen=True)
class PrefixCachePoint:
    """Capacity of one (chunk size, cache on/off) configuration."""

    variant: str            # "cache-off" | "cache-on"
    chunk_size: int
    capacity_qps: float     # conversation arrivals per second at the SLO
    hit_rate: float         # prefix lookups served from the store
    hit_tokens: int         # prefill tokens skipped via reuse
    cow_copies: int         # partial-block divergences


def conversation_spec_for(scale: Scale, prefix_mode: str = "conversation") -> ConversationSpec:
    """The sweep's workload: multi-round chats sized to the scale."""
    return ConversationSpec(
        num_conversations=max(8, scale.num_requests // 3),
        mean_rounds=3.0,
        mean_think_time=2.0,
        arrival_qps=1.0,  # replaced per capacity probe
        prefix_mode=prefix_mode,
    )


def run_prefix_cache_capacity(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    chunk_sizes: tuple[int, ...] = CHUNK_SIZES,
    qps_hint: float = 1.0,
) -> list[PrefixCachePoint]:
    """Capacity with and without prefix caching, per chunk size."""
    deployment = deployment or mistral_deployment()
    reference = reference_decode_time(deployment.execution_model())
    slo = SLOSpec(name=f"{SLO_MULTIPLIER:g}x", p99_tbt=SLO_MULTIPLIER * reference)
    spec = conversation_spec_for(scale)

    points = []
    for chunk in chunk_sizes:
        hint = qps_hint
        for cache_on in (False, True):
            config = ServingConfig(
                scheduler=SchedulerKind.SARATHI,
                token_budget=chunk,
                prefix_cache=cache_on,
            )

            def run_at(qps: float) -> object:
                probe_spec = replace(spec, arrival_qps=qps)
                _, metrics = simulate_conversations(
                    deployment, config, probe_spec, seed=scale.seed
                )
                return metrics

            search = find_capacity(
                run_at,
                slo,
                rel_tol=scale.capacity_rel_tol,
                max_probes=scale.capacity_max_probes,
                qps_hint=hint,
            )
            # The cache-off capacity is a lower bound for cache-on (the
            # cache only removes work), so it makes a sound warm start.
            hint = max(hint, search.capacity_qps) or hint

            # One confirmation run at capacity for the cache counters.
            stats_spec = replace(spec, arrival_qps=max(search.capacity_qps, 0.05))
            result, _ = simulate_conversations(
                deployment, config, stats_spec, seed=scale.seed
            )
            stats = result.prefix_stats
            points.append(
                PrefixCachePoint(
                    variant="cache-on" if cache_on else "cache-off",
                    chunk_size=chunk,
                    capacity_qps=search.capacity_qps,
                    hit_rate=stats.hit_rate if stats is not None else 0.0,
                    hit_tokens=stats.hit_tokens if stats is not None else 0,
                    cow_copies=stats.cow_copies if stats is not None else 0,
                )
            )
    return points


def capacity_gain(points: list[PrefixCachePoint]) -> dict[int, float]:
    """Per-chunk capacity ratio cache-on / cache-off (1.0 = no gain)."""
    by_chunk: dict[int, dict[str, float]] = {}
    for point in points:
        by_chunk.setdefault(point.chunk_size, {})[point.variant] = point.capacity_qps
    gains = {}
    for chunk, caps in by_chunk.items():
        off, on = caps.get("cache-off", 0.0), caps.get("cache-on", 0.0)
        gains[chunk] = on / off if off > 0 else 0.0
    return gains
