"""Figure 13: cross-node tensor parallelism vs pipeline parallelism.

(a) Decode-only TBT for Falcon-180B: 8-way TP spanning two nodes pays
per-layer allreduces over Ethernet and roughly doubles median TBT
versus TP4-within-node + PP2-across-nodes.

(b) Capacity on openchat_sharegpt4 for vLLM-TP8, vLLM-PP and
Sarathi-PP: TP8's latency floor caps its capacity even under relaxed
SLOs; vLLM-PP suffers pipeline bubbles under strict SLOs; Sarathi-PP
wins both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment
from repro.experiments.capacity_runner import (
    CapacityCellSpec,
    run_capacity_cells,
    serving_config_for,
)
from repro.experiments.common import (
    DEFAULT,
    Scale,
    falcon_deployment,
    falcon_tp8_cross_node_deployment,
)
from repro.metrics.slo import derived_slo
from repro.types import SchedulerKind, TokenWork
from repro.workload.datasets import SHAREGPT4


@dataclass(frozen=True)
class DecodeLatencyPoint:
    """Fig. 13a: decode-only iteration latency of one parallel layout."""

    layout: str
    batch_size: int
    tbt: float


def run_decode_latency(
    batch_sizes: tuple[int, ...] = (8, 16, 32, 64),
    context_len: int = 1024,
) -> list[DecodeLatencyPoint]:
    """Decode-only TBT for TP8-cross-node vs TP4-PP2-hybrid."""
    tp8 = falcon_tp8_cross_node_deployment().execution_model()
    hybrid = falcon_deployment().execution_model()
    points = []
    for bs in batch_sizes:
        points.append(
            DecodeLatencyPoint(
                layout="TP8-cross-node",
                batch_size=bs,
                tbt=tp8.decode_iteration_time(bs, context_len).total,
            )
        )
        # The hybrid pipeline's TBT spans both stage executions plus the
        # inter-stage activation hop.
        stage = hybrid.decode_iteration_time(bs, context_len)
        decode_works = [TokenWork.decode(context_len) for _ in range(bs)]
        send = hybrid.pipeline_send_time(decode_works)
        points.append(
            DecodeLatencyPoint(
                layout="TP4-PP2-hybrid",
                batch_size=bs,
                tbt=2 * stage.total + send,
            )
        )
    return points


@dataclass(frozen=True)
class ParallelCapacityCell:
    """Fig. 13b: capacity of one (system, layout) pair."""

    system: str
    slo_name: str
    capacity_qps: float


def run_parallel_capacity(
    scale: Scale = DEFAULT,
    strict_values: tuple[bool, ...] = (True, False),
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
) -> list[ParallelCapacityCell]:
    """Capacity of vLLM-TP8, vLLM-PP and Sarathi-PP (Fig. 13b).

    Warm-start groups are per system: a system's strict-SLO anchor
    seeds its relaxed-SLO search.
    """
    tp8 = falcon_tp8_cross_node_deployment()
    pp = falcon_deployment()
    systems: list[tuple[str, Deployment, SchedulerKind]] = [
        ("vllm-TP8", tp8, SchedulerKind.VLLM),
        ("vllm-PP", pp, SchedulerKind.VLLM),
        ("sarathi-PP", pp, SchedulerKind.SARATHI),
    ]
    specs = []
    for strict in strict_values:
        # One SLO for all three systems, anchored on the *hybrid* layout
        # (the paper anchors SLOs per model, not per parallel layout).
        slo = derived_slo(pp.execution_model(), strict)
        for name, deployment, scheduler in systems:
            config = serving_config_for(deployment, scheduler, strict)
            specs.append(
                CapacityCellSpec(
                    deployment=deployment,
                    scheduler=scheduler,
                    dataset=SHAREGPT4,
                    scale=scale,
                    config=config,
                    slo=slo,
                    qps_hint=0.4,
                    group=(name,),
                    variant=name,
                )
            )
    outcomes = run_capacity_cells(
        specs, jobs=jobs, cache_dir=cache_dir, run_dir=run_dir, resume=resume
    )
    return [
        ParallelCapacityCell(
            system=outcome.variant,
            slo_name=outcome.cell.slo_name,
            capacity_qps=outcome.cell.capacity_qps,
        )
        for outcome in outcomes
    ]
