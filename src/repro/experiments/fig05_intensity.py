"""Figure 5: arithmetic intensity of linear operators vs token count.

LLaMA2-70B linear layers on four A100s (TP4).  Decode batches (tens of
tokens) sit far below the device's ridge intensity — memory-bound —
while prefill chunks of hundreds of tokens sit above it.  Sarathi's
hybrid batches land near the ridge, maximizing both compute and
bandwidth utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment
from repro.hardware.catalog import A100_80G
from repro.models.catalog import LLAMA2_70B
from repro.parallel.config import ParallelConfig

TOKEN_COUNTS = (1, 8, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class IntensityPoint:
    """Arithmetic intensity of the stage's linear work at a token count."""

    num_tokens: int
    arithmetic_intensity: float
    ridge_intensity: float

    @property
    def is_memory_bound(self) -> bool:
        return self.arithmetic_intensity < self.ridge_intensity


def llama70_tp4_deployment() -> Deployment:
    return Deployment(
        model=LLAMA2_70B, gpu=A100_80G, parallel=ParallelConfig(tensor_parallel=4)
    )


def run_intensity_sweep(
    deployment: Deployment | None = None,
    token_counts: tuple[int, ...] = TOKEN_COUNTS,
) -> list[IntensityPoint]:
    """Arithmetic intensity of linear ops across batch token counts."""
    deployment = deployment or llama70_tp4_deployment()
    exec_model = deployment.execution_model()
    ridge = deployment.gpu.ridge_intensity
    return [
        IntensityPoint(
            num_tokens=n,
            arithmetic_intensity=exec_model.linear.arithmetic_intensity(n),
            ridge_intensity=ridge,
        )
        for n in token_counts
    ]
