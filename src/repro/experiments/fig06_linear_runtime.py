"""Figure 6: linear-layer execution time vs tokens at TP 1/2/4/8.

LLaMA2-70B on A100s.  Below the compute-bound knee, execution time is
dominated by streaming the weight shard (nearly flat in tokens); past
the knee it grows linearly.  Higher TP degrees shrink the shard and
push the *observed* knee to higher token counts (paper §3.1 footnote 2
reports ~500-600 tokens at high TP, vs the ~200-token theoretical
value).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.catalog import A100_80G
from repro.models.catalog import LLAMA2_70B
from repro.parallel.config import ParallelConfig
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.iteration import ExecutionModel

TOKEN_COUNTS = (64, 128, 256, 512, 768, 1024, 1536, 2048, 4096)
TP_DEGREES = (1, 2, 4, 8)


@dataclass(frozen=True)
class LinearRuntimePoint:
    """One (tp, tokens) probe of per-layer linear runtime."""

    tensor_parallel: int
    num_tokens: int
    layer_time: float
    is_memory_bound: bool


def run_linear_runtime(
    token_counts: tuple[int, ...] = TOKEN_COUNTS,
    tp_degrees: tuple[int, ...] = TP_DEGREES,
) -> list[LinearRuntimePoint]:
    """Per-layer linear runtime sweep across TP degrees and token counts."""
    points = []
    for tp in tp_degrees:
        exec_model = ExecutionModel(
            LLAMA2_70B,
            A100_80G,
            ParallelConfig(tensor_parallel=tp),
            DEFAULT_CALIBRATION,
        )
        for n in token_counts:
            cost = exec_model.linear.layer_cost(n)
            points.append(
                LinearRuntimePoint(
                    tensor_parallel=tp,
                    num_tokens=n,
                    layer_time=cost.time,
                    is_memory_bound=cost.is_memory_bound,
                )
            )
    return points


def compute_bound_knee(tp: int, token_counts: tuple[int, ...] = TOKEN_COUNTS) -> int:
    """Smallest probed token count at which the layer is compute-bound."""
    for point in run_linear_runtime(token_counts, (tp,)):
        if not point.is_memory_bound:
            return point.num_tokens
    return token_counts[-1]
