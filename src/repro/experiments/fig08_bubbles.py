"""Figure 8: pipeline bubbles under Orca vs Sarathi-Serve.

With pipeline parallelism, consecutive micro-batches of very different
compute (a 4k-token prefill followed by a 32-wide decode) leave later
stages idle — bubbles PB1/PB2/PB3 in the paper.  Sarathi's
uniform-compute hybrid batches shrink inter-batch variation and with
it the bubbles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import Deployment, ServingConfig, simulate
from repro.experiments.common import DEFAULT, Scale, falcon_deployment
from repro.metrics.timeline import pipeline_bubble_time, stage_utilization
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests


@dataclass(frozen=True)
class BubbleReport:
    """Pipeline bubble accounting for one scheduler."""

    scheduler: str
    bubble_fraction_last_stage: float
    bubble_time: float
    num_bubbles: int
    iteration_time_cv: float    # coefficient of variation across batches
    makespan: float


def run_bubble_comparison(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 1.0,
    token_budget: int = 512,
) -> list[BubbleReport]:
    """Compare bubble waste between Orca and Sarathi on a PP deployment."""
    deployment = deployment or falcon_deployment()
    if deployment.parallel.pipeline_parallel < 2:
        raise ValueError("bubble comparison needs a pipeline-parallel deployment")
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    reports = []
    for kind in (SchedulerKind.ORCA, SchedulerKind.SARATHI):
        config = ServingConfig(scheduler=kind, token_budget=token_budget)
        result, metrics = simulate(deployment, config, trace)
        last = deployment.parallel.pipeline_parallel - 1
        util = stage_utilization(result.records, last)
        num_bubbles, bubble_time = pipeline_bubble_time(result.records, last)
        durations = [r.duration for r in result.records if r.stage == 0]
        cv = float(np.std(durations) / np.mean(durations)) if durations else 0.0
        span = util.span if util.span > 0 else 1.0
        reports.append(
            BubbleReport(
                scheduler=kind.value,
                bubble_fraction_last_stage=bubble_time / span,
                bubble_time=bubble_time,
                num_bubbles=num_bubbles,
                iteration_time_cv=cv,
                makespan=metrics.makespan,
            )
        )
    return reports
