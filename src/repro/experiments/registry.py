"""Figure registry: reproduce any paper figure from the command line.

``python -m repro reproduce fig14`` runs that figure's experiment at
the requested scale and prints the same rows the paper reports.  The
registry maps figure ids to (runner, formatter) pairs; benchmarks use
the same runners, so CLI output and bench output always agree.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.common import DEFAULT, Scale, format_table
from repro.runtime import sweep_env

Table = tuple[list[str], list[list[str]]]


@dataclass(frozen=True)
class FigureEntry:
    """One reproducible figure/table."""

    figure_id: str
    title: str
    expensive: bool
    run: Callable[[Scale], Table]


def _fig01a(scale: Scale) -> Table:
    from repro.experiments.fig01_stalls import run_stall_timeline

    rows = [
        [r.scheduler, str(r.num_stalls), f"{r.max_stall:.2f}", f"{r.p99_tbt:.3f}"]
        for r in run_stall_timeline(scale)
    ]
    return (["scheduler", "stalls>0.5s", "max stall (s)", "P99 TBT (s)"], rows)


def _fig01b(scale: Scale) -> Table:
    from repro.experiments.fig01_stalls import run_tbt_vs_load

    rows = [
        [p.scheduler, f"{p.qps:.2f}", f"{p.p99_tbt:.3f}", f"{p.max_tbt:.2f}"]
        for p in run_tbt_vs_load(scale)
    ]
    return (["scheduler", "qps", "P99 TBT (s)", "max TBT (s)"], rows)


def _fig02(scale: Scale) -> Table:
    from repro.experiments.fig02_quadrant import run_quadrant

    rows = [
        [p.scheduler, f"{p.throughput_tokens_per_s:.0f}", f"{p.p99_tbt:.3f}",
         f"{p.median_ttft:.2f}"]
        for p in run_quadrant(scale, qps=3.0)
    ]
    return (["scheduler", "tok/s", "P99 TBT (s)", "med TTFT (s)"], rows)


def _fig03(scale: Scale) -> Table:
    from repro.experiments.fig03_phase_throughput import run_phase_throughput

    rows = [
        [str(p.batch_size), f"{p.prefill_tokens_per_s:.0f}", f"{p.decode_tokens_per_s:.0f}"]
        for p in run_phase_throughput()
    ]
    return (["batch", "prefill tok/s", "decode tok/s"], rows)


def _fig04(scale: Scale) -> Table:
    from repro.experiments.fig04_breakdown import run_breakdown

    rows = [
        [r.phase, str(r.seq_len), f"{r.total * 1e3:.1f}",
         f"{r.linear / r.total:.0%}", f"{r.attention / r.total:.0%}"]
        for r in run_breakdown()
    ]
    return (["phase", "seq len", "total (ms)", "linear", "attention"], rows)


def _fig05(scale: Scale) -> Table:
    from repro.experiments.fig05_intensity import run_intensity_sweep

    rows = [
        [str(p.num_tokens), f"{p.arithmetic_intensity:.1f}",
         "memory" if p.is_memory_bound else "compute"]
        for p in run_intensity_sweep()
    ]
    return (["tokens", "FLOPs/byte", "regime"], rows)


def _fig06(scale: Scale) -> Table:
    from repro.experiments.fig06_linear_runtime import run_linear_runtime

    rows = [
        [f"TP{p.tensor_parallel}", str(p.num_tokens), f"{p.layer_time * 1e6:.0f}",
         "memory" if p.is_memory_bound else "compute"]
        for p in run_linear_runtime()
    ]
    return (["config", "tokens", "layer time (µs)", "regime"], rows)


def _fig07(scale: Scale) -> Table:
    from repro.experiments.fig07_schedules import run_schedule_traces

    rows = [
        [t.scheduler, f"{t.worst_decode_gap:.3f}", f"{t.first_token_c:.3f}",
         "  ".join(t.iterations[:6])]
        for t in run_schedule_traces()
    ]
    return (["scheduler", "worst A/B gap (s)", "TTFT of C (s)", "schedule"], rows)


def _fig08(scale: Scale) -> Table:
    from repro.experiments.fig08_bubbles import run_bubble_comparison

    rows = [
        [r.scheduler, f"{r.iteration_time_cv:.2f}",
         f"{r.bubble_fraction_last_stage:.1%}", f"{r.bubble_time:.1f}"]
        for r in run_bubble_comparison(scale)
    ]
    return (["scheduler", "iter-time CV", "bubble fraction", "bubble time (s)"], rows)


def _fig09(scale: Scale) -> Table:
    from repro.experiments.fig09_hybrid_latency import run_hybrid_latency

    rows = [
        [str(p.prompt_len), f"{p.full_prefill_slowdown:.1f}x",
         f"{p.chunked_prefill_slowdown:.2f}x"]
        for p in run_hybrid_latency()
    ]
    return (["prompt", "+full prefill", "+chunked prefill"], rows)


def _fig10(scale: Scale) -> Table:
    from repro.experiments.fig10_capacity_small import run_capacity_grid

    rows = [
        [c.deployment.split("/")[0], c.dataset, c.slo_name, c.scheduler,
         f"{c.capacity_qps:.2f}"]
        for c in run_capacity_grid(scale)
    ]
    return (["model", "dataset", "SLO", "scheduler", "capacity qps"], rows)


def _fig11(scale: Scale) -> Table:
    from repro.experiments.fig11_capacity_pp import run_capacity_grid_pp

    rows = [
        [c.deployment.split("/")[0], c.dataset, c.slo_name, c.scheduler,
         f"{c.capacity_qps:.2f}"]
        for c in run_capacity_grid_pp(scale)
    ]
    return (["model", "dataset", "SLO", "scheduler", "capacity qps"], rows)


def _fig12(scale: Scale) -> Table:
    from repro.experiments.fig12_slo_sweep import run_slo_sweep

    rows = [
        [p.variant, f"{p.slo_p99_tbt:.2f}", f"{p.capacity_qps:.2f}"]
        for p in run_slo_sweep(scale)
    ]
    return (["variant", "SLO (s)", "capacity qps"], rows)


def _fig13a(scale: Scale) -> Table:
    from repro.experiments.fig13_tp_vs_pp import run_decode_latency

    rows = [
        [p.layout, str(p.batch_size), f"{p.tbt * 1e3:.1f}"]
        for p in run_decode_latency()
    ]
    return (["layout", "batch", "TBT (ms)"], rows)


def _fig13b(scale: Scale) -> Table:
    from repro.experiments.fig13_tp_vs_pp import run_parallel_capacity

    rows = [
        [c.system, c.slo_name, f"{c.capacity_qps:.2f}"]
        for c in run_parallel_capacity(scale)
    ]
    return (["system", "SLO", "capacity qps"], rows)


def _fig14(scale: Scale) -> Table:
    from repro.experiments.fig14_chunk_overhead import run_chunk_overhead

    rows = [
        [str(p.prompt_len), str(p.chunk_size), f"{p.overhead:.3f}"]
        for p in run_chunk_overhead()
    ]
    return (["prompt len", "chunk", "overhead (x)"], rows)


def _fleet(scale: Scale) -> Table:
    from repro.experiments.fleet import run_fleet_sweep

    rows = [
        [str(p.num_replicas), f"{p.qps:.2f}", f"{p.fault_rate:.2f}",
         f"{p.attainment:.0%}", f"{p.goodput_rps:.2f}",
         str(p.num_shed), str(p.num_failovers), str(p.num_restarts)]
        for p in run_fleet_sweep(scale)
    ]
    return (
        ["replicas", "qps", "faults/s", "attainment", "goodput rps",
         "shed", "failovers", "restarts"],
        rows,
    )


def _prefix(scale: Scale) -> Table:
    from repro.experiments.prefix_cache import capacity_gain, run_prefix_cache_capacity

    points = run_prefix_cache_capacity(scale)
    gains = capacity_gain(points)
    rows = [
        [str(p.chunk_size), p.variant, f"{p.capacity_qps:.2f}",
         f"{p.hit_rate:.0%}", str(p.cow_copies),
         f"{gains[p.chunk_size]:.2f}x" if p.variant == "cache-on" else "-"]
        for p in points
    ]
    return (["chunk", "variant", "capacity qps", "hit rate", "COW", "gain"], rows)


def _resilience(scale: Scale) -> Table:
    from repro.experiments.resilience import run_resilience_sweep

    def _recovery(value):
        return f"{value:.2f}" if value is not None else "-"

    rows = [
        [f"{p.fault_rate:.2f}",
         "correlated" if p.correlated else "independent",
         "on" if p.brownout else "off",
         f"{p.attainment:.0%}", f"{p.goodput_rps:.2f}",
         f"{p.p99_tbt:.3f}", f"{p.shed_fraction:.0%}",
         str(p.num_disruptions), _recovery(p.mean_recovery_s),
         _recovery(p.max_recovery_s)]
        for p in run_resilience_sweep(scale)
    ]
    return (
        ["faults/s", "domains", "brownout", "attainment", "goodput rps",
         "P99 TBT (s)", "shed", "disruptions", "MTTR (s)", "max rec (s)"],
        rows,
    )


def _leaderboard(scale: Scale) -> Table:
    from repro.experiments.leaderboard import leaderboard_table, run_leaderboard

    return leaderboard_table(run_leaderboard(scale))


def _table4(scale: Scale) -> Table:
    from repro.experiments.table4_ablation import run_ablation

    rows = [
        [r.scheduler, r.dataset, f"{r.p50_ttft:.2f}", f"{r.p99_tbt:.2f}"]
        for r in run_ablation(scale)
    ]
    return (["scheduler", "dataset", "P50 TTFT (s)", "P99 TBT (s)"], rows)


REGISTRY: dict[str, FigureEntry] = {
    entry.figure_id: entry
    for entry in (
        FigureEntry("fig01a", "Generation stalls (Yi-34B, arxiv)", False, _fig01a),
        FigureEntry("fig01b", "P99 TBT vs load", False, _fig01b),
        FigureEntry("fig02", "Throughput/latency quadrant", False, _fig02),
        FigureEntry("fig03", "Prefill vs decode throughput", False, _fig03),
        FigureEntry("fig04", "Runtime breakdown", False, _fig04),
        FigureEntry("fig05", "Arithmetic intensity", False, _fig05),
        FigureEntry("fig06", "Linear runtime vs tokens per TP", False, _fig06),
        FigureEntry("fig07", "A/B/C/D schedules", False, _fig07),
        FigureEntry("fig08", "Pipeline bubbles", False, _fig08),
        FigureEntry("fig09", "Hybrid batch latency", False, _fig09),
        FigureEntry("fig10", "Capacity: Mistral-7B & Yi-34B", True, _fig10),
        FigureEntry("fig11", "Capacity: PP models", True, _fig11),
        FigureEntry("fig12", "Capacity vs SLO sweep", True, _fig12),
        FigureEntry("fig13a", "TP vs PP decode latency", False, _fig13a),
        FigureEntry("fig13b", "TP vs PP capacity", True, _fig13b),
        FigureEntry("fig14", "Chunked-prefill overhead", False, _fig14),
        FigureEntry("table4", "Technique ablation", False, _table4),
        FigureEntry(
            "prefix", "Prefix-cache capacity: hit rate × chunk × SLO", True, _prefix
        ),
        FigureEntry("fleet", "Fleet goodput: replicas × faults × load", True, _fleet),
        FigureEntry(
            "resilience",
            "Fleet resilience: fault rate × domain correlation × brownout",
            True,
            _resilience,
        ),
        FigureEntry(
            "leaderboard",
            "Scheduler leaderboard: every registered policy × workload suite",
            True,
            _leaderboard,
        ),
    )
}


def list_figures() -> list[FigureEntry]:
    return list(REGISTRY.values())


def reproduce_figure(
    figure_id: str,
    scale: Scale = DEFAULT,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    run_dir: str | Path | None = None,
    resume: bool | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    chaos: str | None = None,
    surrogate: bool | None = None,
) -> str:
    """Run one figure's experiment and render its table.

    The sweep knobs (``jobs``, ``cache_dir``, the ``run_dir``/``resume``
    ledger pair, ``task_timeout``/``max_retries`` supervision limits,
    the ``chaos`` spec and the ``surrogate`` capacity-seeding switch)
    reach the figure's sweep through the ``REPRO_*`` environment
    (runners pick them up via the sweep engine's defaults), so every
    registry entry keeps its plain ``run(scale)`` signature.
    """
    key = figure_id.lower()
    if key not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown figure {figure_id!r}; known: {known}")
    entry = REGISTRY[key]
    with sweep_env(
        jobs=jobs,
        cache_dir=cache_dir,
        run_dir=run_dir,
        resume=resume,
        task_timeout=task_timeout,
        max_retries=max_retries,
        chaos=chaos,
        surrogate=surrogate,
    ):
        headers, rows = entry.run(scale)
    return f"{entry.figure_id} — {entry.title}\n\n" + format_table(headers, rows)
