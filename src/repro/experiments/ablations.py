"""Ablations of the design choices DESIGN.md calls out.

Beyond the paper's own Table 4, these isolate:

* the **token budget** value — the central knob (§4.3);
* **tile-quantization awareness** — budget/chunk alignment to the GPU
  matmul tile;
* the **memory allocator** — paged vs worst-case reservation under the
  same (Sarathi) scheduling policy;
* **static vs dynamic budgets** — the paper's future-work extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, build_engine, clone_requests
from repro.core.sarathi import SarathiScheduler
from repro.engine.replica import ReplicaEngine
from repro.experiments.common import DEFAULT, Scale, mistral_deployment, yi_deployment
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.metrics.summary import summarize
from repro.perf.calibration import Calibration
from repro.perf.iteration import ExecutionModel
from repro.types import SchedulerKind, TokenWork
from repro.workload.datasets import SHAREGPT4, generate_requests


# ----------------------------------------------------------------------
# Token budget sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BudgetSweepPoint:
    """Latency/throughput at one token-budget setting."""

    token_budget: int
    p99_tbt: float
    median_ttft: float
    makespan: float


def run_budget_sweep(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    budgets: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096),
    qps: float = 2.0,
) -> list[BudgetSweepPoint]:
    """TBT/TTFT across token budgets at a fixed load."""
    deployment = deployment or mistral_deployment()
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    points = []
    for budget in budgets:
        config = ServingConfig(scheduler=SchedulerKind.SARATHI, token_budget=budget)
        engine = build_engine(deployment, config)
        result = engine.run(clone_requests(trace))
        metrics = summarize(result)
        points.append(
            BudgetSweepPoint(
                token_budget=budget,
                p99_tbt=metrics.p99_tbt,
                median_ttft=metrics.median_ttft,
                makespan=metrics.makespan,
            )
        )
    return points


# ----------------------------------------------------------------------
# Tile quantization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileQuantizationPoint:
    """Prefill math time just below/above a tile boundary."""

    chunk: int
    with_tiles: float
    without_tiles: float


def run_tile_quantization(
    deployment: Deployment | None = None,
    boundary: int = 256,
) -> list[TileQuantizationPoint]:
    """The §4.3 effect: chunk ``boundary+1`` vs ``boundary``."""
    deployment = deployment or yi_deployment()
    with_tiles = ExecutionModel(
        deployment.model,
        deployment.gpu,
        deployment.parallel,
        Calibration(model_tile_quantization=True),
    )
    without = ExecutionModel(
        deployment.model,
        deployment.gpu,
        deployment.parallel,
        Calibration(model_tile_quantization=False),
    )
    points = []
    for chunk in (boundary, boundary + 1, 2 * boundary, 2 * boundary + 1):
        work = [TokenWork.prefill_chunk(chunk)]
        points.append(
            TileQuantizationPoint(
                chunk=chunk,
                with_tiles=with_tiles.iteration_time(work).total,
                without_tiles=without.iteration_time(work).total,
            )
        )
    return points


# ----------------------------------------------------------------------
# Memory allocator under a fixed policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AllocatorPoint:
    """Sarathi under paged vs reservation memory."""

    allocator: str
    median_ttft: float
    p99_scheduling_delay: float
    makespan: float


def run_allocator_comparison(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 2.5,
    token_budget: int = 512,
    reserve_len: int = 8192,
) -> list[AllocatorPoint]:
    """Hold the scheduler fixed (Sarathi) and swap the allocator.

    Reservation-style admission caps the number of concurrently
    admitted requests far below paged admission, shrinking decode batch
    sizes and inflating queueing under load — the §5.1 explanation of
    Orca's disadvantage, isolated from its scheduling policy.  Measured
    on Yi-34B under a sharegpt burst, where dozens of requests decode
    concurrently and worst-case reservations actually bind.
    """
    deployment = deployment or yi_deployment()
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    paged_capacity = deployment.kv_capacity_tokens(reservation_style=False)
    reserved_capacity = deployment.kv_capacity_tokens(reservation_style=True)
    allocators = {
        "paged": PagedBlockManager(paged_capacity),
        "reservation": ReservationManager(reserved_capacity, reserve_len=reserve_len),
    }
    points = []
    for name, memory in allocators.items():
        scheduler = SarathiScheduler(memory, token_budget=token_budget)
        engine = ReplicaEngine(deployment.execution_model(), scheduler)
        result = engine.run(clone_requests(trace))
        metrics = summarize(result)
        points.append(
            AllocatorPoint(
                allocator=name,
                median_ttft=metrics.median_ttft,
                p99_scheduling_delay=metrics.p99_scheduling_delay,
                makespan=metrics.makespan,
            )
        )
    return points


# ----------------------------------------------------------------------
# Static vs dynamic token budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicBudgetPoint:
    """One scheduler variant's operating point at a fixed load."""

    variant: str
    p99_tbt: float
    median_ttft: float
    mean_budget: float


def run_dynamic_budget_comparison(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 2.0,
) -> list[DynamicBudgetPoint]:
    """Static 512-token budget vs the SLO-driven dynamic budget."""
    deployment = deployment or mistral_deployment()
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    variants = {
        "static-512": ServingConfig(
            scheduler=SchedulerKind.SARATHI, token_budget=512
        ),
        "dynamic": ServingConfig(scheduler=SchedulerKind.SARATHI_DYNAMIC),
    }
    points = []
    for name, config in variants.items():
        engine = build_engine(deployment, config)
        result = engine.run(clone_requests(trace))
        metrics = summarize(result)
        history = getattr(engine.scheduler, "budget_history", [])
        mean_budget = sum(history) / len(history) if history else config.token_budget
        points.append(
            DynamicBudgetPoint(
                variant=name,
                p99_tbt=metrics.p99_tbt,
                median_ttft=metrics.median_ttft,
                mean_budget=mean_budget,
            )
        )
    return points
