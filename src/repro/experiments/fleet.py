"""Fleet sweep: goodput across replica count × failure rate × load.

The paper evaluates single-replica capacity (§5.1); this experiment
extends the same SLO machinery to fleet operation, the regime the
disaggregation baselines (DistServe, SplitWise) report in: how much
*goodput* — requests that individually met their deadlines, divided by
everything offered — a fleet sustains as replicas are added, load rises
and replicas crash.  Zero-fault rows reproduce the static-scaling
picture; faulted rows show how failover recompute and bounded
admission bend it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api import Deployment, ServingConfig, execution_model_for
from repro.cluster.fleet import FaultSchedule, FleetConfig, FleetSimulator
from repro.cluster.router import (
    FleetRouter,
    LeastOutstandingTokensRouter,
    RoundRobinRouter,
    SloAwareRouter,
    as_fleet_router,
)
from repro.experiments.common import Scale, mistral_deployment, perf_cache_from_env
from repro.metrics.goodput import RequestSLO, fleet_goodput
from repro.metrics.slo import derived_slo
from repro.metrics.summary import summarize
from repro.runtime import map_tasks, persist_execution_model, shared_execution_model
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests

# Deadline for the first token in the fleet goodput score: generous
# next to the strict TBT deadline, tight enough that a failover
# re-prefill during a backlog shows up as a violation.
DEFAULT_TTFT_DEADLINE = 2.0

# Bounded per-replica admission queue used by the sweep so overload
# actually sheds instead of queueing unboundedly at the highest loads.
SWEEP_MAX_QUEUE_DEPTH = 64


@dataclass(frozen=True)
class FleetSweepPoint:
    """One (replicas, fault rate, load) operating point."""

    num_replicas: int
    qps: float
    fault_rate: float
    num_offered: int
    num_finished: int
    num_shed: int
    num_failovers: int
    num_restarts: int
    attainment: float
    goodput_rps: float
    p99_tbt: float


def router_named(name: str, num_replicas: int, tbt_slo: float) -> FleetRouter:
    """Build a router from its CLI name."""
    if name == "round-robin":
        return as_fleet_router(RoundRobinRouter(num_replicas))
    if name == "least-outstanding":
        return LeastOutstandingTokensRouter(num_replicas)
    if name == "slo-aware":
        return SloAwareRouter(num_replicas, tbt_slo=tbt_slo)
    raise ValueError(
        f"unknown router {name!r}; choose one of "
        "'round-robin', 'least-outstanding', 'slo-aware'"
    )


@dataclass(frozen=True)
class FleetPointSpec:
    """One fleet operating point, picklable for the sweep engine."""

    deployment: Deployment
    config: ServingConfig
    scale: Scale
    num_replicas: int
    qps: float
    fault_rate: float
    mean_downtime: float
    router: str
    tbt_deadline: float
    ttft_deadline: float = DEFAULT_TTFT_DEADLINE


def run_fleet_point(spec: FleetPointSpec) -> FleetSweepPoint:
    """Simulate one fleet operating point (module-level: picklable).

    The execution model comes from the runtime's per-process registry,
    warm from the persistent disk cache when one is configured.
    """
    lease = shared_execution_model(spec.deployment, spec.config)
    trace = generate_requests(
        SHAREGPT4,
        num_requests=spec.scale.num_requests,
        qps=spec.qps,
        seed=spec.scale.seed,
    )
    horizon = max(r.arrival_time for r in trace) + 30.0
    fleet_config = FleetConfig(
        num_replicas=spec.num_replicas,
        faults=FaultSchedule.poisson(
            spec.num_replicas,
            rate=spec.fault_rate,
            mean_downtime=spec.mean_downtime,
            horizon=horizon,
            seed=spec.scale.seed,
        ),
        max_queue_depth=SWEEP_MAX_QUEUE_DEPTH,
    )
    simulator = FleetSimulator(
        spec.deployment,
        spec.config,
        fleet_config,
        router=router_named(spec.router, spec.num_replicas, spec.tbt_deadline),
        exec_model=lease.exec_model,
    )
    result = simulator.run(trace)
    persist_execution_model(lease.exec_model)
    request_slo = RequestSLO(
        ttft_deadline=spec.ttft_deadline, tbt_deadline=spec.tbt_deadline
    )
    report = fleet_goodput(result, request_slo)
    p99_tbt = (
        summarize(result.merged()).p99_tbt
        if result.finished_requests
        else float("inf")
    )
    return FleetSweepPoint(
        num_replicas=spec.num_replicas,
        qps=spec.qps,
        fault_rate=spec.fault_rate,
        num_offered=report.num_offered,
        num_finished=report.num_finished,
        num_shed=report.num_shed,
        num_failovers=report.num_failovers,
        num_restarts=report.num_restarts,
        attainment=report.attainment,
        goodput_rps=report.goodput_rps,
        p99_tbt=p99_tbt,
    )


def run_fleet_sweep(
    scale: Scale,
    replica_counts: Sequence[int] = (1, 2, 4),
    fault_rates: Sequence[float] = (0.0, 0.05),
    load_factors: Sequence[float] = (0.5, 1.0),
    qps_per_replica: float = 1.5,
    mean_downtime: float = 5.0,
    router: str = "least-outstanding",
    perf_cache: bool | None = None,
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
) -> list[FleetSweepPoint]:
    """Sweep the fleet grid and score each point's goodput.

    ``fault_rates`` are crashes per replica-second (Poisson, seeded by
    ``scale.seed``); load is ``load_factor * qps_per_replica *
    num_replicas`` so each replica sees comparable pressure across
    fleet sizes.  Points fan out through the sweep engine; every point
    prices the same deployment, so they all share one warm execution
    model per process (and the persistent disk cache across runs).
    """
    deployment = mistral_deployment()
    if perf_cache is None:
        perf_cache = perf_cache_from_env()
    config = ServingConfig(scheduler=SchedulerKind.SARATHI, perf_cache=perf_cache)
    slo = derived_slo(execution_model_for(deployment, config), strict=False)

    specs = [
        FleetPointSpec(
            deployment=deployment,
            config=config,
            scale=scale,
            num_replicas=num_replicas,
            qps=load * qps_per_replica * num_replicas,
            fault_rate=fault_rate,
            mean_downtime=mean_downtime,
            router=router,
            tbt_deadline=slo.p99_tbt,
        )
        for num_replicas in replica_counts
        for load in load_factors
        for fault_rate in fault_rates
    ]
    return map_tasks(
        run_fleet_point, specs, jobs=jobs, cache_dir=cache_dir,
        run_dir=run_dir, resume=resume,
    ).values
