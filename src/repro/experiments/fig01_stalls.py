"""Figure 1: generation stalls and tail latency vs load.

(a) replays an arxiv-summarization trace of 128 requests on Yi-34B
(TP2) and extracts each scheduler's generation stalls — inter-token
gaps far above the decode-only latency; vLLM shows multi-second
stalls, Sarathi-Serve shows none.

(b) sweeps the arrival rate and reports P99 TBT per scheduler: vLLM's
tail inflates with load, Sarathi-Serve's stays near the iteration
budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, simulate
from repro.experiments.common import (
    DEFAULT,
    STRICT_TOKEN_BUDGET,
    Scale,
    yi_deployment,
)
from repro.metrics.timeline import generation_stalls
from repro.types import SchedulerKind
from repro.workload.datasets import ARXIV_SUMMARIZATION, generate_requests

# Inter-token gaps above this count as stalls for reporting (several ×
# the decode-only iteration latency).
STALL_THRESHOLD = 0.5


@dataclass(frozen=True)
class StallReport:
    """Per-scheduler stall statistics for the Fig. 1a trace replay."""

    scheduler: str
    num_stalls: int
    max_stall: float
    p99_tbt: float
    median_tbt: float


def run_stall_timeline(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 0.45,
) -> list[StallReport]:
    """Fig. 1a: replay one trace under vLLM and Sarathi-Serve."""
    deployment = deployment or yi_deployment()
    trace = generate_requests(
        ARXIV_SUMMARIZATION, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    reports = []
    for kind in (SchedulerKind.VLLM, SchedulerKind.SARATHI):
        config = ServingConfig(scheduler=kind, token_budget=STRICT_TOKEN_BUDGET)
        result, metrics = simulate(deployment, config, trace)
        stalls: list[float] = []
        for request in result.finished_requests:
            stalls.extend(generation_stalls(request, STALL_THRESHOLD))
        reports.append(
            StallReport(
                scheduler=kind.value,
                num_stalls=len(stalls),
                max_stall=max(stalls, default=0.0),
                p99_tbt=metrics.p99_tbt,
                median_tbt=metrics.median_tbt,
            )
        )
    return reports


@dataclass(frozen=True)
class LoadPoint:
    """One (scheduler, qps) probe of the Fig. 1b sweep."""

    scheduler: str
    qps: float
    p99_tbt: float
    max_tbt: float
    median_ttft: float


def run_tbt_vs_load(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps_values: tuple[float, ...] = (0.2, 0.35, 0.5, 0.65),
) -> list[LoadPoint]:
    """Fig. 1b: P99 TBT as the arrival rate rises."""
    deployment = deployment or yi_deployment()
    points = []
    for qps in qps_values:
        trace = generate_requests(
            ARXIV_SUMMARIZATION,
            num_requests=scale.num_requests,
            qps=qps,
            seed=scale.seed,
        )
        for kind in (SchedulerKind.VLLM, SchedulerKind.SARATHI):
            config = ServingConfig(scheduler=kind, token_budget=STRICT_TOKEN_BUDGET)
            _, metrics = simulate(deployment, config, trace)
            points.append(
                LoadPoint(
                    scheduler=kind.value,
                    qps=qps,
                    p99_tbt=metrics.p99_tbt,
                    max_tbt=metrics.max_tbt,
                    median_ttft=metrics.median_ttft,
                )
            )
    return points
