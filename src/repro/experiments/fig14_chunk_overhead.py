"""Figure 14: the overhead of chunked-prefills on prefill runtime.

Yi-34B (TP2), prompt lengths 2k-16k, chunk sizes 512/1024/2048.  Each
chunk re-reads the KV of all earlier chunks and pays fixed kernel and
iteration overheads, so smaller chunks cost more — up to ~25% at chunk
512 in the paper, near-negligible at 2048.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment
from repro.experiments.common import yi_deployment

PROMPT_LENGTHS = (2048, 4096, 8192, 16384)
CHUNK_SIZES = (512, 1024, 2048)


@dataclass(frozen=True)
class ChunkOverheadPoint:
    """Prefill runtime of one (prompt, chunk) pair vs unchunked."""

    prompt_len: int
    chunk_size: int
    chunked_time: float
    unchunked_time: float

    @property
    def overhead(self) -> float:
        """Relative slowdown (1.0 = no overhead)."""
        return self.chunked_time / self.unchunked_time


def run_chunk_overhead(
    deployment: Deployment | None = None,
    prompt_lengths: tuple[int, ...] = PROMPT_LENGTHS,
    chunk_sizes: tuple[int, ...] = CHUNK_SIZES,
) -> list[ChunkOverheadPoint]:
    """Sweep (prompt length × chunk size) prefill overheads."""
    deployment = deployment or yi_deployment()
    exec_model = deployment.execution_model()
    points = []
    for prompt_len in prompt_lengths:
        unchunked = exec_model.full_prefill_time(prompt_len).total
        for chunk_size in chunk_sizes:
            if chunk_size > prompt_len:
                continue
            chunked = exec_model.chunked_prefill_time(prompt_len, chunk_size).total
            points.append(
                ChunkOverheadPoint(
                    prompt_len=prompt_len,
                    chunk_size=chunk_size,
                    chunked_time=chunked,
                    unchunked_time=unchunked,
                )
            )
    return points
