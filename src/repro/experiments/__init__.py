"""Per-figure experiment runners reproducing the paper's evaluation.

Each module reproduces one figure or table; benchmarks under
``benchmarks/`` call these and print the paper-vs-measured rows
recorded in ``EXPERIMENTS.md``.
"""

from repro.experiments.common import (
    DEFAULT,
    FULL,
    LLAMA_RELAXED_TOKEN_BUDGET,
    RELAXED_TOKEN_BUDGET,
    SMOKE,
    STRICT_TOKEN_BUDGET,
    Scale,
    falcon_deployment,
    falcon_tp8_cross_node_deployment,
    format_table,
    llama70_deployment,
    mistral_deployment,
    scale_from_env,
    yi_deployment,
)
from repro.experiments.capacity_runner import (
    CapacityCell,
    capacity_cell,
    measure_capacity,
    serving_config_for,
    token_budget_for,
)

__all__ = [
    "Scale",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "scale_from_env",
    "mistral_deployment",
    "yi_deployment",
    "llama70_deployment",
    "falcon_deployment",
    "falcon_tp8_cross_node_deployment",
    "STRICT_TOKEN_BUDGET",
    "RELAXED_TOKEN_BUDGET",
    "LLAMA_RELAXED_TOKEN_BUDGET",
    "format_table",
    "CapacityCell",
    "capacity_cell",
    "measure_capacity",
    "serving_config_for",
    "token_budget_for",
]
