"""Figure 9: the latency cost of coalescing prefills with decodes.

Compares two ways of piggybacking prefill work on a decode batch:

* *Decode + Full Prefill* (Orca-style hybrid): the whole prompt joins
  one iteration — latency explodes with prompt length (up to ~28× a
  decode-only batch in the paper);
* *Decode + Chunked Prefill* (Sarathi): only one budget-bounded chunk
  joins — latency stays within a small factor of decode-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment
from repro.experiments.common import mistral_deployment
from repro.hardware.catalog import A100_80G
from repro.models.catalog import LLAMA2_70B
from repro.parallel.config import ParallelConfig
from repro.types import TokenWork

PROMPT_LENGTHS = (512, 1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class HybridLatencyPoint:
    """Latency of one hybrid-batch composition, relative to decode-only."""

    prompt_len: int
    decode_batch_size: int
    decode_only: float
    with_full_prefill: float
    with_chunked_prefill: float

    @property
    def full_prefill_slowdown(self) -> float:
        return self.with_full_prefill / self.decode_only

    @property
    def chunked_prefill_slowdown(self) -> float:
        return self.with_chunked_prefill / self.decode_only


def llama70_tp4_deployment() -> Deployment:
    return Deployment(
        model=LLAMA2_70B, gpu=A100_80G, parallel=ParallelConfig(tensor_parallel=4)
    )


def run_hybrid_latency(
    deployment: Deployment | None = None,
    token_budget: int = 256,
    decode_batch_size: int = 32,
    decode_context: int = 1024,
    prompt_lengths: tuple[int, ...] = PROMPT_LENGTHS,
    exec_model=None,
) -> list[HybridLatencyPoint]:
    """Price decode-only vs hybrid-with-full vs hybrid-with-chunk batches.

    The chunked variant charges the *worst* chunk of the prompt (the
    last one, which re-reads the most KV), i.e. the worst iteration a
    co-running decode would experience.  ``exec_model`` lets sweeps
    over budgets/batch shapes reuse one (possibly memoized) model.
    """
    deployment = deployment or mistral_deployment()
    if exec_model is None:
        exec_model = deployment.execution_model()
    decodes = [TokenWork.decode(decode_context) for _ in range(decode_batch_size)]
    points = []
    for prompt_len in prompt_lengths:
        decode_only = exec_model.iteration_time(decodes).total
        full = exec_model.iteration_time(
            decodes + [TokenWork.prefill_chunk(prompt_len)]
        ).total
        chunk = min(token_budget, prompt_len)
        last_chunk_past = max(prompt_len - chunk, 0)
        chunked = exec_model.iteration_time(
            decodes
            + [
                TokenWork.prefill_chunk(
                    chunk, past_len=last_chunk_past, is_last=True
                )
            ]
        ).total
        points.append(
            HybridLatencyPoint(
                prompt_len=prompt_len,
                decode_batch_size=decode_batch_size,
                decode_only=decode_only,
                with_full_prefill=full,
                with_chunked_prefill=chunked,
            )
        )
    return points
