"""Shared capacity-search runner used by the Fig. 10-13 experiments.

One call = one bar in the paper's capacity figures: a (deployment,
scheduler, dataset, SLO) tuple searched for its maximum sustainable
QPS.  SLOs are derived from the substrate's own reference decode
latency (5×/25×, §5.1) so strictness is self-consistent with the
simulator's calibration; token budgets follow the paper's choices
(512 strict / 2048 relaxed / 1536 for LLaMA2-70B relaxed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, execution_model_for, simulate
from repro.experiments.common import (
    LLAMA_RELAXED_TOKEN_BUDGET,
    RELAXED_TOKEN_BUDGET,
    STRICT_TOKEN_BUDGET,
    Scale,
    perf_cache_from_env,
)
from repro.metrics.capacity import CapacityResult, find_capacity
from repro.metrics.slo import SLOSpec, derived_slo
from repro.types import SchedulerKind
from repro.workload.datasets import DatasetSpec, generate_requests


@dataclass(frozen=True)
class CapacityCell:
    """One bar of a capacity figure."""

    deployment: str
    scheduler: str
    dataset: str
    slo_name: str
    slo_p99_tbt: float
    capacity_qps: float
    num_probes: int


def token_budget_for(deployment: Deployment, strict: bool) -> int:
    """The paper's token budget for an SLO regime (§5.1)."""
    if strict:
        return STRICT_TOKEN_BUDGET
    if deployment.model.name.lower() == "llama2-70b":
        return LLAMA_RELAXED_TOKEN_BUDGET
    return RELAXED_TOKEN_BUDGET


def serving_config_for(
    deployment: Deployment,
    scheduler: SchedulerKind,
    strict: bool,
    max_batch_size: int = 128,
    token_budget: int | None = None,
    perf_cache: bool | None = None,
) -> ServingConfig:
    """A scheduler's serving config for one SLO regime."""
    budget = token_budget or token_budget_for(deployment, strict)
    reserve_len = 16384  # worst-case sequence across both datasets
    if perf_cache is None:
        perf_cache = perf_cache_from_env()
    return ServingConfig(
        scheduler=scheduler,
        token_budget=budget,
        max_batch_size=max_batch_size,
        reserve_len=reserve_len,
        perf_cache=perf_cache,
    )


# Each capacity probe must offer load for at least this long; with a
# fixed request count, high-QPS probes would otherwise finish arriving
# before any request completes, hiding both stalls and queue growth.
MIN_LOAD_DURATION = 60.0


def measure_capacity(
    deployment: Deployment,
    scheduler: SchedulerKind,
    dataset: DatasetSpec,
    slo: SLOSpec,
    scale: Scale,
    config: ServingConfig | None = None,
    strict: bool | None = None,
    qps_hint: float = 0.5,
    min_load_duration: float = MIN_LOAD_DURATION,
    exec_model=None,
) -> CapacityResult:
    """Search the maximum sustainable QPS for one configuration.

    Pass ``exec_model`` to supply (and afterwards inspect) the model
    shared by every probe — e.g. a ``CachedExecutionModel`` whose hit
    counters a caller wants to read back.
    """
    if config is None:
        if strict is None:
            raise ValueError("pass either config or strict")
        config = serving_config_for(deployment, scheduler, strict)

    # One (possibly memoized) execution model serves every probe: the
    # model's inputs are immutable, so later probes run on the warm
    # cache earlier probes populated.
    if exec_model is None:
        exec_model = execution_model_for(deployment, config)

    def run_at_qps(qps: float):
        num_requests = max(scale.num_requests, int(qps * min_load_duration))
        trace = generate_requests(
            dataset, num_requests=num_requests, qps=qps, seed=scale.seed
        )
        _, metrics = simulate(deployment, config, trace, exec_model=exec_model)
        return metrics

    return find_capacity(
        run_at_qps,
        slo,
        qps_lo=qps_hint / 4,
        qps_hi=qps_hint,
        rel_tol=scale.capacity_rel_tol,
        max_probes=scale.capacity_max_probes,
    )


def capacity_cell(
    deployment: Deployment,
    scheduler: SchedulerKind,
    dataset: DatasetSpec,
    strict: bool,
    scale: Scale,
    qps_hint: float = 0.5,
) -> CapacityCell:
    """Convenience wrapper returning a flat result row."""
    slo = derived_slo(deployment.execution_model(), strict)
    result = measure_capacity(
        deployment, scheduler, dataset, slo, scale, strict=strict, qps_hint=qps_hint
    )
    return CapacityCell(
        deployment=deployment.label,
        scheduler=scheduler.value,
        dataset=dataset.name,
        slo_name=slo.name,
        slo_p99_tbt=slo.p99_tbt,
        capacity_qps=result.capacity_qps,
        num_probes=result.num_probes,
    )
