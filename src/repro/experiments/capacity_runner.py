"""Shared capacity-search runner used by the Fig. 10-13 experiments.

One call = one bar in the paper's capacity figures: a (deployment,
scheduler, dataset, SLO) tuple searched for its maximum sustainable
QPS.  SLOs are derived from the substrate's own reference decode
latency (5×/25×, §5.1) so strictness is self-consistent with the
simulator's calibration; token budgets follow the paper's choices
(512 strict / 2048 relaxed / 1536 for LLaMA2-70B relaxed).

Grids run through the sweep engine (:mod:`repro.runtime`): cells are
described by picklable :class:`CapacityCellSpec`\\ s, fanned out across
worker processes, and **warm-started** — each neighbourhood of cells
(same deployment and dataset by default) runs one anchor cell first,
then seeds every remaining cell's bracket with the anchor's measured
capacity.  The two-wave plan is a pure function of the spec list, and
every cell is a pure function of its spec, so the grid's output is
bit-identical at any ``--jobs``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.api import Deployment, ServingConfig, execution_model_for, simulate
from repro.experiments.common import (
    LLAMA_RELAXED_TOKEN_BUDGET,
    RELAXED_TOKEN_BUDGET,
    STRICT_TOKEN_BUDGET,
    Scale,
    perf_cache_from_env,
)
from repro.metrics.capacity import CapacityResult, find_capacity
from repro.metrics.slo import SLOSpec, derived_slo
from repro.perf.cache import CachedExecutionModel
from repro.perf.surrogate import SurrogateStore
from repro.runtime import (
    cache_dir_from_env,
    map_tasks,
    persist_execution_model,
    shared_execution_model,
    surrogate_from_env,
)
from repro.scheduling.registry import scheduler_name
from repro.telemetry.sweep import capacity_probe_rows
from repro.types import SchedulerKind
from repro.workload.datasets import DatasetSpec, generate_requests


@dataclass(frozen=True)
class CapacityCell:
    """One bar of a capacity figure."""

    deployment: str
    scheduler: str
    dataset: str
    slo_name: str
    slo_p99_tbt: float
    capacity_qps: float
    num_probes: int


def token_budget_for(deployment: Deployment, strict: bool) -> int:
    """The paper's token budget for an SLO regime (§5.1)."""
    if strict:
        return STRICT_TOKEN_BUDGET
    if deployment.model.name.lower() == "llama2-70b":
        return LLAMA_RELAXED_TOKEN_BUDGET
    return RELAXED_TOKEN_BUDGET


def serving_config_for(
    deployment: Deployment,
    scheduler: SchedulerKind | str,
    strict: bool,
    max_batch_size: int = 128,
    token_budget: int | None = None,
    perf_cache: bool | None = None,
) -> ServingConfig:
    """A scheduler's serving config for one SLO regime."""
    if token_budget is None:
        budget = token_budget_for(deployment, strict)
    elif token_budget <= 0:
        # An explicit 0 used to silently fall back to the regime default
        # (`token_budget or ...`); fail loudly instead.
        raise ValueError(
            f"token_budget must be positive or None, got {token_budget}"
        )
    else:
        budget = token_budget
    reserve_len = 16384  # worst-case sequence across both datasets
    if perf_cache is None:
        perf_cache = perf_cache_from_env()
    return ServingConfig(
        scheduler=scheduler,
        token_budget=budget,
        max_batch_size=max_batch_size,
        reserve_len=reserve_len,
        perf_cache=perf_cache,
    )


# Each capacity probe must offer load for at least this long; with a
# fixed request count, high-QPS probes would otherwise finish arriving
# before any request completes, hiding both stalls and queue growth.
MIN_LOAD_DURATION = 60.0


def measure_capacity(
    deployment: Deployment,
    scheduler: SchedulerKind | str,
    dataset: DatasetSpec,
    slo: SLOSpec,
    scale: Scale,
    config: ServingConfig | None = None,
    strict: bool | None = None,
    qps_hint: float = 0.5,
    min_load_duration: float = MIN_LOAD_DURATION,
    exec_model=None,
) -> CapacityResult:
    """Search the maximum sustainable QPS for one configuration.

    Pass ``exec_model`` to supply (and afterwards inspect) the model
    shared by every probe — e.g. a ``CachedExecutionModel`` whose hit
    counters a caller wants to read back.
    """
    if config is None:
        if strict is None:
            raise ValueError("pass either config or strict")
        config = serving_config_for(deployment, scheduler, strict)

    # One (possibly memoized) execution model serves every probe: the
    # model's inputs are immutable, so later probes run on the warm
    # cache earlier probes populated.
    if exec_model is None:
        exec_model = execution_model_for(deployment, config)

    def run_at_qps(qps: float):
        num_requests = max(scale.num_requests, int(qps * min_load_duration))
        trace = generate_requests(
            dataset, num_requests=num_requests, qps=qps, seed=scale.seed
        )
        _, metrics = simulate(deployment, config, trace, exec_model=exec_model)
        return metrics

    return find_capacity(
        run_at_qps,
        slo,
        rel_tol=scale.capacity_rel_tol,
        max_probes=scale.capacity_max_probes,
        qps_hint=qps_hint,
    )


def capacity_cell(
    deployment: Deployment,
    scheduler: SchedulerKind | str,
    dataset: DatasetSpec,
    strict: bool,
    scale: Scale,
    qps_hint: float = 0.5,
) -> CapacityCell:
    """Convenience wrapper returning a flat result row.

    This is the legacy serial path — one fresh, cold execution model
    per cell.  Grids should go through :func:`run_capacity_cells`.
    """
    slo = derived_slo(deployment.execution_model(), strict)
    result = measure_capacity(
        deployment, scheduler, dataset, slo, scale, strict=strict, qps_hint=qps_hint
    )
    return CapacityCell(
        deployment=deployment.label,
        scheduler=scheduler_name(scheduler),
        dataset=dataset.name,
        slo_name=slo.name,
        slo_p99_tbt=slo.p99_tbt,
        capacity_qps=result.capacity_qps,
        num_probes=result.num_probes,
    )


# ----------------------------------------------------------------------
# Sweep-engine grid execution
# ----------------------------------------------------------------------
# Warm-start hints below this are considered degenerate (an anchor that
# measured ~zero capacity says nothing useful about its neighbours).
MIN_WARM_HINT = 1e-3


@dataclass(frozen=True)
class CapacityCellSpec:
    """Everything one grid cell needs, picklable for worker processes.

    Either ``strict`` (SLO and config derived the §5.1 way) or both
    ``config`` and ``slo`` (explicit, e.g. Fig. 12's variants) must be
    given.  ``group`` names the warm-start neighbourhood — cells with
    equal groups seed each other; it defaults to (deployment, dataset).
    ``variant`` is a display name for figures that label cells by
    something other than the scheduler.
    """

    deployment: Deployment
    scheduler: SchedulerKind | str
    dataset: DatasetSpec
    scale: Scale
    strict: bool | None = None
    config: ServingConfig | None = None
    slo: SLOSpec | None = None
    qps_hint: float = 0.5
    group: tuple[str, ...] = ()
    variant: str | None = None
    hinted: bool = False  # set by the wave planner, not by callers

    def __post_init__(self) -> None:
        if self.strict is None and (self.config is None or self.slo is None):
            raise ValueError("pass strict, or both config and slo")
        if self.qps_hint <= 0:
            raise ValueError(f"qps_hint must be positive, got {self.qps_hint}")

    @property
    def group_key(self) -> tuple[str, ...]:
        if self.group:
            return self.group
        return (self.deployment.label, self.dataset.name)


def cell_features(spec: CapacityCellSpec) -> dict[str, Any]:
    """The surrogate fingerprint of one cell (:mod:`repro.perf.surrogate`).

    Everything that determines a cell's capacity, flattened to scalars:
    the same spec always maps to the same features, so a rerun hits the
    store's exact-replay tier, while grids over schedulers/SLOs share
    observations through the ratio-transfer tier.
    """
    deployment = spec.deployment
    config = spec.config
    if config is None:
        config = serving_config_for(deployment, spec.scheduler, spec.strict)
    slo = spec.slo
    if slo is None:
        slo = derived_slo(deployment.execution_model(), spec.strict)
    return {
        "model": deployment.model.name,
        "gpu": deployment.gpu.name,
        "tp": deployment.parallel.tensor_parallel,
        "pp": deployment.parallel.pipeline_parallel,
        "scheduler": scheduler_name(spec.scheduler),
        "token_budget": config.token_budget,
        "max_batch_size": config.max_batch_size,
        "dataset": spec.dataset.name,
        "slo": slo.name,
        "p99_tbt": slo.p99_tbt,
        "num_requests": spec.scale.num_requests,
        "seed": spec.scale.seed,
        "rel_tol": spec.scale.capacity_rel_tol,
    }


@dataclass(frozen=True)
class CellOutcome:
    """One executed grid cell: its figure row plus telemetry."""

    cell: CapacityCell
    variant: str | None
    qps_hint: float
    hinted: bool
    num_bracket_probes: int
    num_bisect_probes: int
    seconds: float
    worker_pid: int
    cache_source: str
    loaded_entries: int
    merged_entries: int
    probe_rows: list[dict[str, Any]] = field(default_factory=list)
    cache_row: dict[str, Any] = field(default_factory=dict)
    # Set by run_capacity_cells from the sweep report, not by the worker:
    resumed: bool = False  # replayed from the run ledger (a "ledger hit")
    attempt: int = 0       # >0 = the cell survived that many retries


def run_capacity_cell(spec: CapacityCellSpec) -> CellOutcome:
    """Execute one cell (module-level: the sweep engine pickles this).

    The execution model comes from the runtime's per-process registry —
    warm from the persistent disk cache and from every cell this
    process already ran — and new entries are merged back afterwards.
    """
    deployment = spec.deployment
    config = spec.config
    if config is None:
        config = serving_config_for(deployment, spec.scheduler, spec.strict)
    slo = spec.slo
    if slo is None:
        slo = derived_slo(deployment.execution_model(), spec.strict)

    lease = shared_execution_model(deployment, config)
    cached = isinstance(lease.exec_model, CachedExecutionModel)
    stats_before = lease.exec_model.cache_stats if cached else None

    start = time.perf_counter()
    result = measure_capacity(
        deployment,
        spec.scheduler,
        spec.dataset,
        slo,
        spec.scale,
        config=config,
        qps_hint=spec.qps_hint,
        exec_model=lease.exec_model,
    )
    seconds = time.perf_counter() - start
    merged = persist_execution_model(lease.exec_model)

    cache_row: dict[str, Any] = {}
    if cached:
        after = lease.exec_model.cache_stats
        # Per-cell deltas: the model is shared across cells, so the raw
        # counters are cumulative over this worker's lifetime.
        cache_row = {
            "cache_hits": after.hits - stats_before.hits,
            "cache_misses": after.misses - stats_before.misses,
            "cache_work_hits": after.work_hits - stats_before.work_hits,
            "cache_work_misses": after.work_misses - stats_before.work_misses,
        }

    labels = {
        "deployment": deployment.label,
        "scheduler": scheduler_name(spec.scheduler),
        "dataset": spec.dataset.name,
        "slo": slo.name,
        "variant": spec.variant,
    }
    return CellOutcome(
        cell=CapacityCell(
            deployment=deployment.label,
            scheduler=scheduler_name(spec.scheduler),
            dataset=spec.dataset.name,
            slo_name=slo.name,
            slo_p99_tbt=slo.p99_tbt,
            capacity_qps=result.capacity_qps,
            num_probes=result.num_probes,
        ),
        variant=spec.variant,
        qps_hint=spec.qps_hint,
        hinted=spec.hinted,
        num_bracket_probes=result.num_bracket_probes,
        num_bisect_probes=result.num_bisect_probes,
        seconds=seconds,
        worker_pid=os.getpid(),
        cache_source=lease.source,
        loaded_entries=lease.loaded_entries,
        merged_entries=merged,
        probe_rows=capacity_probe_rows(result, **labels),
        cache_row=cache_row,
    )


def plan_waves(
    specs: list[CapacityCellSpec],
) -> tuple[list[tuple[int, CapacityCellSpec]], list[int]]:
    """Split a grid into (anchor wave, follower indices).

    The first cell of each warm-start group — first in the caller's
    canonical order — anchors the group; everything else follows,
    hinted by its anchor's measured capacity.  A pure function of the
    spec list, so serial and parallel runs execute the same plan.
    """
    anchors: list[tuple[int, CapacityCellSpec]] = []
    followers: list[int] = []
    seen: set[tuple[str, ...]] = set()
    for index, spec in enumerate(specs):
        key = spec.group_key
        if key in seen:
            followers.append(index)
        else:
            seen.add(key)
            anchors.append((index, spec))
    return anchors, followers


def _collect_cells(
    report, positions: list[int], outcomes: list[CellOutcome | None]
) -> None:
    """File a wave's completed cells by task index (ledger-resume and
    interrupted reports may cover only a subset of the wave)."""
    for task_outcome in report.outcomes:
        cell_outcome = replace(
            task_outcome.value,
            resumed=task_outcome.resumed,
            attempt=task_outcome.attempt,
        )
        outcomes[positions[task_outcome.index]] = cell_outcome


def run_capacity_cells(
    specs: list[CapacityCellSpec],
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    chaos=None,
    strict: bool = True,
    reports: list | None = None,
    surrogate: bool | None = None,
    surrogate_store: SurrogateStore | None = None,
) -> list[CellOutcome]:
    """Run a capacity grid through the sweep engine, warm-started.

    Wave 0 runs one anchor cell per warm-start group in parallel; each
    remaining cell then runs with its bracket seeded by its group
    anchor's measured capacity (falling back to the spec's static hint
    when the anchor found no capacity).  Outcomes come back in the
    order of ``specs`` regardless of ``jobs``.

    With ``surrogate`` (default: ``REPRO_SURROGATE``), a
    :class:`~repro.perf.surrogate.SurrogateStore` — persisted at
    ``cache_dir/surrogate.json`` when a cache directory is given, else
    in-memory — predicts starting brackets from previously measured
    cells.  Predictions seed anchors before wave 0 and take precedence
    over anchor hints for followers; because every ``find_capacity``
    probe lands on the same global QPS ladder, the seeds change probe
    counts only, never the measured capacities.  New observations are
    recorded and persisted once the grid completes (never after an
    interrupt, so a resumed run re-predicts from the same store state
    and re-derives identical follower specs).

    With ``run_dir``, each wave journals to its own fingerprint-keyed
    ledger and ``resume=True`` replays completed cells bit-identically:
    a resumed anchor re-seeds its followers from the ledger, so the
    follower wave's specs — and therefore *its* ledger fingerprint —
    match the original run's.  An interrupted wave returns the cells
    completed so far (and skips the follower wave); quarantined cells
    raise :class:`repro.runtime.SweepFailedError` unless
    ``strict=False``, which drops them from the result instead.
    Append-only sweep reports land in ``reports`` when given, for
    telemetry (:func:`repro.telemetry.sweep.sweep_run_rows`).
    """
    anchors, followers = plan_waves(specs)
    outcomes: list[CellOutcome | None] = [None] * len(specs)
    options = dict(
        jobs=jobs,
        cache_dir=cache_dir,
        run_dir=run_dir,
        resume=resume,
        task_timeout=task_timeout,
        max_retries=max_retries,
        chaos=chaos,
        strict=strict,
    )

    if surrogate is None:
        surrogate = surrogate_from_env()
    store: SurrogateStore | None = None
    features: list[dict[str, Any]] = []
    if surrogate:
        store = surrogate_store
        if store is None:
            store_dir = Path(cache_dir) if cache_dir is not None else cache_dir_from_env()
            store = SurrogateStore(
                store_dir / "surrogate.json" if store_dir is not None else None
            )
        features = [cell_features(spec) for spec in specs]

    def predicted_hint(index: int) -> float | None:
        if store is None:
            return None
        guess = store.predict(features[index])
        if guess is None or guess <= MIN_WARM_HINT:
            return None
        return guess

    # Wave 0: anchors, surrogate-seeded when possible, else their
    # static hints.
    anchor_specs = []
    for index, spec in anchors:
        guess = predicted_hint(index)
        if guess is not None:
            spec = replace(spec, qps_hint=guess, hinted=True)
        anchor_specs.append(spec)
    report = map_tasks(run_capacity_cell, anchor_specs, **options)
    if reports is not None:
        reports.append(report)
    _collect_cells(report, [index for index, _ in anchors], outcomes)
    hint_by_group: dict[tuple[str, ...], float] = {}
    for index, spec in anchors:
        outcome = outcomes[index]
        if outcome is not None and outcome.cell.capacity_qps > MIN_WARM_HINT:
            hint_by_group[spec.group_key] = outcome.cell.capacity_qps

    # Wave 1: everything else, hinted by the surrogate when it knows
    # the cell (exact replays beat cross-scheduler anchor transfer),
    # else by its group's anchor.  Skipped after an interrupt: the
    # anchors' ledger already holds wave 0, and the resumed run will
    # re-derive identical hints from it.
    if followers and not report.interrupted:
        hinted_specs = []
        for index in followers:
            spec = specs[index]
            hint = predicted_hint(index)
            if hint is None:
                hint = hint_by_group.get(spec.group_key)
            if hint is not None:
                spec = replace(spec, qps_hint=hint, hinted=True)
            hinted_specs.append(spec)
        report = map_tasks(run_capacity_cell, hinted_specs, **options)
        if reports is not None:
            reports.append(report)
        _collect_cells(report, followers, outcomes)

    # Feed the surrogate only from a completed grid: predictions above
    # were made against the store as loaded, so an interrupted run that
    # resumes sees the same store state and rebuilds identical waves.
    if store is not None and not report.interrupted:
        for index, outcome in enumerate(outcomes):
            if outcome is not None:
                store.observe(features[index], outcome.cell.capacity_qps)
        store.save()

    return [outcome for outcome in outcomes if outcome is not None]
