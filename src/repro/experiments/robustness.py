"""Robustness experiments: burstiness and preemption policy.

The paper evaluates under Poisson arrivals; production traffic is
burstier.  ``run_burstiness_sweep`` varies the inter-arrival
coefficient of variation (Gamma arrivals; cv=1 recovers Poisson) and
checks whether Sarathi's stall-free tail survives bursts.

``run_preemption_policy_comparison`` contrasts vLLM's two eviction
policies — recompute vs swap — under KV-cache pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, build_engine, clone_requests
from repro.experiments.common import DEFAULT, Scale, mistral_deployment, yi_deployment
from repro.memory.block_manager import PagedBlockManager
from repro.metrics.summary import summarize
from repro.types import SchedulerKind
from repro.workload.arrival import GammaArrivals
from repro.workload.datasets import SHAREGPT4, generate_requests


@dataclass(frozen=True)
class BurstinessPoint:
    """One (scheduler, cv) probe."""

    scheduler: str
    cv: float
    p99_tbt: float
    max_tbt: float
    median_ttft: float


def run_burstiness_sweep(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 1.5,
    cvs: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    token_budget: int = 512,
) -> list[BurstinessPoint]:
    """P99/max TBT across arrival burstiness for vLLM and Sarathi."""
    deployment = deployment or mistral_deployment()
    points = []
    for cv in cvs:
        trace = generate_requests(
            SHAREGPT4,
            num_requests=scale.num_requests,
            arrivals=GammaArrivals(qps=qps, cv=cv),
            seed=scale.seed,
        )
        for kind in (SchedulerKind.VLLM, SchedulerKind.SARATHI):
            config = ServingConfig(scheduler=kind, token_budget=token_budget)
            engine = build_engine(deployment, config)
            metrics = summarize(engine.run(clone_requests(trace)))
            points.append(
                BurstinessPoint(
                    scheduler=kind.value,
                    cv=cv,
                    p99_tbt=metrics.p99_tbt,
                    max_tbt=metrics.max_tbt,
                    median_ttft=metrics.median_ttft,
                )
            )
    return points


@dataclass(frozen=True)
class PreemptionPolicyPoint:
    """One eviction policy's behaviour under memory pressure."""

    policy: str
    p99_tbt: float
    median_ttft: float
    makespan: float
    num_preemptions: int
    num_swap_outs: int
    redone_prefill_tokens: int


def run_preemption_policy_comparison(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 1.0,
    kv_capacity_tokens: int = 24576,
) -> list[PreemptionPolicyPoint]:
    """vLLM with recompute vs swap eviction under a squeezed KV cache.

    The KV capacity is set far below the deployment's natural size so
    both policies must evict; recompute re-prefills evicted requests
    (wasted compute, TTFT-shaped tail hits) while swap pays PCIe
    transfers but keeps the progress.
    """
    deployment = deployment or yi_deployment()
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    points = []
    for policy in ("recompute", "swap"):
        config = ServingConfig(scheduler=SchedulerKind.VLLM, preemption_mode=policy)
        engine = build_engine(deployment, config)
        engine.scheduler.memory = PagedBlockManager(
            kv_capacity_tokens, block_size=16
        )
        result = engine.run(clone_requests(trace))
        metrics = summarize(result)
        base_prefill = sum(r.prompt_len for r in result.requests)
        recorded = sum(r.num_prefill_tokens for r in result.records)
        points.append(
            PreemptionPolicyPoint(
                policy=policy,
                p99_tbt=metrics.p99_tbt,
                median_ttft=metrics.median_ttft,
                makespan=metrics.makespan,
                num_preemptions=engine.scheduler.num_preemptions,
                num_swap_outs=engine.scheduler.num_swap_outs,
                redone_prefill_tokens=recorded - base_prefill,
            )
        )
    return points
