"""Figure 11: serving capacity of the pipeline-parallel deployments.

LLaMA2-70B (8×A40, TP4-PP2) and Falcon-180B (2×4 A100, TP4-PP2 over
100G Ethernet).  Sarathi's uniform batches avoid pipeline bubbles on
top of avoiding generation stalls, so its gains are largest here
(up to 5.6× end-to-end in the paper).
"""

from __future__ import annotations

from repro.api import Deployment
from repro.experiments.capacity_runner import CapacityCell, run_capacity_cells
from repro.experiments.common import (
    DEFAULT,
    Scale,
    falcon_deployment,
    llama70_deployment,
)
from repro.experiments.fig10_capacity_small import (
    CAPACITY_SCHEDULERS,
    capacity_grid_specs,
)
from repro.types import SchedulerKind
from repro.workload.datasets import ARXIV_SUMMARIZATION, SHAREGPT4, DatasetSpec

_QPS_HINTS = {
    ("LLaMA2-70B", "openchat_sharegpt4"): 0.5,
    ("LLaMA2-70B", "arxiv_summarization"): 0.2,
    ("Falcon-180B", "openchat_sharegpt4"): 0.4,
    ("Falcon-180B", "arxiv_summarization"): 0.15,
}


def run_capacity_grid_pp(
    scale: Scale = DEFAULT,
    deployments: tuple[Deployment, ...] | None = None,
    datasets: tuple[DatasetSpec, ...] = (SHAREGPT4, ARXIV_SUMMARIZATION),
    schedulers: tuple[SchedulerKind, ...] = CAPACITY_SCHEDULERS,
    strict_values: tuple[bool, ...] = (True, False),
    jobs: int | None = None,
    cache_dir=None,
    run_dir=None,
    resume: bool | None = None,
) -> list[CapacityCell]:
    """The Fig. 11 grid for pipeline-parallel models."""
    if deployments is None:
        deployments = (llama70_deployment(), falcon_deployment())
    specs = capacity_grid_specs(
        scale,
        deployments,
        datasets,
        schedulers,
        strict_values,
        hints=_QPS_HINTS,
        default_hint=0.3,
    )
    outcomes = run_capacity_cells(
        specs, jobs=jobs, cache_dir=cache_dir, run_dir=run_dir, resume=resume
    )
    return [outcome.cell for outcome in outcomes]
