"""Sarathi-Serve vs disaggregated prefill/decode serving.

The paper leaves this quantitative comparison to future work (§6) and
predicts the qualitative outcome: disaggregation runs prefills at full
efficiency (better TTFT) and decodes with zero interference (clean
TBT), but must migrate every request's KV cache between pools and
leaves prefill-replica HBM idle.  We compare at equal GPU budget:
two Sarathi replicas vs one-prefill + one-decode disaggregated pair,
over NVLink-class and Ethernet-class migration links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, clone_requests
from repro.cluster.fleet import FleetConfig, simulate_fleet
from repro.disagg.engine import DisaggregatedEngine
from repro.experiments.common import DEFAULT, Scale, mistral_deployment
from repro.hardware.catalog import ETHERNET_100G, NVLINK
from repro.hardware.interconnect import LinkSpec
from repro.metrics.summary import summarize
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests


@dataclass(frozen=True)
class DisaggPoint:
    """One system's operating point at equal GPU count."""

    system: str
    median_ttft: float
    p99_tbt: float
    makespan: float
    num_migrations: int
    total_migration_time: float


def run_disagg_comparison(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    qps: float = 3.0,
    token_budget: int = 512,
    migration_links: tuple[LinkSpec, ...] = (NVLINK, ETHERNET_100G),
) -> list[DisaggPoint]:
    """Two Sarathi replicas vs a 1P+1D disaggregated pair."""
    deployment = deployment or mistral_deployment()
    trace = generate_requests(
        SHAREGPT4, num_requests=scale.num_requests, qps=qps, seed=scale.seed
    )
    points = []

    config = ServingConfig(scheduler=SchedulerKind.SARATHI, token_budget=token_budget)
    _, sarathi_metrics = simulate_fleet(
        deployment, config, trace, FleetConfig(num_replicas=2)
    )
    points.append(
        DisaggPoint(
            system="sarathi-2-replicas",
            median_ttft=sarathi_metrics.median_ttft,
            p99_tbt=sarathi_metrics.p99_tbt,
            makespan=sarathi_metrics.makespan,
            num_migrations=0,
            total_migration_time=0.0,
        )
    )

    for link in migration_links:
        engine = DisaggregatedEngine(
            deployment.execution_model(),
            num_prefill_replicas=1,
            num_decode_replicas=1,
            migration_link=link,
            decode_kv_capacity=deployment.kv_capacity_tokens(),
        )
        result = engine.run(clone_requests(trace))
        metrics = summarize(result)
        points.append(
            DisaggPoint(
                system=f"disagg-1P1D-{link.name}",
                median_ttft=metrics.median_ttft,
                p99_tbt=metrics.p99_tbt,
                makespan=metrics.makespan,
                num_migrations=engine.num_migrations,
                total_migration_time=engine.total_migration_time,
            )
        )
    return points
