"""Figure 3: prefill vs decode throughput as batch size grows.

Mistral-7B on one A100, prompt length 1024 for both phases.  Prefill
throughput saturates at batch size 1 (compute-bound); decode
throughput scales almost linearly with batch size (memory-bound) —
Takeaway-1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment
from repro.experiments.common import mistral_deployment
from repro.types import TokenWork

PROMPT_LEN = 1024
BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class PhaseThroughputPoint:
    """Throughput of one phase at one batch size."""

    batch_size: int
    prefill_tokens_per_s: float
    decode_tokens_per_s: float


def run_phase_throughput(
    deployment: Deployment | None = None,
    prompt_len: int = PROMPT_LEN,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
) -> list[PhaseThroughputPoint]:
    """Sweep batch size and measure per-phase throughput."""
    deployment = deployment or mistral_deployment()
    exec_model = deployment.execution_model()
    points = []
    for batch_size in batch_sizes:
        prefill_works = [
            TokenWork.prefill_chunk(prompt_len) for _ in range(batch_size)
        ]
        prefill_time = exec_model.iteration_time(prefill_works).total
        decode_time = exec_model.decode_iteration_time(batch_size, prompt_len).total
        points.append(
            PhaseThroughputPoint(
                batch_size=batch_size,
                prefill_tokens_per_s=batch_size * prompt_len / prefill_time,
                decode_tokens_per_s=batch_size / decode_time,
            )
        )
    return points
