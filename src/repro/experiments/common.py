"""Shared plumbing for the per-figure experiment runners.

Deployment presets mirror Table 1; ``Scale`` bundles the knobs that
trade fidelity for wall-clock (request counts, search tolerance) so
benchmarks can run in minutes while still exercising every code path
the paper's full-scale experiments exercise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.api import Deployment
from repro.hardware.catalog import A40_48G, A100_80G, ETHERNET_100G
from repro.parallel.config import ParallelConfig
from repro.models.catalog import FALCON_180B, LLAMA2_70B, MISTRAL_7B, YI_34B


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs.

    ``full`` mirrors the paper's scale; ``default`` keeps every capacity
    search under a couple of minutes; ``smoke`` is for CI.
    """

    num_requests: int
    capacity_rel_tol: float
    capacity_max_probes: int
    seed: int = 0


SMOKE = Scale(num_requests=40, capacity_rel_tol=0.35, capacity_max_probes=7)
DEFAULT = Scale(num_requests=128, capacity_rel_tol=0.15, capacity_max_probes=12)
FULL = Scale(num_requests=512, capacity_rel_tol=0.08, capacity_max_probes=18)


def scale_from_env(default: Scale = DEFAULT) -> Scale:
    """Pick a scale via ``REPRO_SCALE`` (smoke|default|full)."""
    name = os.environ.get("REPRO_SCALE", "").lower()
    if name == "smoke":
        return SMOKE
    if name == "full":
        return FULL
    if name in ("", "default"):
        return default
    raise ValueError(f"unknown REPRO_SCALE {name!r} (use smoke|default|full)")


def perf_cache_from_env(default: bool = True) -> bool:
    """Whether runs memoize execution-model pricing (``REPRO_PERF_CACHE``).

    The cached path is bit-identical to the uncached one, so it is on
    by default; ``REPRO_PERF_CACHE=0`` turns it off globally, e.g. to
    time the raw analytical model.
    """
    value = os.environ.get("REPRO_PERF_CACHE", "").lower()
    if value in ("", "default"):
        return default
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"unknown REPRO_PERF_CACHE {value!r} (use 0|1)")


# ----------------------------------------------------------------------
# Table 1 deployments
# ----------------------------------------------------------------------
def mistral_deployment() -> Deployment:
    """Mistral-7B on a single A100."""
    return Deployment(model=MISTRAL_7B, gpu=A100_80G)


def yi_deployment() -> Deployment:
    """Yi-34B on two A100s (TP2, NVLink)."""
    return Deployment(
        model=YI_34B, gpu=A100_80G, parallel=ParallelConfig(tensor_parallel=2)
    )


def llama70_deployment() -> Deployment:
    """LLaMA2-70B on eight A40s (TP4-PP2, PCIe-class pipe via Ethernet)."""
    return Deployment(
        model=LLAMA2_70B,
        gpu=A40_48G,
        parallel=ParallelConfig(
            tensor_parallel=4, pipeline_parallel=2, pp_link=ETHERNET_100G
        ),
    )


def falcon_deployment() -> Deployment:
    """Falcon-180B on 2×4 A100s (TP4 in-node, PP2 over 100G Ethernet)."""
    return Deployment(
        model=FALCON_180B,
        gpu=A100_80G,
        parallel=ParallelConfig(
            tensor_parallel=4, pipeline_parallel=2, pp_link=ETHERNET_100G
        ),
    )


def falcon_tp8_cross_node_deployment() -> Deployment:
    """Falcon-180B with 8-way TP spanning two nodes (Fig. 13's strawman).

    A TP8 ring across two 4-GPU nodes funnels four GPU pairs' traffic
    through each node's single 100G NIC, so the effective per-GPU
    cross-node bandwidth is a quarter of the link's, with extra
    software latency from multi-rail contention.
    """
    from repro.hardware.interconnect import LinkSpec

    shared_nic = LinkSpec(
        name="Ethernet-100G-shared-x4",
        bandwidth=ETHERNET_100G.bandwidth / 4,
        latency=2 * ETHERNET_100G.latency,
    )
    return Deployment(
        model=FALCON_180B,
        gpu=A100_80G,
        parallel=ParallelConfig(tensor_parallel=8, tp_link=shared_nic),
    )


# Token budgets the paper uses per SLO regime (§5.1).
STRICT_TOKEN_BUDGET = 512
RELAXED_TOKEN_BUDGET = 2048
LLAMA_RELAXED_TOKEN_BUDGET = 1536


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table for bench output (no external dependencies)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
