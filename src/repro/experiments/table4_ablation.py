"""Table 4: each technique in isolation vs the combination.

Yi-34B (TP2), token budget 1024, 128 requests per dataset.  The
paper's finding: *hybrid-batching-only* keeps TTFT low but long
prompts still stall decodes (high P99 TBT); *chunked-prefills-only*
bounds TBT but inflates TTFT (chunks are slightly inefficient and
don't ride along with decodes); together they dominate on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, simulate
from repro.experiments.common import DEFAULT, Scale, yi_deployment
from repro.types import SchedulerKind
from repro.workload.datasets import (
    ARXIV_SUMMARIZATION,
    SHAREGPT4,
    DatasetSpec,
    generate_requests,
)

ABLATION_TOKEN_BUDGET = 1024

ABLATION_SCHEDULERS = (
    SchedulerKind.HYBRID_ONLY,
    SchedulerKind.CHUNKED_ONLY,
    SchedulerKind.SARATHI,
)

# Load points chosen near (but under) Sarathi's capacity so differences
# show without the queue blowing up.
_DATASET_QPS = {
    "openchat_sharegpt4": 0.7,
    "arxiv_summarization": 0.25,
}


@dataclass(frozen=True)
class AblationRow:
    """One (scheduler, dataset) cell of Table 4."""

    scheduler: str
    dataset: str
    p50_ttft: float
    p99_tbt: float


def run_ablation(
    scale: Scale = DEFAULT,
    deployment: Deployment | None = None,
    datasets: tuple[DatasetSpec, ...] = (SHAREGPT4, ARXIV_SUMMARIZATION),
    token_budget: int = ABLATION_TOKEN_BUDGET,
) -> list[AblationRow]:
    """Reproduce Table 4's TTFT/TBT grid."""
    deployment = deployment or yi_deployment()
    rows = []
    for dataset in datasets:
        qps = _DATASET_QPS.get(dataset.name, 0.5)
        for kind in ABLATION_SCHEDULERS:
            config = ServingConfig(scheduler=kind, token_budget=token_budget)
            trace = generate_requests(
                dataset, num_requests=scale.num_requests, qps=qps, seed=scale.seed
            )
            _, metrics = simulate(deployment, config, trace)
            rows.append(
                AblationRow(
                    scheduler=kind.value,
                    dataset=dataset.name,
                    p50_ttft=metrics.median_ttft,
                    p99_tbt=metrics.p99_tbt,
                )
            )
    return rows
