"""Profiled iteration-cost tables (the Vidur approach, §4.3).

A real deployment cannot evaluate an analytical model per iteration —
it profiles a grid of batch shapes once and interpolates at runtime.
``ProfiledIterationTable`` reproduces that workflow against this
repo's execution model: build once over a (decode batch size × decode
context × prefill-chunk tokens) grid, then answer ``works → seconds``
queries by trilinear interpolation.  ``as_cost_fn()`` plugs straight
into :class:`repro.core.dynamic.DynamicSarathiScheduler`.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from repro.perf.iteration import ExecutionModel
from repro.types import TokenWork

DEFAULT_DECODE_BS_GRID = (0, 1, 4, 16, 48, 128)
DEFAULT_CONTEXT_GRID = (64, 512, 2048, 8192)
DEFAULT_PREFILL_GRID = (0, 128, 512, 1024, 2048, 4096, 8192)


class ProfiledIterationTable:
    """Tabulated hybrid-iteration latency with multilinear lookup."""

    def __init__(
        self,
        decode_bs_grid: Sequence[int],
        context_grid: Sequence[int],
        prefill_grid: Sequence[int],
        table: np.ndarray,
    ) -> None:
        self._check_grid(decode_bs_grid, "decode_bs_grid")
        self._check_grid(context_grid, "context_grid")
        self._check_grid(prefill_grid, "prefill_grid")
        expected = (len(decode_bs_grid), len(context_grid), len(prefill_grid))
        if table.shape != expected:
            raise ValueError(f"table shape {table.shape} != grid shape {expected}")
        self.decode_bs_grid = list(decode_bs_grid)
        self.context_grid = list(context_grid)
        self.prefill_grid = list(prefill_grid)
        self.table = table

    @staticmethod
    def _check_grid(grid: Sequence[int], name: str) -> None:
        if len(grid) < 2:
            raise ValueError(f"{name} needs at least two points")
        if list(grid) != sorted(set(grid)):
            raise ValueError(f"{name} must be strictly increasing")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        exec_model: ExecutionModel,
        decode_bs_grid: Sequence[int] = DEFAULT_DECODE_BS_GRID,
        context_grid: Sequence[int] = DEFAULT_CONTEXT_GRID,
        prefill_grid: Sequence[int] = DEFAULT_PREFILL_GRID,
    ) -> "ProfiledIterationTable":
        """One-time profiling pass over the grid (|grid| model calls)."""
        table = np.zeros(
            (len(decode_bs_grid), len(context_grid), len(prefill_grid))
        )
        for i, bs in enumerate(decode_bs_grid):
            for j, ctx in enumerate(context_grid):
                for k, chunk in enumerate(prefill_grid):
                    works = [TokenWork.decode(ctx) for _ in range(bs)]
                    if chunk > 0:
                        works.append(
                            TokenWork.prefill_chunk(
                                chunk, past_len=chunk, is_last=False
                            )
                        )
                    if works:
                        table[i, j, k] = exec_model.iteration_time(works).total
        return cls(decode_bs_grid, context_grid, prefill_grid, table)

    # ------------------------------------------------------------------
    def predict(self, works: Sequence[TokenWork]) -> float:
        """Interpolated latency of a batch described by its works.

        The batch is summarized by (number of decodes, their mean
        context, total prefill tokens) — the same shape descriptor the
        profiling grid spans.  Values outside the grid clamp to the
        edge (profiling covers the scheduler's operating envelope).
        """
        if not works:
            return 0.0
        decode_contexts = [w.past_len for w in works if not w.is_prefill]
        num_decodes = len(decode_contexts)
        mean_context = (
            sum(decode_contexts) / num_decodes if num_decodes else self.context_grid[0]
        )
        prefill_tokens = sum(w.num_tokens for w in works if w.is_prefill)
        return self._interpolate(num_decodes, mean_context, prefill_tokens)

    def as_cost_fn(self):
        """A ``works -> seconds`` oracle for the dynamic scheduler."""
        return self.predict

    # ------------------------------------------------------------------
    def _interpolate(self, bs: float, ctx: float, chunk: float) -> float:
        i0, i1, ti = self._bracket(self.decode_bs_grid, bs)
        j0, j1, tj = self._bracket(self.context_grid, ctx)
        k0, k1, tk = self._bracket(self.prefill_grid, chunk)
        total = 0.0
        for ii, wi in ((i0, 1 - ti), (i1, ti)):
            for jj, wj in ((j0, 1 - tj), (j1, tj)):
                for kk, wk in ((k0, 1 - tk), (k1, tk)):
                    weight = wi * wj * wk
                    if weight:
                        total += weight * self.table[ii, jj, kk]
        return float(total)

    @staticmethod
    def _bracket(grid: list[int], value: float) -> tuple[int, int, float]:
        """Indices spanning ``value`` plus the interpolation fraction."""
        if value <= grid[0]:
            return 0, 0, 0.0
        if value >= grid[-1]:
            last = len(grid) - 1
            return last, last, 0.0
        hi = bisect_right(grid, value)
        lo = hi - 1
        span = grid[hi] - grid[lo]
        frac = (value - grid[lo]) / span
        return lo, hi, frac

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return int(np.prod(self.table.shape))
