"""Roofline primitives: ``T = max(T_math, T_mem)`` and tile effects.

The paper's cost analysis (§3.1) models every operator as the maximum
of its math time and its memory-fetch time.  Operators below the
device's ridge intensity are memory-bound (decode), above it they are
compute-bound (prefill).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class OpCost:
    """Resolved cost of one operator."""

    time: float
    math_time: float
    mem_time: float

    @property
    def is_memory_bound(self) -> bool:
        return self.mem_time >= self.math_time


def op_time(
    gpu: GPUSpec,
    flops: float,
    num_bytes: float,
    compute_efficiency: float,
    memory_efficiency: float,
    ramped_compute_efficiency: float | None = None,
) -> OpCost:
    """Roofline time of an operator overlapping math with memory fetch.

    ``ramped_compute_efficiency`` (≤ ``compute_efficiency``) models
    SM under-utilization at small problem sizes.  Under-utilized math
    only costs time when compute is the binding resource — a skinny
    memory-bound GEMM streams weights at full bandwidth regardless —
    so the ramped time is blended in proportionally to how
    compute-bound the operator is, which keeps the transition smooth.
    """
    math_time = gpu.math_time(flops, compute_efficiency)
    mem_time = gpu.mem_time(num_bytes, memory_efficiency)
    if ramped_compute_efficiency is not None and flops > 0:
        ramped_time = gpu.math_time(flops, ramped_compute_efficiency)
        compute_boundness = math_time / (math_time + mem_time)
        math_time = math_time + (ramped_time - math_time) * compute_boundness
    return OpCost(time=max(math_time, mem_time), math_time=math_time, mem_time=mem_time)


def tile_quantized(num_tokens: int, tile: int) -> int:
    """Round the token dimension up to the effective GPU matmul tile.

    GPUs pad partial tiles with wasted thread blocks, so a 257-token
    GEMM costs as much math as a 384-token one on a 128-tile device
    (§4.3 tile-quantization).  Very skinny GEMMs are served by smaller
    tile shapes, so the effective tile never exceeds the next power of
    two of the token count — a 32-row decode GEMM is not padded to 128.
    """
    if num_tokens <= 0:
        return 0
    effective_tile = min(tile, _next_power_of_two(num_tokens))
    return ((num_tokens + effective_tile - 1) // effective_tile) * effective_tile


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def arithmetic_intensity(flops: float, num_bytes: float) -> float:
    """FLOPs performed per byte fetched (Fig. 5's y-axis)."""
    if num_bytes <= 0:
        raise ValueError("num_bytes must be positive")
    return flops / num_bytes
