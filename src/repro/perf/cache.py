"""Memoized execution model: exact-key caching of iteration pricing.

Capacity searches, SLO sweeps and the Table-4 ablations evaluate
thousands of near-identical batch compositions per run, and the
analytical roofline model re-derives every one of them from scratch.
``CachedExecutionModel`` wraps an :class:`ExecutionModel` with two
memoization tiers, both keyed on values that fully determine the
result (the wrapped model's constants are immutable per run, so
entries never need invalidating):

* **batch tier** — the canonical batch signature (every work's token
  count, KV-context length, phase and ``emits_token`` flag, plus the
  first/last-stage flags) maps straight to the finished
  :class:`IterationTime`;
* **component tier** — on a batch-tier miss, the per-work attention
  time, the linear time (a function of total/logit token counts only)
  and the "others"/TP-communication times (functions of the total
  token count only) are memoized individually.  Real workloads repeat
  component keys far more often than whole batch compositions (decode
  contexts recur across requests and probes), so even cold batches are
  mostly assembled from warm parts.

Results are **bit-identical** to the uncached model: cache hits replay
previously computed floats, and misses recompute each component with
the same calls in the same summation order the uncached path uses.

Both tiers are FIFO-bounded so long multitenant runs cannot grow the
cache without limit; hit/miss/eviction counters are exposed as
:class:`CacheStats` and surfaced through ``repro.telemetry``.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass, field

from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.parallel.comm import pp_send_time, tp_comm_time
from repro.parallel.config import ParallelConfig
from repro.perf.calibration import Calibration
from repro.perf.iteration import ExecutionModel
from repro.types import IterationTime, TokenWork, ZERO_TIME

# Roomy enough that a full capacity search never evicts (a smoke sweep
# produces ~30k distinct batch signatures), small enough that a day-long
# multitenant run stays bounded.
DEFAULT_MAX_ENTRIES = 1 << 17

BatchSignature = tuple[bool, bool, tuple[tuple[int, int, bool, bool], ...]]

# Bump when the cache key/value layout changes: snapshots carry the
# version, and loaders reject mismatching ones instead of replaying
# entries computed under different semantics.
SNAPSHOT_VERSION = 1


def execution_fingerprint(
    model: ModelConfig,
    gpu: GPUSpec,
    parallel: ParallelConfig,
    calibration: Calibration,
) -> str:
    """Stable hash of everything that determines cached values.

    Two execution models with equal fingerprints produce bit-identical
    pricing, so their cache entries are interchangeable — across
    processes, runs and machines.  The hash covers every field of the
    four configuration dataclasses (recursively, so link specs and
    enum members are included) plus the snapshot schema version.
    """

    def canonical(value):
        if isinstance(value, enum.Enum):
            return value.value
        raise TypeError(f"unhashable config field {value!r}")

    payload = {
        "snapshot_version": SNAPSHOT_VERSION,
        "model": asdict(model),
        "gpu": asdict(gpu),
        "parallel": asdict(parallel),
        "calibration": asdict(calibration),
    }
    blob = json.dumps(payload, sort_keys=True, default=canonical)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


@dataclass
class CacheSnapshot:
    """A serializable copy of one :class:`CachedExecutionModel`'s tiers.

    Snapshots are what the persistent disk cache stores and what worker
    processes exchange: plain dicts of hashable keys to floats (or
    :class:`IterationTime` tuples), tagged with the owning model's
    fingerprint so entries are never replayed under a different
    configuration.
    """

    fingerprint: str
    version: int = SNAPSHOT_VERSION
    batch: dict[BatchSignature, IterationTime] = field(default_factory=dict)
    work: dict[tuple[int, int, bool], float] = field(default_factory=dict)
    linear: dict[tuple[int, int], float] = field(default_factory=dict)
    token: dict[int, tuple[float, float]] = field(default_factory=dict)
    send: dict[int, float] = field(default_factory=dict)

    @property
    def num_entries(self) -> int:
        return (
            len(self.batch)
            + len(self.work)
            + len(self.linear)
            + len(self.token)
            + len(self.send)
        )

    def merge(self, other: "CacheSnapshot") -> int:
        """Union ``other``'s entries into this snapshot.

        Both snapshots must share a fingerprint, which guarantees any
        overlapping keys hold bit-identical values — so merge order
        cannot change the result.  Returns the number of new entries.
        """
        if other.fingerprint != self.fingerprint:
            raise ValueError(
                f"cannot merge snapshot {other.fingerprint} into "
                f"{self.fingerprint}: fingerprints differ"
            )
        if other.version != self.version:
            raise ValueError(
                f"cannot merge snapshot version {other.version} into "
                f"version {self.version}"
            )
        before = self.num_entries
        self.batch.update(other.batch)
        self.work.update(other.work)
        self.linear.update(other.linear)
        self.token.update(other.token)
        self.send.update(other.send)
        return self.num_entries - before


def batch_signature(
    works: Sequence[TokenWork],
    is_first_stage: bool = True,
    is_last_stage: bool = True,
) -> BatchSignature:
    """The canonical, order-preserving key of one stage iteration.

    Work order is part of the key: the uncached model sums per-work
    attention times in batch order, and float addition is not
    associative, so collapsing permuted batches onto one entry could
    break bit-identity.
    """
    return (
        is_first_stage,
        is_last_stage,
        tuple((w.num_tokens, w.past_len, w.is_prefill, w.emits_token) for w in works),
    )


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one :class:`CachedExecutionModel`.

    ``hits``/``misses``/``evictions``/``size`` describe the batch tier;
    ``work_hits``/``work_misses`` describe the per-work attention tier,
    where most of the wall-clock savings come from, and
    ``component_evictions`` counts evictions from *any* component tier
    (work/linear/token/send) — kept separate so batch-tier telemetry
    stays truthful.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_entries: int = DEFAULT_MAX_ENTRIES
    work_hits: int = 0
    work_misses: int = 0
    component_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def work_hit_rate(self) -> float:
        total = self.work_hits + self.work_misses
        return self.work_hits / total if total else 0.0

    def as_row(self) -> dict[str, int | float]:
        """Flat counters for telemetry tables (see ``run_counters``)."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_component_evictions": self.component_evictions,
            "cache_size": self.size,
            "cache_hit_rate": self.hit_rate,
            "cache_work_hits": self.work_hits,
            "cache_work_misses": self.work_misses,
            "cache_work_hit_rate": self.work_hit_rate,
        }


class CachedExecutionModel(ExecutionModel):
    """Drop-in :class:`ExecutionModel` with exact-key memoization.

    Construct it around an existing model::

        cached = CachedExecutionModel(deployment.execution_model())

    Everything the base class offers (derived helpers, the attributes
    engines and schedulers read) keeps working and routes through the
    cache.  One instance may be shared across every simulation of a
    capacity search — the model's inputs are immutable per run, so
    warm entries stay valid across probes and counters accumulate over
    the model's lifetime.
    """

    def __init__(
        self, inner: ExecutionModel, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        super().__init__(inner.model, inner.gpu, inner.parallel, inner.calibration)
        self.max_entries = max_entries
        self._batch_cache: dict[BatchSignature, IterationTime] = {}
        self._work_cache: dict[tuple[int, int, bool], float] = {}
        self._linear_cache: dict[tuple[int, int], float] = {}
        # num_tokens -> (others_time, tp_comm_time) and -> pp send time.
        self._token_cache: dict[int, tuple[float, float]] = {}
        self._send_cache: dict[int, float] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._component_evictions = 0
        self._work_hits = 0
        self._work_misses = 0

    # ------------------------------------------------------------------
    # Cached core interface
    # ------------------------------------------------------------------
    def stage_iteration_time(
        self,
        works: Sequence[TokenWork],
        is_first_stage: bool = True,
        is_last_stage: bool = True,
    ) -> IterationTime:
        if not works:
            return ZERO_TIME
        key = batch_signature(works, is_first_stage, is_last_stage)
        cached = self._batch_cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = self._assemble(works, is_first_stage, is_last_stage)
        batch_cache = self._batch_cache
        if len(batch_cache) >= self.max_entries:
            # FIFO eviction: dicts iterate in insertion order, so the
            # oldest signature goes first.  O(1), no per-hit bookkeeping.
            batch_cache.pop(next(iter(batch_cache)))
            self._evictions += 1
        batch_cache[key] = result
        return result

    def pipeline_send_time(self, works: Sequence[TokenWork]) -> float:
        num_tokens = sum(w.num_tokens for w in works)
        send = self._send_cache.get(num_tokens)
        if send is None:
            send = pp_send_time(self.model, self.parallel, num_tokens)
            self._bounded_put(self._send_cache, num_tokens, send)
        return send

    # ------------------------------------------------------------------
    # Introspection & maintenance
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """An immutable snapshot of the cumulative counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._batch_cache),
            max_entries=self.max_entries,
            work_hits=self._work_hits,
            work_misses=self._work_misses,
            component_evictions=self._component_evictions,
        )

    @property
    def fingerprint(self) -> str:
        """The configuration hash keying this model's persistent cache."""
        return execution_fingerprint(
            self.model, self.gpu, self.parallel, self.calibration
        )

    @property
    def num_entries(self) -> int:
        """Total entries across every tier (cheap: no snapshot copy)."""
        return (
            len(self._batch_cache)
            + len(self._work_cache)
            + len(self._linear_cache)
            + len(self._token_cache)
            + len(self._send_cache)
        )

    def export_snapshot(self) -> CacheSnapshot:
        """Copy every tier into a serializable :class:`CacheSnapshot`."""
        return CacheSnapshot(
            fingerprint=self.fingerprint,
            batch=dict(self._batch_cache),
            work=dict(self._work_cache),
            linear=dict(self._linear_cache),
            token=dict(self._token_cache),
            send=dict(self._send_cache),
        )

    def load_snapshot(self, snapshot: CacheSnapshot) -> int:
        """Pre-warm the tiers from a snapshot; returns entries added.

        Existing in-memory entries win (they are bit-identical anyway,
        since the fingerprint pins every input of the computation);
        loading never touches the hit/miss counters, so stats keep
        describing this process's own lookups.  Each tier respects
        ``max_entries``: excess snapshot entries are dropped, not
        evicted through the FIFO (no eviction counters move).
        """
        if snapshot.fingerprint != self.fingerprint:
            raise ValueError(
                f"snapshot fingerprint {snapshot.fingerprint} does not match "
                f"model fingerprint {self.fingerprint}"
            )
        if snapshot.version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {snapshot.version} unsupported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        added = 0
        for cache, entries in (
            (self._batch_cache, snapshot.batch),
            (self._work_cache, snapshot.work),
            (self._linear_cache, snapshot.linear),
            (self._token_cache, snapshot.token),
            (self._send_cache, snapshot.send),
        ):
            for key, value in entries.items():
                if len(cache) >= self.max_entries:
                    break
                if key not in cache:
                    cache[key] = value
                    added += 1
        return added

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        self._batch_cache.clear()
        self._work_cache.clear()
        self._linear_cache.clear()
        self._token_cache.clear()
        self._send_cache.clear()
        self._hits = self._misses = self._evictions = 0
        self._component_evictions = 0
        self._work_hits = self._work_misses = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _assemble(
        self, works: Sequence[TokenWork], is_first_stage: bool, is_last_stage: bool
    ) -> IterationTime:
        """Recompute one iteration from (mostly warm) component parts.

        Mirrors ``ExecutionModel.stage_iteration_time`` call for call;
        every component value is exactly the float the uncached path
        would produce, summed in the same order.
        """
        num_tokens = sum(w.num_tokens for w in works)
        num_logit_tokens = sum(1 for w in works if w.emits_token)

        linear_key = (num_tokens, num_logit_tokens if is_last_stage else 0)
        linear = self._linear_cache.get(linear_key)
        if linear is None:
            linear = self.linear.stage_time(*linear_key)
            self._bounded_put(self._linear_cache, linear_key, linear)

        work_cache = self._work_cache
        attention = 0
        for w in works:
            work_key = (w.num_tokens, w.past_len, w.is_prefill)
            work_time = work_cache.get(work_key)
            if work_time is None:
                self._work_misses += 1
                work_time = self.attention.work_time(w)
                self._bounded_put(work_cache, work_key, work_time)
            else:
                self._work_hits += 1
            attention = attention + work_time

        token_costs = self._token_cache.get(num_tokens)
        if token_costs is None:
            token_costs = (
                self._others_time(num_tokens),
                tp_comm_time(self.model, self.parallel, num_tokens, self.stage_layers),
            )
            self._bounded_put(self._token_cache, num_tokens, token_costs)
        others, comm = token_costs

        overhead = self._fixed_overhead(is_first_stage)
        return IterationTime(linear, attention, others, comm, overhead)

    def _bounded_put(self, cache: dict, key, value) -> None:
        # Component tiers only — the batch tier has its own inline FIFO
        # and its own eviction counter in ``stage_iteration_time``.
        if len(cache) >= self.max_entries:
            cache.pop(next(iter(cache)))
            self._component_evictions += 1
        cache[key] = value
