"""Surrogate capacity predictor: probe savings from past simulations.

Capacity grids re-measure closely related cells over and over — the
same deployment under two SLOs, five schedulers on one dataset, a
rerun of yesterday's grid at a new scale.  Every finished cell is a
(configuration → capacity) observation, and those observations are
cheap to keep.  :class:`SurrogateStore` keeps them (as JSON next to
the perf cache) and turns them into starting-rung predictions for
:func:`repro.metrics.capacity.find_capacity`.

The predictor is deliberately tiny — no fitted coefficients, no
training loop — because the capacity ladder makes accuracy optional:
``find_capacity`` lands every probe on the same global QPS grid no
matter where it starts, so a surrogate prediction can only change *how
many* probes the search needs, never which rung it converges to.  The
winning bracket is always verified by full simulation.  That contract
("the surrogate saves probes, never decides") means a wrong prediction
costs a few extra bracketing probes and nothing else.

Two prediction tiers, tried in order:

1. **Exact replay** — the store has this exact cell fingerprint.  The
   previous capacity seeds the walk, which confirms the boundary in
   two or three probes.
2. **Ratio transfer** — the cell is new, but its *context* (model,
   GPU, parallelism, dataset, scale) has been measured under other
   *variants* (scheduler, SLO, token budget), and the target variant
   has been measured in other contexts.  Capacity ratios between
   variants are roughly stable across contexts (a relaxed SLO buys a
   similar multiple on an A100 as on an H100), so the geometric mean
   of ``cap(ctx, v_other) * cap(ctx', v_target) / cap(ctx', v_other)``
   over every such bridge is a serviceable guess.

Both tiers iterate the store in sorted key order, so predictions are a
deterministic function of the store's contents.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "VARIANT_KEYS",
    "SurrogateStore",
    "split_features",
]

# Feature keys that name the *variant* of a cell; everything else in a
# feature dict is its *context*.  Ratio transfer holds variants fixed
# across contexts and vice versa.
VARIANT_KEYS = ("scheduler", "slo", "token_budget")

_STORE_VERSION = 1


def _canonical(features: Mapping[str, Any]) -> str:
    """A stable string key for a feature dict (sorted, JSON-encoded)."""
    return json.dumps(dict(features), sort_keys=True, separators=(",", ":"))


def split_features(
    features: Mapping[str, Any],
) -> tuple[str, str]:
    """Split a feature dict into canonical (context, variant) keys."""
    context = {k: v for k, v in features.items() if k not in VARIANT_KEYS}
    variant = {k: features[k] for k in VARIANT_KEYS if k in features}
    return _canonical(context), _canonical(variant)


class SurrogateStore:
    """Persistent map from cell features to measured capacities.

    ``path=None`` keeps the store in memory only (useful for tests and
    single-process grids without a cache directory).  Loading tolerates
    a missing or corrupt file — a surrogate store is an accelerator,
    never a correctness dependency — and :meth:`save` writes through a
    temp file + :func:`os.replace` so a crash cannot leave a truncated
    store behind.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        # canonical feature key -> (features, capacity)
        self._entries: dict[str, tuple[dict[str, Any], float]] = {}
        self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
            entries = payload["entries"]
            for row in entries:
                features = row["features"]
                capacity = float(row["capacity_qps"])
                self._entries[_canonical(features)] = (dict(features), capacity)
        except (OSError, ValueError, KeyError, TypeError):
            # A damaged store predicts nothing; observations rebuild it.
            self._entries = {}

    def observe(self, features: Mapping[str, Any], capacity_qps: float) -> None:
        """Record one measured cell (overwrites a prior observation)."""
        if capacity_qps < 0:
            raise ValueError(f"capacity_qps must be >= 0, got {capacity_qps}")
        self._entries[_canonical(features)] = (dict(features), float(capacity_qps))

    def save(self) -> None:
        """Persist atomically (no-op for a memory-only store)."""
        if self.path is None:
            return
        payload = {
            "version": _STORE_VERSION,
            "entries": [
                {"features": features, "capacity_qps": capacity}
                for _, (features, capacity) in sorted(self._entries.items())
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def predict(self, features: Mapping[str, Any]) -> float | None:
        """Predicted capacity for ``features``, or None when clueless.

        Never returns a non-positive value: a cell remembered at zero
        capacity carries no useful starting rung (the search's own
        floor handles it), so it predicts None like an unseen cell.
        """
        exact = self._entries.get(_canonical(features))
        if exact is not None:
            return exact[1] if exact[1] > 0 else None
        return self._ratio_transfer(features)

    def _ratio_transfer(self, features: Mapping[str, Any]) -> float | None:
        ctx_t, var_t = split_features(features)
        # capacities indexed by context then variant, positive only.
        table: dict[str, dict[str, float]] = {}
        for entry_features, capacity in self._entries.values():
            if capacity <= 0:
                continue
            ctx, var = split_features(entry_features)
            table.setdefault(ctx, {})[var] = capacity
        row_t = table.get(ctx_t)
        if not row_t:
            return None
        log_estimates: list[float] = []
        for ctx_o in sorted(table):
            if ctx_o == ctx_t:
                continue
            row_o = table[ctx_o]
            cap_vt = row_o.get(var_t)
            if cap_vt is None:
                continue
            for var_o in sorted(row_o):
                if var_o == var_t:
                    continue
                base = row_t.get(var_o)
                if base is None:
                    continue
                # bridge: cap(ctx_t, var_o) scaled by var_o -> var_t
                # ratio observed in ctx_o.
                log_estimates.append(
                    math.log(base) + math.log(cap_vt) - math.log(row_o[var_o])
                )
        if not log_estimates:
            return None
        prediction = math.exp(sum(log_estimates) / len(log_estimates))
        return prediction if prediction > 0 else None
