"""Persistent on-disk execution-model cache shared across processes.

The in-memory :class:`~repro.perf.cache.CachedExecutionModel` dies with
its process, so every sweep run — and every worker of a parallel sweep
— used to start cold.  This module gives cache entries a life beyond
the process: snapshots are pickled to one file per configuration
fingerprint inside a cache directory, workers load the file at startup
and merge their new entries back when a task finishes.

Guarantees and non-guarantees:

* **Correctness** — entries are keyed by the full configuration
  fingerprint (model, GPU, parallelism, calibration, schema version),
  so a loaded value is always exactly the float the loading process
  would have computed itself.  Replaying them cannot change results.
* **Durability under concurrency** — merges are read-union-replace
  with an atomic :func:`os.replace`, so readers never observe a torn
  file, and the read-union-write section is serialized by a
  per-fingerprint lockfile so two workers merging concurrently cannot
  silently drop each other's new entries (the lost-update race).  A
  crashed holder's stale lock is broken after a grace period; if the
  lock cannot be acquired within the timeout the merge proceeds
  unlocked — values are deterministic, so the worst un-serialized case
  is recomputation, never corruption.
* **Robustness** — an unreadable, truncated or version-mismatched file
  is treated as a cold cache (and overwritten by the next merge), never
  an error.
"""

from __future__ import annotations

import os
import pickle
import time
from contextlib import contextmanager
from pathlib import Path

from repro.perf.cache import CachedExecutionModel, CacheSnapshot, SNAPSHOT_VERSION

# Bump together with repro.perf.cache.SNAPSHOT_VERSION when the pickled
# layout changes; both are checked on load.
FILE_MAGIC = "repro-perf-cache"

# Merge-lock tuning: how long a merger waits for the lock before
# proceeding unlocked, how old a lock must be before it is presumed
# abandoned (its holder crashed mid-merge), and the acquisition poll.
LOCK_TIMEOUT = 10.0
STALE_LOCK_AGE = 30.0
LOCK_POLL = 0.01


class PersistentPerfCache:
    """A directory of pickled :class:`CacheSnapshot`\\ s, one per fingerprint."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        return self.cache_dir / f"perf-{fingerprint}.pkl"

    # ------------------------------------------------------------------
    # Snapshot I/O
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> CacheSnapshot | None:
        """The stored snapshot for a fingerprint, or None when cold.

        Any failure to read (missing file, truncated pickle, foreign
        payload, version drift) degrades to a cold start.
        """
        path = self.path_for(fingerprint)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(payload, dict) or payload.get("magic") != FILE_MAGIC:
            return None
        snapshot = payload.get("snapshot")
        if (
            not isinstance(snapshot, CacheSnapshot)
            or snapshot.version != SNAPSHOT_VERSION
            or snapshot.fingerprint != fingerprint
        ):
            return None
        return snapshot

    def lock_path_for(self, fingerprint: str) -> Path:
        return self.cache_dir / f"perf-{fingerprint}.lock"

    @contextmanager
    def _merge_lock(self, fingerprint: str):
        """Serialize read-union-write per fingerprint via a lockfile.

        ``O_CREAT | O_EXCL`` is atomic on every local filesystem; the
        loser polls until the winner's unlink.  Two escape hatches keep
        a crashed or wedged holder from stalling the fleet: a lock
        older than ``STALE_LOCK_AGE`` is broken (its holder died
        mid-merge), and after ``LOCK_TIMEOUT`` the merge proceeds
        unlocked — re-opening the benign lost-update window rather than
        deadlocking the sweep.
        """
        lock = self.lock_path_for(fingerprint)
        deadline = time.monotonic() + LOCK_TIMEOUT
        fd: int | None = None
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age > STALE_LOCK_AGE:
                    try:
                        lock.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    break
                time.sleep(LOCK_POLL)
        try:
            yield
        finally:
            if fd is not None:
                os.close(fd)
                try:
                    lock.unlink()
                except OSError:
                    pass

    def merge(self, snapshot: CacheSnapshot) -> int:
        """Union a snapshot into the store; returns entries added on disk.

        Read-union-replace under the per-fingerprint merge lock: the
        current file (if any) is loaded, the new snapshot's entries are
        unioned in, and the result replaces the file atomically so
        concurrent readers see either the old or the new complete
        payload.  The lock closes the lost-update race where two
        processes read the same base, each union their own entries, and
        the second ``os.replace`` silently discards the first's.
        """
        with self._merge_lock(snapshot.fingerprint):
            existing = self.load(snapshot.fingerprint)
            if existing is None:
                merged, added = snapshot, snapshot.num_entries
            else:
                merged, added = existing, existing.merge(snapshot)
            self._write(merged)
        return added

    def _write(self, snapshot: CacheSnapshot) -> Path:
        path = self.path_for(snapshot.fingerprint)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        payload = {"magic": FILE_MAGIC, "snapshot": snapshot}
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Model-level conveniences
    # ------------------------------------------------------------------
    def warm(self, model: CachedExecutionModel) -> int:
        """Pre-load a model from its fingerprint's file; entries added."""
        snapshot = self.load(model.fingerprint)
        if snapshot is None:
            return 0
        return model.load_snapshot(snapshot)

    def persist(self, model: CachedExecutionModel) -> int:
        """Merge a model's current entries back; new-on-disk entries."""
        return self.merge(model.export_snapshot())

    def fingerprints(self) -> list[str]:
        """Fingerprints present in the cache directory, sorted."""
        prefix, suffix = "perf-", ".pkl"
        return sorted(
            p.name[len(prefix):-len(suffix)]
            for p in self.cache_dir.glob(f"{prefix}*{suffix}")
        )
