"""Persistent on-disk execution-model cache shared across processes.

The in-memory :class:`~repro.perf.cache.CachedExecutionModel` dies with
its process, so every sweep run — and every worker of a parallel sweep
— used to start cold.  This module gives cache entries a life beyond
the process: snapshots are pickled to one file per configuration
fingerprint inside a cache directory, workers load the file at startup
and merge their new entries back when a task finishes.

Guarantees and non-guarantees:

* **Correctness** — entries are keyed by the full configuration
  fingerprint (model, GPU, parallelism, calibration, schema version),
  so a loaded value is always exactly the float the loading process
  would have computed itself.  Replaying them cannot change results.
* **Durability under concurrency** — merges are read-union-replace
  with an atomic :func:`os.replace`, so readers never observe a torn
  file.  Two workers merging simultaneously may each persist a union
  missing some of the other's entries; because values are deterministic
  this only costs recomputation, never correctness, and the next merge
  re-unions whatever survived.
* **Robustness** — an unreadable, truncated or version-mismatched file
  is treated as a cold cache (and overwritten by the next merge), never
  an error.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.perf.cache import CachedExecutionModel, CacheSnapshot, SNAPSHOT_VERSION

# Bump together with repro.perf.cache.SNAPSHOT_VERSION when the pickled
# layout changes; both are checked on load.
FILE_MAGIC = "repro-perf-cache"


class PersistentPerfCache:
    """A directory of pickled :class:`CacheSnapshot`\\ s, one per fingerprint."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        return self.cache_dir / f"perf-{fingerprint}.pkl"

    # ------------------------------------------------------------------
    # Snapshot I/O
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> CacheSnapshot | None:
        """The stored snapshot for a fingerprint, or None when cold.

        Any failure to read (missing file, truncated pickle, foreign
        payload, version drift) degrades to a cold start.
        """
        path = self.path_for(fingerprint)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(payload, dict) or payload.get("magic") != FILE_MAGIC:
            return None
        snapshot = payload.get("snapshot")
        if (
            not isinstance(snapshot, CacheSnapshot)
            or snapshot.version != SNAPSHOT_VERSION
            or snapshot.fingerprint != fingerprint
        ):
            return None
        return snapshot

    def merge(self, snapshot: CacheSnapshot) -> int:
        """Union a snapshot into the store; returns entries added on disk.

        Read-union-replace: the current file (if any) is loaded, the new
        snapshot's entries are unioned in, and the result replaces the
        file atomically so concurrent readers see either the old or the
        new complete payload.
        """
        existing = self.load(snapshot.fingerprint)
        if existing is None:
            merged, added = snapshot, snapshot.num_entries
        else:
            merged, added = existing, existing.merge(snapshot)
        self._write(merged)
        return added

    def _write(self, snapshot: CacheSnapshot) -> Path:
        path = self.path_for(snapshot.fingerprint)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        payload = {"magic": FILE_MAGIC, "snapshot": snapshot}
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Model-level conveniences
    # ------------------------------------------------------------------
    def warm(self, model: CachedExecutionModel) -> int:
        """Pre-load a model from its fingerprint's file; entries added."""
        snapshot = self.load(model.fingerprint)
        if snapshot is None:
            return 0
        return model.load_snapshot(snapshot)

    def persist(self, model: CachedExecutionModel) -> int:
        """Merge a model's current entries back; new-on-disk entries."""
        return self.merge(model.export_snapshot())

    def fingerprints(self) -> list[str]:
        """Fingerprints present in the cache directory, sorted."""
        prefix, suffix = "perf-", ".pkl"
        return sorted(
            p.name[len(prefix):-len(suffix)]
            for p in self.cache_dir.glob(f"{prefix}*{suffix}")
        )
