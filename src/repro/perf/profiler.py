"""One-time profiling used to pick the token budget (§4.3).

The paper sets the token budget by profiling hybrid batches with
different numbers of tokens and choosing the largest count that still
meets the P99 TBT SLO — "This can be handled with a one-time profiling
of batches with different number of tokens".  ``compute_token_budget``
implements exactly that against the analytical execution model, with
candidates aligned to the GPU matmul tile to avoid tile-quantization
waste.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.iteration import ExecutionModel
from repro.types import TokenWork

# The decode reference point used to derive SLOs in §5.1 (Patel et al.
# methodology): a request with 4k prefill at batch size 32, running
# without prefill interference.
REFERENCE_BATCH_SIZE = 32
REFERENCE_CONTEXT = 4096

STRICT_SLO_MULTIPLIER = 5.0
RELAXED_SLO_MULTIPLIER = 25.0


@dataclass(frozen=True)
class BudgetProfile:
    """One profiled operating point of the hybrid-batch sweep."""

    token_budget: int
    iteration_time: float
    meets_slo: bool


def reference_decode_time(exec_model: ExecutionModel) -> float:
    """Decode-iteration TBT at the paper's SLO reference point.

    The user-observed TBT of a pipeline-parallel deployment spans every
    stage plus the inter-stage activation hops, so the reference scales
    with pipeline depth.
    """
    stage = exec_model.decode_iteration_time(
        REFERENCE_BATCH_SIZE, REFERENCE_CONTEXT
    ).total
    pp = exec_model.parallel.pipeline_parallel
    if pp == 1:
        return stage
    works = [TokenWork.decode(REFERENCE_CONTEXT) for _ in range(REFERENCE_BATCH_SIZE)]
    send = exec_model.pipeline_send_time(works)
    return pp * stage + (pp - 1) * send


def derive_slo(exec_model: ExecutionModel, strict: bool) -> float:
    """P99-TBT SLO as a multiple of the reference decode latency (§5.1)."""
    multiplier = STRICT_SLO_MULTIPLIER if strict else RELAXED_SLO_MULTIPLIER
    return multiplier * reference_decode_time(exec_model)


def hybrid_iteration_time(
    exec_model: ExecutionModel,
    token_budget: int,
    decode_batch_size: int = REFERENCE_BATCH_SIZE,
    decode_context: int = REFERENCE_CONTEXT,
    prefill_past: int | None = None,
) -> float:
    """Latency of a worst-case hybrid batch at a given token budget.

    The batch carries ``decode_batch_size`` decodes plus one prefill
    chunk filling the remaining budget, whose attention re-reads
    ``prefill_past`` cached tokens (defaults to one budget's worth,
    i.e. a mid-prompt chunk).
    """
    works = [TokenWork.decode(decode_context) for _ in range(decode_batch_size)]
    prefill_tokens = token_budget - decode_batch_size
    if prefill_tokens > 0:
        past = prefill_past if prefill_past is not None else token_budget
        works.append(
            TokenWork.prefill_chunk(prefill_tokens, past_len=past, is_last=False)
        )
    stage = exec_model.iteration_time(works).total
    # Like the SLO reference, the latency a user observes spans every
    # pipeline stage plus the inter-stage hops.
    pp = exec_model.parallel.pipeline_parallel
    if pp == 1:
        return stage
    send = exec_model.pipeline_send_time(works)
    return pp * stage + (pp - 1) * send


def profile_token_budgets(
    exec_model: ExecutionModel,
    tbt_slo: float,
    candidates: list[int] | None = None,
    decode_batch_size: int = REFERENCE_BATCH_SIZE,
    decode_context: int = REFERENCE_CONTEXT,
) -> list[BudgetProfile]:
    """Profile hybrid-batch latency across candidate token budgets."""
    if candidates is None:
        candidates = default_budget_candidates(exec_model)
    profiles = []
    for budget in candidates:
        time = hybrid_iteration_time(
            exec_model, budget, decode_batch_size, decode_context
        )
        profiles.append(
            BudgetProfile(token_budget=budget, iteration_time=time, meets_slo=time <= tbt_slo)
        )
    return profiles


def default_budget_candidates(exec_model: ExecutionModel) -> list[int]:
    """Tile-aligned candidate budgets from 128 to 8192 tokens."""
    tile = exec_model.gpu.matmul_tile
    candidates = []
    budget = tile
    while budget <= 8192:
        candidates.append(budget)
        budget += tile if budget < 1024 else 2 * tile
    return candidates


def compute_token_budget(
    exec_model: ExecutionModel,
    tbt_slo: float,
    candidates: list[int] | None = None,
    decode_batch_size: int = REFERENCE_BATCH_SIZE,
    decode_context: int = REFERENCE_CONTEXT,
    min_budget: int = 128,
) -> int:
    """Largest tile-aligned token budget whose hybrid batch meets the SLO.

    Falls back to ``min_budget`` when even the smallest candidate
    violates the SLO — a budget must always admit at least one decode
    batch, otherwise the scheduler could never make progress.
    """
    profiles = profile_token_budgets(
        exec_model, tbt_slo, candidates, decode_batch_size, decode_context
    )
    feasible = [p.token_budget for p in profiles if p.meets_slo]
    if not feasible:
        return min_budget
    return max(feasible)
