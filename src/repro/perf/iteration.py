"""Iteration-level execution model: batch composition → wall-clock.

``ExecutionModel`` composes the linear, attention and "others" operator
models with communication and fixed overheads into the per-iteration
time of one pipeline stage.  This is the simulator's substitute for
running kernels on a GPU; everything above it (schedulers, engines,
capacity search) consumes only this interface.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.parallel.comm import pp_send_time, tp_comm_time
from repro.parallel.config import ParallelConfig
from repro.perf.attention import AttentionModel
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.linear import LinearModel
from repro.perf.roofline import op_time
from repro.types import IterationTime, TokenWork


class ExecutionModel:
    """Analytical execution-time model for one replica's pipeline stage.

    Stages are symmetric (ceil-split layers), so a single instance
    models every stage of a deployment; the LM head is charged only
    when ``is_last_stage`` and per-iteration CPU overhead only when
    ``is_first_stage`` (where the scheduler runs).
    """

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        parallel: ParallelConfig | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.model = model
        self.gpu = gpu
        self.parallel = parallel or ParallelConfig()
        self.calibration = calibration
        self.linear = LinearModel(model, gpu, self.parallel, calibration)
        self.attention = AttentionModel(model, gpu, self.parallel, calibration)
        self.stage_layers = self.parallel.layers_per_stage(model)
        tp = self.parallel.tensor_parallel
        self._others_bytes_per_token = (
            calibration.others_bytes_factor
            * model.hidden_size
            * model.dtype_bytes
            / tp
        )

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    def stage_iteration_time(
        self,
        works: Sequence[TokenWork],
        is_first_stage: bool = True,
        is_last_stage: bool = True,
    ) -> IterationTime:
        """Wall-clock of one stage executing one batch iteration."""
        if not works:
            return IterationTime(0.0, 0.0, 0.0, 0.0, 0.0)

        num_tokens = sum(w.num_tokens for w in works)
        num_logit_tokens = sum(1 for w in works if w.emits_token)

        linear = self.linear.stage_time(
            num_tokens, num_logit_tokens if is_last_stage else 0
        )
        attention = sum(self.attention.work_time(w) for w in works)
        others = self._others_time(num_tokens)
        comm = tp_comm_time(self.model, self.parallel, num_tokens, self.stage_layers)
        overhead = self._fixed_overhead(is_first_stage)
        return IterationTime(linear, attention, others, comm, overhead)

    def iteration_time(self, works: Sequence[TokenWork]) -> IterationTime:
        """Convenience for single-stage (PP=1) deployments."""
        return self.stage_iteration_time(works)

    def pipeline_send_time(self, works: Sequence[TokenWork]) -> float:
        """Activation transfer time to the next pipeline stage."""
        num_tokens = sum(w.num_tokens for w in works)
        return pp_send_time(self.model, self.parallel, num_tokens)

    # ------------------------------------------------------------------
    # Derived helpers used throughout benches and schedulers
    # ------------------------------------------------------------------
    def decode_iteration_time(
        self, batch_size: int, context_len: int
    ) -> IterationTime:
        """Decode-only iteration with a uniform context length."""
        works = [TokenWork.decode(context_len) for _ in range(batch_size)]
        return self.iteration_time(works)

    def full_prefill_time(self, prompt_len: int) -> IterationTime:
        """A whole prompt prefilled in a single unchunked iteration."""
        return self.iteration_time([TokenWork.prefill_chunk(prompt_len)])

    def chunked_prefill_time(self, prompt_len: int, chunk_size: int) -> IterationTime:
        """Total time to prefill a prompt split into ``chunk_size`` chunks.

        Sums the per-iteration costs, including the KV re-reads and the
        repeated fixed overheads that make chunking slightly slower than
        a monolithic prefill (Fig. 14).
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        total = IterationTime(0.0, 0.0, 0.0, 0.0, 0.0)
        done = 0
        while done < prompt_len:
            chunk = min(chunk_size, prompt_len - done)
            is_last = done + chunk >= prompt_len
            work = TokenWork.prefill_chunk(chunk, past_len=done, is_last=is_last)
            total = total + self.iteration_time([work])
            done += chunk
        return total

    def per_replica_gpus(self) -> int:
        return self.parallel.world_size

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _others_time(self, num_tokens: int) -> float:
        num_bytes = self._others_bytes_per_token * num_tokens * self.stage_layers
        # Elementwise math is trivially memory-bound; count a nominal
        # handful of FLOPs per byte moved.
        return op_time(
            self.gpu,
            flops=num_bytes,
            num_bytes=num_bytes,
            compute_efficiency=self.calibration.matmul_efficiency,
            memory_efficiency=self.calibration.memory_efficiency,
        ).time

    def _fixed_overhead(self, is_first_stage: bool) -> float:
        calib = self.calibration
        launch = (
            calib.kernel_launch_overhead * calib.kernels_per_layer * self.stage_layers
        )
        scheduler = calib.iteration_overhead if is_first_stage else 0.0
        return launch + scheduler
