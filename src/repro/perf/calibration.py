"""Calibration constants for the roofline execution model.

These constants convert peak hardware rates into *achievable* rates and
add the fixed software costs that peak-rate math misses.  They were
chosen to land the model near the operating points the paper reports:

* linear operators become compute-bound around 200 theoretical tokens
  on A100, observed at ~500-600 tokens for high TP degrees due to fixed
  overheads (paper §3.1, footnote 2) — reproduced by the per-kernel
  launch cost and communication latency terms;
* a 4k-token Falcon-180B prefill takes ~1.1-1.2 s per TP4 stage while a
  32-wide decode iteration takes tens of milliseconds (§3.3);
* chunked prefill with chunk 512 costs at most ~25% extra prefill time
  on Yi-34B (Fig. 14) — reproduced by KV re-reads plus per-iteration
  overheads.

All values live in one frozen dataclass so experiments can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """Achievable-efficiency factors and fixed overheads (seconds)."""

    # Fractions of peak attainable by real kernels.
    matmul_efficiency: float = 0.62       # dense GEMM FLOP efficiency (asymptotic)
    memory_efficiency: float = 0.82       # HBM streaming efficiency
    attention_prefill_efficiency: float = 0.45   # FlashAttention-style
    attention_decode_efficiency: float = 0.70    # paged decode kernels

    # GEMM efficiency ramps up with the token dimension: small batches
    # under-fill the SM grid, so a 512-token GEMM runs at ~84% of the
    # asymptotic efficiency while a 16k-token one runs at ~99%.  This
    # is what makes small prefill chunks "slightly inefficient" (§5.4.1)
    # and pushes the observed compute-bound knee to ~500-600 tokens
    # (§3.1 footnote 2).
    gemm_efficiency_knee: float = 96.0    # saturation constant, in tokens

    # Fixed software costs.
    kernel_launch_overhead: float = 4.5e-6   # per kernel
    kernels_per_layer: float = 9.0           # launches per transformer layer
    iteration_overhead: float = 1.5e-3       # CPU scheduler + framework, per iter

    # Elementwise/norm ("others") costs relative to activation traffic.
    others_bytes_factor: float = 6.0   # activation bytes moved per layer / (n*h*dtype)

    # Tile-quantization: pad token dimension up to a multiple of the
    # GPU's matmul tile when computing GEMM math time (§4.3).
    model_tile_quantization: bool = True

    def __post_init__(self) -> None:
        for name in (
            "matmul_efficiency",
            "memory_efficiency",
            "attention_prefill_efficiency",
            "attention_decode_efficiency",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.kernel_launch_overhead < 0 or self.iteration_overhead < 0:
            raise ValueError("overheads must be non-negative")
        if self.gemm_efficiency_knee < 0:
            raise ValueError("gemm_efficiency_knee must be non-negative")

    def gemm_efficiency(self, num_tokens: float) -> float:
        """Achievable GEMM FLOP efficiency at a given token dimension.

        Saturating ramp ``eff * n / (n + knee)``: ≈84% of asymptotic at
        512 tokens, ≈99% at 16k tokens with the default knee of 96.
        """
        if num_tokens <= 0:
            return self.matmul_efficiency
        ramp = num_tokens / (num_tokens + self.gemm_efficiency_knee)
        return self.matmul_efficiency * ramp


DEFAULT_CALIBRATION = Calibration()
