"""Calibration anchors: the paper's operating points, checked in code.

The roofline model is only credible while it stays pinned to the
handful of absolute numbers the paper publishes.  Each anchor encodes
one such number with a generous band; ``validate_calibration`` runs
them all, and the test suite fails if a refactor drifts the model off
the paper.  Run it yourself after changing any constant::

    from repro.perf.validation import validate_calibration
    for check in validate_calibration():
        print(check)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.catalog import A100_80G, ETHERNET_100G
from repro.models.catalog import FALCON_180B, MISTRAL_7B, YI_34B
from repro.parallel.config import ParallelConfig
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.iteration import ExecutionModel
from repro.perf.profiler import derive_slo
from repro.types import TokenWork


@dataclass(frozen=True)
class AnchorCheck:
    """One calibration anchor: a measured value against its band."""

    name: str
    source: str
    measured: float
    low: float
    high: float

    @property
    def passed(self) -> bool:
        return self.low <= self.measured <= self.high

    def __str__(self) -> str:
        status = "ok " if self.passed else "OFF"
        return (
            f"[{status}] {self.name}: {self.measured:.4g} "
            f"(expected {self.low:g}..{self.high:g}; {self.source})"
        )


def validate_calibration(
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> list[AnchorCheck]:
    """Evaluate every anchor; returns all checks (pass or fail)."""
    checks: list[AnchorCheck] = []

    mistral = ExecutionModel(MISTRAL_7B, A100_80G, ParallelConfig(), calibration)
    yi = ExecutionModel(
        YI_34B, A100_80G, ParallelConfig(tensor_parallel=2), calibration
    )
    falcon = ExecutionModel(
        FALCON_180B,
        A100_80G,
        ParallelConfig(tensor_parallel=4, pipeline_parallel=2, pp_link=ETHERNET_100G),
        calibration,
    )

    checks.append(
        AnchorCheck(
            name="Mistral-7B strict SLO (5x reference decode)",
            source="Table 3: 0.1 s",
            measured=derive_slo(mistral, strict=True),
            low=0.05,
            high=0.25,
        )
    )
    checks.append(
        AnchorCheck(
            name="Yi-34B strict SLO",
            source="Table 3: 0.2 s",
            measured=derive_slo(yi, strict=True),
            low=0.10,
            high=0.45,
        )
    )
    checks.append(
        AnchorCheck(
            name="Falcon-180B 4k-token prefill, one TP4 stage",
            source="§3.3: ≈1150 ms",
            measured=falcon.full_prefill_time(4096).total,
            low=0.7,
            high=1.6,
        )
    )
    checks.append(
        AnchorCheck(
            name="Yi-34B chunk-512 prefill overhead (16k prompt)",
            source="Fig. 14: ≤ ~25% at chunk 512",
            measured=yi.chunked_prefill_time(16384, 512).total
            / yi.full_prefill_time(16384).total,
            low=1.02,
            high=1.30,
        )
    )
    checks.append(
        AnchorCheck(
            name="Yi-34B chunk-2048 prefill overhead (16k prompt)",
            source="Fig. 14: near-negligible at chunk 2048",
            measured=yi.chunked_prefill_time(16384, 2048).total
            / yi.full_prefill_time(16384).total,
            low=1.0,
            high=1.10,
        )
    )
    # Fig. 3: prefill throughput saturated at bs=1; decode scales.
    prefill_bs1 = 1024 / mistral.iteration_time([TokenWork.prefill_chunk(1024)]).total
    prefill_bs8 = (
        8 * 1024
        / mistral.iteration_time([TokenWork.prefill_chunk(1024)] * 8).total
    )
    checks.append(
        AnchorCheck(
            name="Mistral-7B prefill batch-8 gain over batch-1",
            source="Fig. 3: marginal",
            measured=prefill_bs8 / prefill_bs1,
            low=1.0,
            high=1.3,
        )
    )
    decode_bs1 = 1 / mistral.decode_iteration_time(1, 1024).total
    decode_bs32 = 32 / mistral.decode_iteration_time(32, 1024).total
    checks.append(
        AnchorCheck(
            name="Mistral-7B decode batch-32 gain over batch-1",
            source="Fig. 3: near-linear",
            measured=decode_bs32 / decode_bs1,
            low=15.0,
            high=33.0,
        )
    )
    # §4.3 tile quantization: 257 vs 256-token chunk math-time spike.
    spike = (
        mistral.linear.layer_cost(257).math_time
        / mistral.linear.layer_cost(256).math_time
    )
    checks.append(
        AnchorCheck(
            name="tile-quantization spike at 257 vs 256 tokens",
            source="§4.3: ~+32%",
            measured=spike,
            low=1.1,
            high=1.6,
        )
    )
    return checks


def assert_calibrated(calibration: Calibration = DEFAULT_CALIBRATION) -> None:
    """Raise with a readable report if any anchor is off."""
    checks = validate_calibration(calibration)
    failed = [c for c in checks if not c.passed]
    if failed:
        report = "\n".join(str(c) for c in checks)
        raise AssertionError(f"calibration drifted off the paper:\n{report}")
