"""Roofline timing of the attention operator of one pipeline stage.

Two regimes matter:

* **prefill attention** — compute-bound, cost quadratic in sequence
  length; when a prompt is chunked, every later chunk must *re-read*
  the KV cache of earlier chunks, which is the source of the chunking
  overhead the paper quantifies in Fig. 14 / §4.3;
* **decode attention** — memory-bound, cost proportional to the bytes
  of KV cache streamed from HBM for the request's full context.
"""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.perf.calibration import Calibration
from repro.perf.roofline import op_time
from repro.types import TokenWork


class AttentionModel:
    """Per-stage attention cost model (heads sharded across TP ranks)."""

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        parallel: ParallelConfig,
        calibration: Calibration,
    ) -> None:
        self.model = model
        self.gpu = gpu
        self.parallel = parallel
        self.calibration = calibration

        tp = parallel.tensor_parallel
        self.stage_layers = parallel.layers_per_stage(model)
        self._tp = tp
        # KV bytes one cached token costs per layer on one GPU.
        self._kv_bytes_per_token_layer = model.kv_bytes_per_token_per_layer / tp
        # Fresh Q/K/V activation traffic per processed token per layer.
        qkv_width = model.hidden_size + 2 * model.kv_dim
        self._qkv_bytes_per_token_layer = qkv_width * model.dtype_bytes / tp

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def flops(self, work: TokenWork) -> float:
        """Per-GPU attention FLOPs of this stage for one work segment."""
        per_model = self.model.attention_flops(work.num_tokens, work.past_len)
        per_layer = per_model / self.model.num_layers
        return per_layer * self.stage_layers / self._tp

    def kv_read_bytes(self, work: TokenWork) -> float:
        """Per-GPU bytes of cached KV streamed for one work segment."""
        return self._kv_read_bytes_layer(work) * self.stage_layers

    def _kv_read_bytes_layer(self, work: TokenWork) -> float:
        span = work.past_len
        if self.model.sliding_window is not None:
            span = min(span, self.model.sliding_window)
        return span * self._kv_bytes_per_token_layer

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def work_time(self, work: TokenWork) -> float:
        """Stage attention time for one request's segment of a batch.

        Attention kernels do not batch across sequences the way GEMMs
        do: each sequence's scores are computed independently, so the
        per-sequence costs add (modulo kernel-level parallelism folded
        into the efficiency factors).
        """
        calib = self.calibration
        flops = self.flops(work)
        num_bytes = (
            self._kv_read_bytes_layer(work)
            + work.num_tokens * self._qkv_bytes_per_token_layer
        ) * self.stage_layers
        if work.is_prefill:
            # Short chunks under-fill the attention kernel grid the
            # same way they under-fill GEMMs; reuse the saturating ramp.
            ramp = calib.gemm_efficiency(work.num_tokens) / calib.matmul_efficiency
            compute_eff = calib.attention_prefill_efficiency
            ramped_eff = compute_eff * ramp
            mem_eff = calib.memory_efficiency
        else:
            compute_eff = calib.attention_decode_efficiency
            ramped_eff = None
            mem_eff = calib.attention_decode_efficiency
        return op_time(
            self.gpu,
            flops,
            num_bytes,
            compute_eff,
            mem_eff,
            ramped_compute_efficiency=ramped_eff,
        ).time
