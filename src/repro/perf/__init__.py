"""Analytical roofline performance model of transformer inference."""

from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.roofline import OpCost, arithmetic_intensity, op_time, tile_quantized
from repro.perf.linear import LinearModel
from repro.perf.attention import AttentionModel
from repro.perf.iteration import ExecutionModel
from repro.perf.cache import (
    DEFAULT_MAX_ENTRIES,
    SNAPSHOT_VERSION,
    CachedExecutionModel,
    CacheSnapshot,
    CacheStats,
    batch_signature,
    execution_fingerprint,
)
from repro.perf.disk_cache import PersistentPerfCache
from repro.perf.table import ProfiledIterationTable
from repro.perf.validation import AnchorCheck, assert_calibrated, validate_calibration
from repro.perf.profiler import (
    BudgetProfile,
    compute_token_budget,
    derive_slo,
    hybrid_iteration_time,
    profile_token_budgets,
    reference_decode_time,
)

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "OpCost",
    "op_time",
    "tile_quantized",
    "arithmetic_intensity",
    "LinearModel",
    "AttentionModel",
    "ExecutionModel",
    "CachedExecutionModel",
    "CacheSnapshot",
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "SNAPSHOT_VERSION",
    "PersistentPerfCache",
    "batch_signature",
    "execution_fingerprint",
    "BudgetProfile",
    "compute_token_budget",
    "derive_slo",
    "hybrid_iteration_time",
    "profile_token_budgets",
    "reference_decode_time",
    "ProfiledIterationTable",
    "AnchorCheck",
    "validate_calibration",
    "assert_calibrated",
]
