"""Roofline timing of the linear (GEMM) operators of one pipeline stage.

Linear operators dominate LLM iteration time (Fig. 4): QKV projection,
attention output projection, the FFN matrices, and the LM head.  Their
cost per iteration depends only on the *total* number of tokens in the
batch, which is what makes hybrid prefill+decode batches attractive —
a decode token rides along with prefill tokens almost for free while
the batch stays memory-bound (Takeaway-2).
"""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.perf.calibration import Calibration
from repro.perf.roofline import OpCost, op_time, tile_quantized


class LinearModel:
    """Per-stage linear-operator cost model with precomputed shards."""

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        parallel: ParallelConfig,
        calibration: Calibration,
    ) -> None:
        self.model = model
        self.gpu = gpu
        self.parallel = parallel
        self.calibration = calibration

        tp = parallel.tensor_parallel
        self.stage_layers = parallel.layers_per_stage(model)
        # Per-GPU shard sizes, precomputed once.
        self._layer_params = model.params_per_layer / tp
        self._layer_weight_bytes = self._layer_params * model.dtype_bytes
        self._lm_head_params = model.lm_head_params / tp
        self._lm_head_bytes = self._lm_head_params * model.dtype_bytes
        # Activation traffic per token per layer (read input + write
        # intermediate + write output), a small additive memory term.
        self._act_bytes_per_token = 3 * model.hidden_size * model.dtype_bytes / tp

    # ------------------------------------------------------------------
    # Raw accounting (used directly by Fig. 5 / Fig. 6 benches)
    # ------------------------------------------------------------------
    def flops(self, num_tokens: int) -> float:
        """Per-GPU GEMM FLOPs of this stage's layers for a batch."""
        return 2.0 * num_tokens * self._layer_params * self.stage_layers

    def weight_bytes(self) -> float:
        """Per-GPU weight bytes fetched each iteration by this stage."""
        return self._layer_weight_bytes * self.stage_layers

    def activation_bytes(self, num_tokens: int) -> float:
        return self._act_bytes_per_token * num_tokens * self.stage_layers

    def arithmetic_intensity(self, num_tokens: int) -> float:
        """FLOPs per byte of the stage's linear work (Fig. 5)."""
        total_bytes = self.weight_bytes() + self.activation_bytes(num_tokens)
        return self.flops(num_tokens) / total_bytes

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def layer_cost(self, num_tokens: int) -> OpCost:
        """Roofline cost of one layer's linear operators."""
        calib = self.calibration
        math_tokens = num_tokens
        if calib.model_tile_quantization:
            math_tokens = tile_quantized(num_tokens, self.gpu.matmul_tile)
        flops = 2.0 * math_tokens * self._layer_params
        num_bytes = self._layer_weight_bytes + self._act_bytes_per_token * num_tokens
        return op_time(
            self.gpu,
            flops,
            num_bytes,
            calib.matmul_efficiency,
            calib.memory_efficiency,
            ramped_compute_efficiency=calib.gemm_efficiency(math_tokens),
        )

    def stage_time(self, num_tokens: int, num_logit_tokens: int = 0) -> float:
        """Linear time of the whole stage, plus the LM head.

        ``num_logit_tokens`` is the number of positions pushed through
        the LM head (one per sequence emitting a token this iteration);
        inference engines only compute logits for final positions.
        Callers pass 0 for stages that do not host the LM head.
        """
        if num_tokens <= 0:
            return 0.0
        total = self.layer_cost(num_tokens).time * self.stage_layers
        if num_logit_tokens > 0:
            total += self.lm_head_time(num_logit_tokens)
        return total

    def lm_head_time(self, num_logit_tokens: int) -> float:
        calib = self.calibration
        math_tokens = num_logit_tokens
        if calib.model_tile_quantization:
            math_tokens = tile_quantized(num_logit_tokens, self.gpu.matmul_tile)
        flops = 2.0 * math_tokens * self._lm_head_params
        num_bytes = self._lm_head_bytes
        return op_time(
            self.gpu,
            flops,
            num_bytes,
            calib.matmul_efficiency,
            calib.memory_efficiency,
            ramped_compute_efficiency=calib.gemm_efficiency(math_tokens),
        ).time
