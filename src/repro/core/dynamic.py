"""Dynamic token budgets — the paper's stated future work (§5.1).

The static token budget is provisioned for a *worst-case* decode batch
(32 requests at 4k context, §4.3), so iterations with fewer or shorter
decodes leave SLO headroom unused.  ``DynamicSarathiScheduler`` re-runs
the §4.3 profiling decision every iteration against the *actual*
decode pool: it picks the largest tile-aligned budget whose predicted
iteration latency still meets the TBT SLO.

The scheduler stays policy-pure: it receives an opaque cost oracle
``works -> seconds`` (in practice the roofline model, in a real system
a profiled lookup table) rather than reaching into the execution model.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.batch import ScheduledWork
from repro.core.sarathi import SarathiScheduler
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE
from repro.types import TokenWork

IterationCostFn = Callable[[Sequence[TokenWork]], float]


class DynamicSarathiScheduler(SarathiScheduler):
    """Sarathi-Serve with a per-iteration, SLO-driven token budget."""

    name = "sarathi-dynamic"

    def __init__(
        self,
        memory: MemoryManager,
        tbt_slo: float,
        iteration_cost: IterationCostFn,
        min_budget: int = 128,
        max_budget: int = 8192,
        budget_step: int = 128,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    ) -> None:
        if tbt_slo <= 0:
            raise ValueError("tbt_slo must be positive")
        if not 0 < min_budget <= max_budget:
            raise ValueError("need 0 < min_budget <= max_budget")
        if budget_step <= 0:
            raise ValueError("budget_step must be positive")
        super().__init__(
            memory, token_budget=min_budget, max_batch_size=max_batch_size
        )
        self.tbt_slo = tbt_slo
        self.iteration_cost = iteration_cost
        self.min_budget = min_budget
        self.max_budget = max_budget
        self.budget_step = budget_step
        self.budget_history: list[int] = []

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        self.token_budget = self._pick_budget()
        self.budget_history.append(self.token_budget)
        return super()._build_batch(now)

    # ------------------------------------------------------------------
    def _pick_budget(self) -> int:
        """Largest budget whose predicted iteration fits the SLO.

        The prediction prices the *current* decode pool plus one
        prefill chunk filling the leftover budget, attending one
        budget's worth of cached past — the same worst-case chunk shape
        the static §4.3 profiling uses, but with live decode state.
        The cost of a hybrid iteration is monotone in the budget, so a
        bisection over the step grid suffices.
        """
        decode_contexts = [
            r.context_len
            for r in self._schedulable_running()
            if r.is_prefill_complete
        ]
        lo = self.min_budget
        if not self._fits(lo, decode_contexts):
            return self.min_budget
        hi = self.max_budget
        if self._fits(hi, decode_contexts):
            return self.max_budget
        while hi - lo > self.budget_step:
            mid = lo + (hi - lo) // (2 * self.budget_step) * self.budget_step
            if mid == lo:
                break
            if self._fits(mid, decode_contexts):
                lo = mid
            else:
                hi = mid
        return lo

    def _fits(self, budget: int, decode_contexts: list[int]) -> bool:
        works = [TokenWork.decode(ctx) for ctx in decode_contexts]
        prefill_tokens = budget - len(works)
        if prefill_tokens > 0:
            works.append(
                TokenWork.prefill_chunk(
                    prefill_tokens, past_len=budget, is_last=False
                )
            )
        if not works:
            return True
        return self.iteration_cost(works) <= self.tbt_slo
