"""Chunk-size policy for chunked-prefills (§4.1, §4.3).

``get_next_chunk_size`` decides how many prompt tokens of a request fit
into the current iteration's leftover token budget.  Optionally the
chunk is aligned down to the GPU matmul tile so partial tiles are not
wasted (tile-quantization, §4.3) — except for the prompt's final piece,
which must be taken whole to finish the prefill.
"""

from __future__ import annotations

from repro.types import Request


def get_next_chunk_size(
    request: Request,
    token_budget: int,
    tokens_used: int,
    tile_align: int | None = None,
) -> int:
    """Prompt tokens of ``request`` to prefill within the leftover budget.

    Returns 0 when the budget is exhausted or the request has no
    prefill work left.  Mirrors lines 11/15 of Algorithm 3.
    """
    if token_budget <= 0:
        raise ValueError("token_budget must be positive")
    if tokens_used < 0:
        raise ValueError("tokens_used must be non-negative")
    leftover = token_budget - tokens_used
    if leftover <= 0:
        return 0
    chunk = min(request.remaining_prefill, leftover)
    if chunk <= 0:
        return 0
    if tile_align and chunk < request.remaining_prefill:
        # Align mid-prompt chunks down to the tile; never below one
        # tile (a zero chunk would starve the prefill).
        aligned = (chunk // tile_align) * tile_align
        if aligned > 0:
            chunk = aligned
    return chunk


def num_chunks(prompt_len: int, chunk_size: int) -> int:
    """Number of iterations a prompt needs at a fixed chunk size."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return (prompt_len + chunk_size - 1) // chunk_size
