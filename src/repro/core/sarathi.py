"""Sarathi-Serve's stall-free batching scheduler (Algorithm 3).

The paper's primary contribution.  Every iteration is built under a
fixed *token budget* τ derived from the TBT SLO (§4.3):

1. all ongoing decodes join first (one token each, lines 6-8);
2. then the next chunk of any partially prefilled request (lines 9-12);
3. only then are new requests admitted, each contributing a prefill
   chunk no larger than the leftover budget (lines 13-20).

Because the iteration's total token count never exceeds τ, its latency
is bounded and nearly independent of prompt lengths — decodes never
stall behind a long prefill, yet prefill work rides along in the slack
of memory-bound decode batches (Takeaway-2).
"""

from __future__ import annotations

from repro.batch import ScheduledWork
from repro.core.chunking import get_next_chunk_size
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.types import Request, TokenWork


class SarathiScheduler(Scheduler):
    """Stall-free batching with chunked prefills under a token budget."""

    name = "sarathi"

    def __init__(
        self,
        memory: MemoryManager,
        token_budget: int,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        chunk_prefills: bool = True,
        tile_align: int | None = None,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        """``chunk_prefills=False`` gives the hybrid-batching-only ablation:
        stall-free ordering is kept but prompts are never split, so one
        long prompt can still blow up an iteration (Table 4)."""
        super().__init__(
            memory,
            max_batch_size,
            preemption_mode=preemption_mode,
            kv_bytes_per_token=kv_bytes_per_token,
        )
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.token_budget = token_budget
        self.chunk_prefills = chunk_prefills
        self.tile_align = tile_align

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        items: list[ScheduledWork] = []
        tokens_used = 0

        # Lines 6-8: every running decode joins — this is what makes the
        # schedule stall-free.
        decodes: list[Request] = []
        partial_prefills: list[Request] = []
        for request in self._schedulable_running():
            if request.is_prefill_complete:
                decodes.append(request)
            else:
                partial_prefills.append(request)

        # FCFS order matters: ``_prepare_decode`` may preempt the
        # latest-arrived runner, which must not already be in ``items``.
        for request in sorted(decodes, key=lambda r: r.arrival_time):
            if len(items) >= self.max_batch_size:
                break
            if request not in self.running:
                continue  # evicted by an earlier preemption
            if not self._prepare_decode(request):
                continue
            items.append(
                ScheduledWork(request=request, work=TokenWork.decode(request.context_len))
            )
            tokens_used += 1

        # Lines 9-12: continue partially completed prefills before
        # admitting anything new.
        for request in partial_prefills:
            if len(items) >= self.max_batch_size:
                break
            if request not in self.running:
                continue  # evicted by a preemption above
            chunk = self._chunk_for(request, tokens_used)
            if chunk <= 0:
                break
            items.append(self._prefill_item(request, chunk))
            tokens_used += chunk

        # Lines 13-20: admit new requests within the leftover budget.
        while len(items) < self.max_batch_size and tokens_used < self.token_budget:
            head = self.waiting[0] if self.waiting else None
            if head is None:
                break
            chunk = self._chunk_for(head, tokens_used)
            if chunk <= 0:
                break
            admitted = self._admit_waiting_head()
            if admitted is None:
                break  # memory full
            # Admission may have claimed a cached prefix, shrinking the
            # remaining prefill below the pre-admission estimate;
            # recompute so the chunk never overruns (still >= 1: the
            # cache always leaves at least one token to prefill).
            chunk = self._chunk_for(admitted, tokens_used)
            items.append(self._prefill_item(admitted, chunk))
            tokens_used += chunk
        return items

    # ------------------------------------------------------------------
    def _chunk_for(self, request: Request, tokens_used: int) -> int:
        if not self.chunk_prefills:
            # Hybrid-batching-only ablation: whole prompts, no budget cap
            # on prefill size (the budget still gates *whether* more new
            # requests join, bounding runaway batch growth).
            return request.remaining_prefill if tokens_used < self.token_budget else 0
        return get_next_chunk_size(
            request, self.token_budget, tokens_used, self.tile_align
        )

    @staticmethod
    def _prefill_item(request: Request, chunk: int) -> ScheduledWork:
        is_last = chunk >= request.remaining_prefill
        return ScheduledWork(
            request=request,
            work=TokenWork.prefill_chunk(
                chunk, past_len=request.prefill_done, is_last=is_last
            ),
        )
