"""The paper's primary contribution: chunked-prefills + stall-free batching."""

from repro.core.chunking import get_next_chunk_size, num_chunks
from repro.core.dynamic import DynamicSarathiScheduler
from repro.core.fairness import FairSarathiScheduler
from repro.core.sarathi import SarathiScheduler

__all__ = [
    "SarathiScheduler",
    "DynamicSarathiScheduler",
    "FairSarathiScheduler",
    "get_next_chunk_size",
    "num_chunks",
]
