"""Fairness-aware stall-free batching (multi-tenant serving).

The paper cites Sheng et al.'s fairness work as complementary to
Sarathi-Serve (§6): "such algorithmic optimizations … can benefit from
lower prefill-decode interference".  ``FairSarathiScheduler`` is that
combination — Algorithm 3's stall-free, budget-bounded batching with a
Virtual-Token-Counter admission order instead of FCFS:

* each client accrues a *service counter* of tokens scheduled on its
  behalf (prefill tokens + decodes);
* admission always picks the waiting request whose client has the
  lowest counter, so a tenant flooding the queue cannot starve light
  tenants — it only competes against its own backlog.

Decode scheduling stays stall-free (every running decode is served
every iteration); fairness is enforced where the contention actually
is: admission of new prefill work into the token budget.
"""

from __future__ import annotations

from collections import defaultdict

from repro.batch import ScheduledWork
from repro.core.sarathi import SarathiScheduler
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE


class FairSarathiScheduler(SarathiScheduler):
    """Stall-free batching with virtual-token-counter fair admission."""

    name = "sarathi-fair"

    def __init__(
        self,
        memory: MemoryManager,
        token_budget: int,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        client_weights: dict[int, float] | None = None,
        **kwargs,
    ) -> None:
        """``client_weights`` scales each client's fair share (weight 2
        = entitled to twice the tokens); unknown clients get weight 1."""
        super().__init__(
            memory, token_budget=token_budget, max_batch_size=max_batch_size, **kwargs
        )
        self.client_weights = dict(client_weights or {})
        for client, weight in self.client_weights.items():
            if weight <= 0:
                raise ValueError(f"client {client} has non-positive weight {weight}")
        self.service_counters: dict[int, float] = defaultdict(float)

    # ------------------------------------------------------------------
    def _weight(self, client_id: int) -> float:
        return self.client_weights.get(client_id, 1.0)

    def _virtual_service(self, client_id: int) -> float:
        """Weight-normalized tokens served — the fairness currency."""
        return self.service_counters[client_id] / self._weight(client_id)

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        # Reorder the waiting queue so the least-served client's oldest
        # request sits at the head; the parent then admits head-first.
        if len(self.waiting) > 1:
            indexed = list(self.waiting)
            indexed.sort(
                key=lambda r: (self._virtual_service(r.client_id), r.arrival_time)
            )
            self.waiting.clear()
            self.waiting.extend(indexed)
        items = super()._build_batch(now)
        for item in items:
            self.service_counters[item.request.client_id] += item.work.num_tokens
        return items

    # ------------------------------------------------------------------
    def fairness_report(self) -> dict[int, float]:
        """Weight-normalized service per client (equal values = fair)."""
        return {
            client: self._virtual_service(client) for client in self.service_counters
        }
