"""Event-driven replica health monitoring: flag, drain, restart.

Production gateways do not wait for a replica to crash — a straggler
GPU (thermal throttle, noisy neighbour, failing HBM) silently eats the
fleet's p99 TBT long before it dies.  The monitor compares each
replica's windowed TBT median against the fleet median at a fixed
check cadence; a replica inflated past ``inflation_factor`` is
*drained* (the router stops sending it new work, in-flight requests
finish) and then *restarted* once idle, clearing its stale window.

The monitor is a pure decision function over the fleet's replica
slots; the :class:`~repro.cluster.fleet.FleetSimulator` drives it from
the control-tick event stream and owns the drain flags and restarts,
so both engines observe identical decisions at identical instants —
the TBT windows they are derived from are bit-identical under the
differential contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.metrics.stats import percentile

if TYPE_CHECKING:
    from repro.cluster.fleet import _ReplicaSlot


@dataclass(frozen=True)
class HealthConfig:
    """Straggler detection knobs."""

    # Control-loop cadence in simulated seconds.
    check_interval: float = 0.5
    # Drain a replica whose windowed median TBT exceeds the fleet
    # median by this factor.
    inflation_factor: float = 2.0
    # Minimum TBT samples in a replica's window before it is judged —
    # fresh (just restarted) replicas are never flagged on noise.
    min_samples: int = 16
    # Never drain below this many routable (alive, not draining)
    # replicas, whatever the windows say.
    min_healthy: int = 1

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError(
                f"check_interval must be positive, got {self.check_interval}"
            )
        if self.inflation_factor <= 1.0:
            raise ValueError(
                f"inflation_factor must be > 1, got {self.inflation_factor}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.min_healthy < 1:
            raise ValueError(f"min_healthy must be >= 1, got {self.min_healthy}")


class HealthMonitor:
    """Flags replicas whose TBT window inflates against the fleet."""

    def __init__(self, config: HealthConfig, num_replicas: int) -> None:
        self.config = config
        self.num_replicas = num_replicas

    def flag_stragglers(
        self, slots: "list[_ReplicaSlot]"
    ) -> list[tuple[int, float]]:
        """Replicas to drain now, as ``(index, inflation_ratio)`` pairs.

        Deterministic: slots are scanned in index order and the fleet
        median is taken over the same windows both engines maintain.
        Flagging respects ``min_healthy`` — when several replicas
        inflate at once, lower indices are drained first and the rest
        wait for capacity to return.
        """
        cfg = self.config
        healthy = [s for s in slots if s.alive and not s.draining]
        medians: list[tuple[int, float]] = [
            (slot.index, percentile(slot.recent_tbts, 50))
            for slot in healthy
            if len(slot.recent_tbts) >= cfg.min_samples
        ]
        # A median needs company to be an outlier: with fewer than two
        # judged replicas there is no fleet to compare against.
        if len(medians) < 2:
            return []
        fleet_median = percentile(sorted(m for _, m in medians), 50)
        if fleet_median <= 0:
            return []
        flagged: list[tuple[int, float]] = []
        routable = len(healthy)
        for index, median in medians:
            ratio = median / fleet_median
            if ratio > cfg.inflation_factor and routable - 1 >= cfg.min_healthy:
                flagged.append((index, ratio))
                routable -= 1
        return flagged
