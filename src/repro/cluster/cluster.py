"""Multi-replica serving: the static-partition compatibility layer.

.. deprecated::
    ``simulate_cluster`` predates the event-driven fleet simulator
    (:mod:`repro.cluster.fleet`) and is kept as a thin compatibility
    shim over it.  New code should call
    :func:`repro.cluster.fleet.simulate_fleet`, which adds state-aware
    routing, fault injection and overload control; with zero faults and
    unbounded admission the fleet path reproduces this module's old
    static-partition results bit for bit (the routers here are
    state-blind, so online routing makes the same decisions the offline
    pre-partitioning did).

Replicas do not share KV cache or batches, so once the router has
assigned requests, the metrics merge across replicas.  This is how the
paper's "capacity per replica" results extend to fleet sizing: capacity
scales near-linearly with replicas as long as routing keeps the load
balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api import Deployment, ServingConfig
from repro.cluster.router import LeastTokensRouter, Router
from repro.engine.replica import SimulationResult
from repro.metrics.summary import RunMetrics
from repro.types import Request

if TYPE_CHECKING:
    from repro.perf.iteration import ExecutionModel


@dataclass
class ClusterResult:
    """Per-replica results plus the merged view."""

    replica_results: list[SimulationResult]
    assignments: list[int]

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    def merged(self) -> SimulationResult:
        """A fleet-wide view for metric aggregation."""
        if not self.replica_results:
            return SimulationResult(
                requests=[], records=[], makespan=0.0, num_stages=0
            )
        requests: list[Request] = []
        records = []
        makespan = 0.0
        preemptions = 0
        unfinished: list[Request] = []
        for result in self.replica_results:
            requests.extend(result.requests)
            records.extend(result.records)
            makespan = max(makespan, result.makespan)
            preemptions += result.num_preemptions
            unfinished.extend(result.unfinished)
        return SimulationResult(
            requests=requests,
            records=records,
            makespan=makespan,
            num_stages=self.replica_results[0].num_stages,
            num_preemptions=preemptions,
            unfinished=unfinished,
        )


def simulate_cluster(
    deployment: Deployment,
    config: ServingConfig,
    requests: list[Request],
    num_replicas: int,
    router: Router | None = None,
    *,
    max_time: float | None = None,
    exec_model: "ExecutionModel | None" = None,
) -> tuple[ClusterResult, RunMetrics]:
    """Route a trace across ``num_replicas`` and simulate each.

    Deprecated shim over :func:`repro.cluster.fleet.simulate_fleet`
    (zero faults, unbounded admission) kept for callers of the old
    static-partition API.  The input trace is cloned (like
    :func:`repro.api.simulate`), so it can be replayed across fleet
    sizes and router policies.  ``max_time`` and ``exec_model`` match
    the :func:`repro.api.simulate` signature: the former cuts the run
    short, the latter shares one warm execution model across the fleet.
    """
    import warnings

    from repro.cluster.fleet import FleetConfig, simulate_fleet

    warnings.warn(
        "simulate_cluster is deprecated; use "
        "repro.cluster.fleet.simulate_fleet (zero faults, unbounded "
        "admission reproduces the old behavior)",
        DeprecationWarning,
        stacklevel=2,
    )

    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if not requests:
        raise ValueError("simulate_cluster needs at least one request")
    router = router or LeastTokensRouter(num_replicas)

    fleet_result, metrics = simulate_fleet(
        deployment,
        config,
        requests,
        FleetConfig(num_replicas=num_replicas),
        router=router,
        max_time=max_time,
        exec_model=exec_model,
    )
    # Old shape: only replicas that received work, and one assignment
    # per request in arrival order (the order the router saw them).  A
    # ``max_time`` cutoff can leave late requests unrouted; they simply
    # have no assignment.
    arrival_order = sorted(
        fleet_result.requests, key=lambda r: r.arrival_time
    )
    cluster_result = ClusterResult(
        replica_results=[
            result for result in fleet_result.replica_results if result.requests
        ],
        assignments=[
            fleet_result.assignments[r.request_id]
            for r in arrival_order
            if r.request_id in fleet_result.assignments
        ],
    )
    return cluster_result, metrics
