"""Multi-replica serving: route a trace across independent replicas.

Replicas do not share KV cache or batches, so once the router has
assigned requests, each replica simulates independently and the
metrics merge.  This is how the paper's "capacity per replica" results
extend to fleet sizing: capacity scales near-linearly with replicas as
long as routing keeps the load balanced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Deployment, ServingConfig, build_engine, clone_requests
from repro.cluster.router import LeastTokensRouter, Router
from repro.engine.replica import SimulationResult
from repro.metrics.summary import RunMetrics, summarize
from repro.types import Request


@dataclass
class ClusterResult:
    """Per-replica results plus the merged view."""

    replica_results: list[SimulationResult]
    assignments: list[int]

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    def merged(self) -> SimulationResult:
        """A fleet-wide view for metric aggregation."""
        requests: list[Request] = []
        records = []
        makespan = 0.0
        preemptions = 0
        unfinished: list[Request] = []
        for result in self.replica_results:
            requests.extend(result.requests)
            records.extend(result.records)
            makespan = max(makespan, result.makespan)
            preemptions += result.num_preemptions
            unfinished.extend(result.unfinished)
        return SimulationResult(
            requests=requests,
            records=records,
            makespan=makespan,
            num_stages=self.replica_results[0].num_stages,
            num_preemptions=preemptions,
            unfinished=unfinished,
        )


def simulate_cluster(
    deployment: Deployment,
    config: ServingConfig,
    requests: list[Request],
    num_replicas: int,
    router: Router | None = None,
) -> tuple[ClusterResult, RunMetrics]:
    """Route a trace across ``num_replicas`` and simulate each.

    The input trace is cloned (like :func:`repro.api.simulate`), so it
    can be replayed across fleet sizes and router policies.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if not requests:
        raise ValueError("simulate_cluster needs at least one request")
    router = router or LeastTokensRouter(num_replicas)
    if router.num_replicas != num_replicas:
        raise ValueError(
            f"router is configured for {router.num_replicas} replicas, "
            f"cluster has {num_replicas}"
        )

    cloned = clone_requests(requests)
    per_replica: list[list[Request]] = [[] for _ in range(num_replicas)]
    assignments = []
    for request in sorted(cloned, key=lambda r: r.arrival_time):
        replica = router.route(request)
        if not 0 <= replica < num_replicas:
            raise ValueError(f"router returned invalid replica {replica}")
        per_replica[replica].append(request)
        assignments.append(replica)

    results = []
    for assigned in per_replica:
        if not assigned:
            continue
        engine = build_engine(deployment, config)
        results.append(engine.run(assigned))
    cluster_result = ClusterResult(replica_results=results, assignments=assignments)
    return cluster_result, summarize(cluster_result.merged())
