"""Event-driven fleet simulation: online routing, faults, overload.

This is the production-shaped multi-replica layer.  Where the old
cluster path statically pre-partitioned the whole trace and simulated
replicas independently, the fleet simulator advances every replica
through one shared virtual clock and makes *online* decisions:

* **State-aware routing** — each arrival is routed against live
  replica snapshots (queue depth, outstanding tokens, KV occupancy,
  recent TBT tail), so routers see the consequences of their own past
  decisions, exactly like a real gateway.
* **Fault injection** — a deterministic :class:`FaultSchedule` crashes
  and restores replicas mid-run.  A crash throws away the replica's
  uncommitted work; its unfinished requests fail over through the
  router to surviving replicas, restarting prefill (counted via
  ``Request.num_restarts``) while keeping every token the user already
  saw.
* **Overload control** — per-replica admission with bounded queues and
  configurable shed/reject/spill policies plus timeout+backoff retry,
  so goodput degrades gracefully instead of queueing unboundedly.

Determinism: the event loop is driven by (time, insertion-order)
min-heaps and contains no randomness of its own; fault schedules carry
their own seed.  With zero faults and unbounded admission the fleet
path reproduces the old static-partition results bit for bit, and a
1-replica fleet run is exactly ``ReplicaEngine.run`` (the single-replica
``repro.api.simulate`` is implemented as this special case).
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.cluster.degradation import BrownoutConfig, BrownoutController
from repro.cluster.health import HealthConfig, HealthMonitor
from repro.cluster.router import (
    FleetRouter,
    LeastOutstandingTokensRouter,
    ReplicaSnapshot,
    Router,
    as_fleet_router,
)
from repro.engine.simulator import EventQueue
from repro.engine.replica import EngineStats, ReplicaEngine, SimulationResult
from repro.metrics.stats import percentile
from repro.metrics.summary import RunMetrics, summarize
from repro.memory.prefix import PrefixCacheStats
from repro.metrics.timeline import IterationRecord
from repro.types import Request, RequestPhase

if TYPE_CHECKING:
    from repro.api import Deployment, ServingConfig
    from repro.perf.cache import CacheStats
    from repro.perf.iteration import ExecutionModel

_ARRIVE = "arrive"          # payload: (request, attempt)
_FAULT_DOWN = "fault_down"  # payload: ReplicaFault
_FAULT_UP = "fault_up"      # payload: ReplicaFault
_CONTROL_TICK = "control_tick"  # payload: None (health/brownout loops)


# ----------------------------------------------------------------------
# Fault schedules
# ----------------------------------------------------------------------
class FaultKind(str, enum.Enum):
    """What a scheduled fault does to its replica."""

    CRASH = "crash"                  # whole-replica loss (today's behaviour)
    SLOWDOWN = "slowdown"            # straggler GPU / thermal throttle
    CAPACITY_LOSS = "capacity_loss"  # mid-run shrink of the KV block pool


@dataclass(frozen=True)
class ReplicaFault:
    """One scheduled fault (and optional recovery) of one replica.

    ``crash`` kills the engine and fails its requests over; ``slowdown``
    multiplies every iteration's execution time by ``severity`` (a
    perf factor > 1) while the replica keeps serving; ``capacity_loss``
    removes a ``severity`` fraction (in (0, 1)) of the KV pool, forcing
    evictions and preemptions until ``up_at`` restores it.  ``severity``
    is unused for ``crash`` and defaults per kind otherwise.
    """

    replica: int
    down_at: float
    up_at: float | None = None  # None = never recovers
    kind: FaultKind = FaultKind.CRASH
    severity: float | None = None

    _DEFAULT_SEVERITIES = {"slowdown": 2.0, "capacity_loss": 0.5}

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.down_at < 0:
            raise ValueError(f"down_at must be >= 0, got {self.down_at}")
        if self.up_at is not None and self.up_at <= self.down_at:
            raise ValueError(
                f"up_at ({self.up_at}) must be after down_at ({self.down_at})"
            )
        try:
            kind = FaultKind(self.kind)
        except ValueError:
            choices = ", ".join(repr(k.value) for k in FaultKind)
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of {choices}"
            ) from None
        object.__setattr__(self, "kind", kind)
        if kind is FaultKind.CRASH:
            if self.severity is not None:
                raise ValueError("crash faults take no severity")
            return
        severity = self.severity
        if severity is None:
            severity = self._DEFAULT_SEVERITIES[kind.value]
            object.__setattr__(self, "severity", severity)
        if kind is FaultKind.SLOWDOWN and severity <= 1.0:
            raise ValueError(
                f"slowdown severity is a perf multiplier > 1, got {severity}"
            )
        if kind is FaultKind.CAPACITY_LOSS and not 0.0 < severity < 1.0:
            raise ValueError(
                f"capacity_loss severity is a fraction in (0, 1), got {severity}"
            )


@dataclass(frozen=True)
class FailureDomain:
    """A correlated blast radius: replicas sharing a host/rack/zone.

    Members fail *together* under :meth:`FaultSchedule.correlated` —
    the topology models the paper-adjacent production reality that a
    rack event takes out every replica it powers at once.
    """

    name: str
    replicas: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "replicas", tuple(self.replicas))
        if not self.name:
            raise ValueError("domain name must be non-empty")
        if not self.replicas:
            raise ValueError(f"domain {self.name!r} has no replicas")
        if any(r < 0 for r in self.replicas):
            raise ValueError(f"domain {self.name!r} has negative replica indices")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(f"domain {self.name!r} lists a replica twice")


def partition_domains(
    num_replicas: int, num_domains: int, prefix: str = "domain"
) -> tuple[FailureDomain, ...]:
    """Split replica indices into contiguous, near-equal failure domains."""
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if not 1 <= num_domains <= num_replicas:
        raise ValueError(
            f"need 1 <= num_domains <= num_replicas, "
            f"got {num_domains} domains for {num_replicas} replicas"
        )
    base, extra = divmod(num_replicas, num_domains)
    domains: list[FailureDomain] = []
    start = 0
    for i in range(num_domains):
        size = base + (1 if i < extra else 0)
        domains.append(
            FailureDomain(f"{prefix}{i}", tuple(range(start, start + size)))
        )
        start += size
    return tuple(domains)


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic set of replica crash/restore events."""

    faults: tuple[ReplicaFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def validate(self, num_replicas: int) -> None:
        """Reject faults that target missing replicas or overlap in time.

        Two overlapping faults on the same replica would crash an
        already-down slot and later double-restore it, corrupting the
        slot's queue bookkeeping; a fault with no recovery
        (``up_at=None``) overlaps everything after it.  Back-to-back
        faults (``next.down_at == prev.up_at``) are allowed.
        """
        by_replica: dict[int, list[ReplicaFault]] = {}
        for fault in self.faults:
            if fault.replica >= num_replicas:
                raise ValueError(
                    f"fault targets replica {fault.replica}, "
                    f"fleet has {num_replicas}"
                )
            by_replica.setdefault(fault.replica, []).append(fault)
        for replica, faults in by_replica.items():
            faults.sort(key=lambda fault: fault.down_at)
            for previous, current in zip(faults, faults[1:]):
                if previous.up_at is None or current.down_at < previous.up_at:
                    raise ValueError(
                        f"overlapping faults on replica {replica}: "
                        f"down_at={previous.down_at:g} "
                        f"(up_at={'never' if previous.up_at is None else f'{previous.up_at:g}'}) "
                        f"overlaps down_at={current.down_at:g}"
                    )

    @classmethod
    def single(
        cls,
        replica: int,
        down_at: float,
        up_at: float | None = None,
        kind: FaultKind | str = FaultKind.CRASH,
        severity: float | None = None,
    ) -> "FaultSchedule":
        return cls(faults=(ReplicaFault(replica, down_at, up_at, kind, severity),))

    @classmethod
    def poisson(
        cls,
        num_replicas: int,
        rate: float,
        mean_downtime: float | None,
        horizon: float,
        seed: int = 0,
        kind: FaultKind | str = FaultKind.CRASH,
        severity: float | None = None,
    ) -> "FaultSchedule":
        """Seedable memoryless faults: ``rate`` faults/replica-second.

        Each replica independently draws exponential time-to-failure;
        after a fault it stays degraded for an exponential downtime with
        the given mean (or forever when ``mean_downtime`` is None) and
        the failure clock restarts.  Deterministic for a given seed.
        """
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if mean_downtime is not None and mean_downtime <= 0:
            raise ValueError("mean_downtime must be positive (or None)")
        if rate == 0:
            return cls()
        rng = random.Random(seed)
        faults: list[ReplicaFault] = []
        for replica in range(num_replicas):
            t = 0.0
            while True:
                t += rng.expovariate(rate)
                if t >= horizon:
                    break
                if mean_downtime is None:
                    faults.append(ReplicaFault(replica, t, None, kind, severity))
                    break
                downtime = rng.expovariate(1.0 / mean_downtime)
                faults.append(
                    ReplicaFault(replica, t, t + downtime, kind, severity)
                )
                t += downtime
        return cls(tuple(faults))

    @classmethod
    def correlated(
        cls,
        domains: Sequence[FailureDomain],
        rate: float,
        mean_downtime: float | None,
        horizon: float,
        seed: int = 0,
        kind: FaultKind | str = FaultKind.CRASH,
        severity: float | None = None,
    ) -> "FaultSchedule":
        """Seeded domain-level events faulting every member at once.

        ``rate`` is events per domain-second.  Each domain draws its
        own exponential event stream from ``Random(f"{seed}:{name}")``,
        so adding or renaming one domain never perturbs the others'
        draws.  Domains must be disjoint — a shared member would
        receive overlapping faults, which :meth:`validate` rejects.
        """
        if not domains:
            raise ValueError("correlated() needs at least one domain")
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if mean_downtime is not None and mean_downtime <= 0:
            raise ValueError("mean_downtime must be positive (or None)")
        seen: set[int] = set()
        for domain in domains:
            overlap = seen.intersection(domain.replicas)
            if overlap:
                raise ValueError(
                    f"domain {domain.name!r} shares replicas "
                    f"{sorted(overlap)} with an earlier domain"
                )
            seen.update(domain.replicas)
        if rate == 0:
            return cls()
        faults: list[ReplicaFault] = []
        for domain in domains:
            rng = random.Random(f"{seed}:{domain.name}")
            t = 0.0
            while True:
                t += rng.expovariate(rate)
                if t >= horizon:
                    break
                if mean_downtime is None:
                    faults.extend(
                        ReplicaFault(r, t, None, kind, severity)
                        for r in domain.replicas
                    )
                    break
                downtime = rng.expovariate(1.0 / mean_downtime)
                faults.extend(
                    ReplicaFault(r, t, t + downtime, kind, severity)
                    for r in domain.replicas
                )
                t += downtime
        return cls(tuple(faults))


# ----------------------------------------------------------------------
# Overload control
# ----------------------------------------------------------------------
class AdmissionPolicy(str, enum.Enum):
    """What happens when the routed replica's queue is full."""

    REJECT = "reject"  # bounce back to the front-end; retry with backoff
    SHED = "shed"      # drop the arriving request immediately (counted)
    SPILL = "spill"    # try any other replica with room, else reject


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology plus failure/overload knobs."""

    num_replicas: int = 1
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    # Correlated-failure topology (host/rack/zone); informational for
    # routing/telemetry and validated against num_replicas.  Fault
    # schedules over domains come from FaultSchedule.correlated.
    domains: tuple[FailureDomain, ...] = ()
    # Per-replica bound on *waiting* (not yet memory-admitted) requests;
    # None keeps the old unbounded-queue behaviour.
    max_queue_depth: int | None = None
    admission: AdmissionPolicy = AdmissionPolicy.REJECT
    # Rejected requests retry after backoff * factor**attempt seconds,
    # capped at retry_backoff_max and stretched by up to retry_jitter
    # via a seeded per-(request, attempt) draw — deterministic, but
    # de-synchronized across requests so a crash's failed-over cohort
    # doesn't hammer the fleet in lockstep (a retry storm) …
    retry_backoff: float = 0.25
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 8.0
    retry_jitter: float = 0.25
    retry_seed: int = 0
    # … up to max_retries times (then shed), or until the total wait
    # exceeds admission_timeout (then shed), whichever comes first.
    max_retries: int = 4
    admission_timeout: float | None = None
    # Sliding window of recent TBT samples kept per replica for the
    # SLO-aware router and telemetry snapshots.
    tbt_window: int = 128
    # Optional control loops: the straggler health monitor
    # (repro.cluster.health) and the SLO-aware brownout controller
    # (repro.cluster.degradation).  None disables each.
    health: HealthConfig | None = None
    brownout: BrownoutConfig | None = None

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {self.num_replicas}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {self.max_queue_depth}"
            )
        try:
            admission = AdmissionPolicy(self.admission)
        except ValueError:
            choices = ", ".join(repr(p.value) for p in AdmissionPolicy)
            raise ValueError(
                f"unknown admission policy {self.admission!r}; "
                f"choose one of {choices}"
            ) from None
        object.__setattr__(self, "admission", admission)
        if self.retry_backoff <= 0:
            raise ValueError(f"retry_backoff must be positive, got {self.retry_backoff}")
        if self.retry_backoff_factor < 1.0:
            raise ValueError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor}"
            )
        if self.retry_backoff_max < self.retry_backoff:
            raise ValueError(
                f"retry_backoff_max ({self.retry_backoff_max}) must be >= "
                f"retry_backoff ({self.retry_backoff})"
            )
        if self.retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {self.retry_jitter}")
        object.__setattr__(self, "domains", tuple(self.domains))
        members: set[int] = set()
        for domain in self.domains:
            if not isinstance(domain, FailureDomain):
                raise ValueError(f"domains must be FailureDomain, got {domain!r}")
            for member in domain.replicas:
                if member >= self.num_replicas:
                    raise ValueError(
                        f"domain {domain.name!r} lists replica {member}, "
                        f"fleet has {self.num_replicas}"
                    )
                if member in members:
                    raise ValueError(
                        f"replica {member} appears in two failure domains"
                    )
                members.add(member)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.admission_timeout is not None and self.admission_timeout <= 0:
            raise ValueError(
                f"admission_timeout must be positive or None, "
                f"got {self.admission_timeout}"
            )
        if self.tbt_window < 1:
            raise ValueError(f"tbt_window must be >= 1, got {self.tbt_window}")


# ----------------------------------------------------------------------
# Telemetry events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetEvent:
    """One control-plane decision, for telemetry and determinism tests.

    Kinds: ``route`` (delivery to a replica), ``reject`` (bounced by
    admission control; ``retry_at`` set when a retry was scheduled),
    ``shed`` (dropped for good — brownout sheds carry
    ``brownout_tenant``/``brownout_context`` reasons), ``failover``
    (re-routed off a crashed replica), ``fault_down`` / ``fault_up``
    (crash/restore), ``fault_degrade`` / ``fault_recover``
    (slowdown and capacity-loss windows), ``drain_start`` /
    ``health_restart`` (straggler monitor) and ``brownout_enter`` /
    ``brownout_exit`` (degradation-level changes).
    """

    time: float
    kind: str
    request_id: int | None = None
    replica: int | None = None
    attempt: int = 0
    reason: str | None = None
    queue_depth: int | None = None
    outstanding_tokens: int | None = None
    retry_at: float | None = None


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def _add_prefix_stats(
    total: PrefixCacheStats | None, stats: PrefixCacheStats | None
) -> PrefixCacheStats | None:
    """Accumulate prefix-cache counters without mutating ``stats``."""
    if stats is None:
        return total
    if total is None:
        total = PrefixCacheStats()
    total.hits += stats.hits
    total.misses += stats.misses
    total.hit_tokens += stats.hit_tokens
    total.cow_copies += stats.cow_copies
    total.registrations += stats.registrations
    total.evictions += stats.evictions
    return total


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    # Cloned input trace, in input order (includes shed requests).
    requests: list[Request]
    # Requests dropped by overload control, in shed order.
    shed: list[Request]
    # One result per replica slot.  With faults a request that moved
    # between replicas appears in each incarnation's request list; use
    # ``requests``/``merged()`` for fleet-wide accounting.
    replica_results: list[SimulationResult]
    # Every routing/rejection/failover decision, in decision order.
    events: list[FleetEvent]
    # request_id -> replica of the *first* delivery.
    assignments: dict[int, int]
    makespan: float
    num_replicas: int
    num_rejections: int
    num_failovers: int
    cache_stats: "CacheStats | None" = None

    @property
    def finished_requests(self) -> list[Request]:
        return [r for r in self.requests if r.is_finished]

    @property
    def num_shed(self) -> int:
        return len(self.shed)

    @property
    def num_restarts(self) -> int:
        return sum(r.num_restarts for r in self.requests)

    def lost_requests(self) -> list[Request]:
        """Requests neither finished nor explicitly shed.

        Empty for every run that drains its queues (the conservation
        invariant); non-empty only when ``max_time`` cut the run short.
        """
        shed_ids = {r.request_id for r in self.shed}
        return [
            r
            for r in self.requests
            if not r.is_finished and r.request_id not in shed_ids
        ]

    def merged(self) -> SimulationResult:
        """The fleet-wide view used for metric aggregation."""
        records: list[IterationRecord] = []
        num_stages = 0
        preemptions = 0
        engine_stats = None
        prefix_stats = None
        for result in self.replica_results:
            records.extend(result.records)
            num_stages = max(num_stages, result.num_stages)
            preemptions += result.num_preemptions
            stats = result.engine_stats
            if stats is not None:
                engine_stats = (
                    stats
                    if engine_stats is None
                    else EngineStats(
                        kind=stats.kind,
                        num_events=engine_stats.num_events + stats.num_events,
                        num_batches=engine_stats.num_batches + stats.num_batches,
                        wall_time_s=engine_stats.wall_time_s + stats.wall_time_s,
                    )
                )
            # Per-replica prefix stores are independent; the fleet view
            # sums their counters (incarnations after a crash included).
            prefix_stats = _add_prefix_stats(prefix_stats, result.prefix_stats)
        return SimulationResult(
            requests=list(self.requests),
            records=records,
            makespan=self.makespan,
            num_stages=num_stages,
            num_preemptions=preemptions,
            unfinished=[r for r in self.requests if not r.is_finished],
            cache_stats=self.cache_stats,
            engine_stats=engine_stats,
            prefix_stats=prefix_stats,
        )


# ----------------------------------------------------------------------
# One replica slot (survives crash/restore cycles)
# ----------------------------------------------------------------------
class _ReplicaSlot:
    """A replica index that engines come and go from across faults."""

    def __init__(
        self,
        index: int,
        deployment: "Deployment",
        config: "ServingConfig",
        exec_model: "ExecutionModel",
        tbt_window: int,
    ) -> None:
        self.index = index
        self._deployment = deployment
        self._config = config
        self._exec_model = exec_model
        self._tbt_window = tbt_window
        self.alive = True
        self.engine: ReplicaEngine | None = None
        self.num_stages = 0
        self.num_incarnations = 0
        # Carried across incarnations: completed iteration records,
        # preemption counts, and requests that finished here.
        self._past_records: list[IterationRecord] = []
        self._past_preemptions = 0
        self._finished_past: list[Request] = []
        self._past_events = 0
        self._past_batches = 0
        self._past_wall_s = 0.0
        self._past_prefix: PrefixCacheStats | None = None
        self.recent_tbts: list[float] = []
        # Memoized p99 over recent_tbts: routers snapshot every replica
        # on every routing decision, but the window only changes when a
        # token lands here — recomputing the percentile per snapshot
        # dominated fleet wall-clock at high arrival rates.
        self._p99_cache: float | None = None
        self._p99_dirty = False
        # Health-monitor drain flag: the router stops new work, the
        # in-flight requests finish, then the monitor restarts the slot.
        self.draining = False
        # Active degraded-mode fault state, persisted across reboots so
        # a restart inside a slowdown/capacity window stays degraded.
        self._perf_scale = 1.0
        self._capacity_fraction = 0.0
        self._capacity_lost = 0
        # Brownout budget clamp, re-applied to every new incarnation.
        self.budget_override: int | None = None
        self._boot()

    def _boot(self) -> None:
        from repro.api import build_engine

        self.engine = build_engine(
            self._deployment, self._config, exec_model=self._exec_model
        )
        self.engine.token_observer = self._observe_token
        self.num_stages = self.engine.num_stages
        self.num_incarnations += 1
        if self._perf_scale != 1.0:
            self.engine.perf_scale = self._perf_scale
        if self._capacity_fraction:
            self._capacity_lost = self.engine.scheduler.memory.shed_capacity(
                self._capacity_fraction
            )
        if self.budget_override is not None:
            self.engine.scheduler.override_token_budget(self.budget_override)

    def _observe_token(self, request: Request, tbt: float, now: float) -> None:
        self.recent_tbts.append(tbt)
        if len(self.recent_tbts) > self._tbt_window:
            del self.recent_tbts[: -self._tbt_window]
        self._p99_dirty = True

    def _recent_p99(self) -> float | None:
        if self._p99_dirty:
            self._p99_cache = (
                percentile(self.recent_tbts, 99) if self.recent_tbts else None
            )
            self._p99_dirty = False
        return self._p99_cache

    # -- event-loop interface -----------------------------------------
    def next_event_time(self) -> float | None:
        if not self.alive:
            return None
        return self.engine.next_event_time()

    def snapshot(self, now: float) -> ReplicaSnapshot:
        if not self.alive:
            return ReplicaSnapshot(
                index=self.index,
                alive=False,
                queue_depth=0,
                num_running=0,
                num_pending=0,
                outstanding_tokens=0,
                kv_occupancy=0.0,
                recent_p99_tbt=None,
                draining=False,
            )
        # The engines expose these as gauges (the object engine scans,
        # the vectorized engine keeps counters — same integers) so a
        # router snapshot never forces a full state synchronization.
        scheduler = self.engine.scheduler
        return ReplicaSnapshot(
            index=self.index,
            alive=True,
            queue_depth=scheduler.num_waiting,
            num_running=scheduler.num_running,
            num_pending=self.engine.num_pending(),
            outstanding_tokens=self.engine.outstanding_tokens(),
            kv_occupancy=scheduler.memory.occupancy,
            recent_p99_tbt=self._recent_p99(),
            draining=self.draining,
        )

    # -- fault transitions --------------------------------------------
    def crash(self, now: float) -> list[Request]:
        """Kill the current incarnation; return requests to fail over.

        Committed iteration records are kept (that work ran), in-flight
        iterations are discarded (they never completed), and every
        unfinished resident request restarts its prefill — emitted
        tokens were already streamed to users, so they fold into the
        restarted prefill exactly like a recompute preemption.
        """
        assert self.alive and self.engine is not None
        failed = self.engine.pending_requests()
        self._past_records.extend(
            r for r in self.engine.records if r.end <= now + 1e-12
        )
        self._past_preemptions += self.engine.scheduler.num_preemptions
        self._finished_past.extend(
            r for r in self.engine.all_requests if r.is_finished
        )
        stats = self.engine.engine_stats()
        self._past_events += stats.num_events
        self._past_batches += stats.num_batches
        self._past_wall_s += stats.wall_time_s
        self._past_prefix = _add_prefix_stats(
            self._past_prefix,
            getattr(self.engine.scheduler.memory, "prefix_stats", None),
        )
        self.engine = None
        self.alive = False
        self.draining = False
        # The dead engine's shed KV pool died with it; a reboot inside
        # the fault window re-sheds from the fresh pool.
        self._capacity_lost = 0
        self.recent_tbts.clear()
        self._p99_dirty = True
        for request in failed:
            if request.phase is not RequestPhase.QUEUED or request.context_len > 0:
                request.restart_after_preemption()
        return failed

    def restore(self, now: float) -> None:
        assert not self.alive
        self.alive = True
        self._boot()

    def recycle(self, now: float) -> list[Request]:
        """Drain-restart: crash plus immediate reboot.

        Returns stragglers to fail over — empty when the caller waited
        for the drain to complete (``engine.num_pending() == 0``).
        """
        failed = self.crash(now)
        self.restore(now)
        return failed

    # -- degraded-mode faults ------------------------------------------
    def slow_down(self, factor: float) -> None:
        self._perf_scale = factor
        if self.engine is not None:
            self.engine.perf_scale = factor

    def restore_speed(self) -> None:
        self._perf_scale = 1.0
        if self.engine is not None:
            self.engine.perf_scale = 1.0

    def lose_capacity(self, fraction: float) -> None:
        self._capacity_fraction = fraction
        if self.engine is not None:
            self._capacity_lost = self.engine.scheduler.memory.shed_capacity(
                fraction
            )

    def restore_capacity(self) -> None:
        self._capacity_fraction = 0.0
        if self.engine is not None and self._capacity_lost:
            self.engine.scheduler.memory.restore_capacity(self._capacity_lost)
        self._capacity_lost = 0

    def apply_budget_override(self, budget: int | None) -> None:
        self.budget_override = budget
        if self.engine is not None:
            self.engine.scheduler.override_token_budget(budget)

    # -- end of run ----------------------------------------------------
    def finalize(
        self, makespan: float, cache_stats: "CacheStats | None"
    ) -> SimulationResult:
        records = list(self._past_records)
        preemptions = self._past_preemptions
        requests = list(self._finished_past)
        events = self._past_events
        batches = self._past_batches
        wall_s = self._past_wall_s
        prefix_stats = self._past_prefix
        kind = self._config.engine
        if self.engine is not None:
            records.extend(self.engine.records)
            preemptions += self.engine.scheduler.num_preemptions
            requests.extend(self.engine.all_requests)
            stats = self.engine.engine_stats()
            events += stats.num_events
            batches += stats.num_batches
            wall_s += stats.wall_time_s
            kind = stats.kind
            prefix_stats = _add_prefix_stats(
                prefix_stats,
                getattr(self.engine.scheduler.memory, "prefix_stats", None),
            )
        return SimulationResult(
            requests=requests,
            records=records,
            makespan=makespan,
            num_stages=self.num_stages,
            num_preemptions=preemptions,
            unfinished=[r for r in requests if not r.is_finished],
            cache_stats=cache_stats,
            engine_stats=EngineStats(
                kind=kind,
                num_events=events,
                num_batches=batches,
                wall_time_s=wall_s,
            ),
            prefix_stats=prefix_stats,
        )


# ----------------------------------------------------------------------
# The fleet simulator
# ----------------------------------------------------------------------
class FleetSimulator:
    """Discrete-event co-simulation of N replicas behind one router."""

    def __init__(
        self,
        deployment: "Deployment",
        config: "ServingConfig",
        fleet: FleetConfig,
        router: FleetRouter | Router | None = None,
        exec_model: "ExecutionModel | None" = None,
    ) -> None:
        from repro.api import execution_model_for

        fleet.faults.validate(fleet.num_replicas)
        self.fleet = fleet
        # One (typically cached) execution model warms across replicas:
        # identical deployments price identical batches, so the fleet
        # shares cache entries instead of rebuilding a cold model per
        # replica.
        self.exec_model = (
            exec_model
            if exec_model is not None
            else execution_model_for(deployment, config)
        )
        self.router = as_fleet_router(
            router
            if router is not None
            else LeastOutstandingTokensRouter(fleet.num_replicas)
        )
        if self.router.num_replicas != fleet.num_replicas:
            raise ValueError(
                f"router is configured for {self.router.num_replicas} replicas, "
                f"cluster has {fleet.num_replicas}"
            )
        self.replicas = [
            _ReplicaSlot(i, deployment, config, self.exec_model, fleet.tbt_window)
            for i in range(fleet.num_replicas)
        ]
        self.events: list[FleetEvent] = []
        self.assignments: dict[int, int] = {}
        self.shed: list[Request] = []
        self.num_rejections = 0
        self.num_failovers = 0
        # Control loops, both optional and both driven by the shared
        # control-tick event stream.
        self.health = (
            HealthMonitor(fleet.health, fleet.num_replicas)
            if fleet.health is not None
            else None
        )
        self.brownout = (
            BrownoutController(fleet.brownout)
            if fleet.brownout is not None
            else None
        )
        intervals = [
            cfg.check_interval
            for cfg in (fleet.health, fleet.brownout)
            if cfg is not None
        ]
        self._tick_interval = min(intervals) if intervals else None
        # Per-slot next-event-time cache: every loop iteration mutates
        # at most one slot (a step, a delivery, or a fault transition),
        # so polling all N engines per event is N-1 parts waste.
        self._slot_times: list[float | None] = [None] * fleet.num_replicas
        self._slot_dirty: list[bool] = [True] * fleet.num_replicas

    # -- main loop -----------------------------------------------------
    def run(
        self, requests: list[Request], max_time: float | None = None
    ) -> FleetResult:
        from repro.api import clone_requests

        if not requests:
            raise ValueError("simulate_fleet needs at least one request")
        cloned = clone_requests(requests)
        queue = EventQueue()
        # Fault events enqueue first so a crash at the exact instant of
        # an arrival is observed by that arrival's routing decision.
        for fault in self.fleet.faults.faults:
            queue.push(fault.down_at, _FAULT_DOWN, fault)
            if fault.up_at is not None:
                queue.push(fault.up_at, _FAULT_UP, fault)
        for request in cloned:
            queue.push(request.arrival_time, _ARRIVE, (request, 0))
        if self._tick_interval is not None:
            queue.push(self._tick_interval, _CONTROL_TICK, None)

        now = 0.0
        while True:
            global_time = queue.peek_time()
            replica_time, replica_idx = self._next_replica_event()
            if global_time is None and replica_time is None:
                break
            # Global events win ties: in the single-engine loop every
            # arrival is pushed before any stage event, so arrivals pop
            # first at equal timestamps — the fleet preserves that.
            take_global = replica_time is None or (
                global_time is not None and global_time <= replica_time
            )
            chosen_time = global_time if take_global else replica_time
            if max_time is not None and chosen_time > max_time:
                now = chosen_time
                break
            if take_global:
                now, kind, payload = queue.pop()
                self._handle(kind, payload, now, queue)
            else:
                now = self.replicas[replica_idx].engine.step()
                self._slot_dirty[replica_idx] = True

        cache_stats = getattr(self.exec_model, "cache_stats", None)
        result = FleetResult(
            requests=cloned,
            shed=list(self.shed),
            replica_results=[
                slot.finalize(now, cache_stats) for slot in self.replicas
            ],
            events=list(self.events),
            assignments=dict(self.assignments),
            makespan=now,
            num_replicas=self.fleet.num_replicas,
            num_rejections=self.num_rejections,
            num_failovers=self.num_failovers,
            cache_stats=cache_stats,
        )
        lost = result.lost_requests()
        if lost and max_time is None:
            raise RuntimeError(
                f"fleet simulation drained its event queue with {len(lost)} "
                "unfinished requests — scheduler/memory deadlock "
                f"(first stuck: request {lost[0].request_id})"
            )
        return result

    def _next_replica_event(self) -> tuple[float | None, int]:
        times = self._slot_times
        dirty = self._slot_dirty
        best_time: float | None = None
        best_idx = -1
        for i, slot in enumerate(self.replicas):
            if dirty[i]:
                times[i] = slot.next_event_time()
                dirty[i] = False
            t = times[i]
            if t is not None and (best_time is None or t < best_time):
                best_time, best_idx = t, i
        return best_time, best_idx

    # -- event handlers ------------------------------------------------
    def _handle(self, kind: str, payload: Any, now: float, queue: EventQueue) -> None:
        if kind == _ARRIVE:
            request, attempt = payload
            self._route(request, attempt, now, queue)
        elif kind == _FAULT_DOWN:
            if payload.kind is FaultKind.CRASH:
                self._crash_replica(payload.replica, now, queue)
            else:
                self._degrade_replica(payload, now)
        elif kind == _FAULT_UP:
            if payload.kind is FaultKind.CRASH:
                self._restore_replica(payload.replica, now)
            else:
                self._recover_replica(payload, now)
        elif kind == _CONTROL_TICK:
            self._control_tick(now, queue)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown fleet event kind {kind!r}")

    def _crash_replica(self, index: int, now: float, queue: EventQueue) -> None:
        slot = self.replicas[index]
        if not slot.alive:
            return
        failed = slot.crash(now)
        self._slot_dirty[index] = True
        self.events.append(
            FleetEvent(time=now, kind="fault_down", replica=index, reason=f"{len(failed)} failed over")
        )
        # Fail over in arrival order so re-routing is deterministic and
        # FCFS-fair regardless of the engine's internal pool order.
        for request in sorted(failed, key=lambda r: (r.arrival_time, r.request_id)):
            self.num_failovers += 1
            self.events.append(
                FleetEvent(
                    time=now,
                    kind="failover",
                    request_id=request.request_id,
                    replica=index,
                )
            )
            queue.push(now, _ARRIVE, (request, 0))

    def _restore_replica(self, index: int, now: float) -> None:
        slot = self.replicas[index]
        if slot.alive:
            return
        slot.restore(now)
        self._slot_dirty[index] = True
        self.events.append(FleetEvent(time=now, kind="fault_up", replica=index))

    def _degrade_replica(self, fault: ReplicaFault, now: float) -> None:
        slot = self.replicas[fault.replica]
        if fault.kind is FaultKind.SLOWDOWN:
            slot.slow_down(fault.severity)
        else:
            slot.lose_capacity(fault.severity)
        self._slot_dirty[fault.replica] = True
        self.events.append(
            FleetEvent(
                time=now,
                kind="fault_degrade",
                replica=fault.replica,
                reason=f"{fault.kind.value}:{fault.severity:g}",
            )
        )

    def _recover_replica(self, fault: ReplicaFault, now: float) -> None:
        slot = self.replicas[fault.replica]
        if fault.kind is FaultKind.SLOWDOWN:
            slot.restore_speed()
        else:
            slot.restore_capacity()
            if slot.alive:
                # The shrunken pool may have stalled the replica with
                # waiting-but-unadmittable work and no internal events;
                # restoring capacity must nudge the scheduler.
                slot.engine.kick(now)
        self._slot_dirty[fault.replica] = True
        self.events.append(
            FleetEvent(
                time=now,
                kind="fault_recover",
                replica=fault.replica,
                reason=fault.kind.value,
            )
        )

    # -- control loops -------------------------------------------------
    def _control_tick(self, now: float, queue: EventQueue) -> None:
        if self.health is not None:
            self._run_health(now)
        if self.brownout is not None:
            self._run_brownout(now)
        # Re-arm only while the run can still make progress, so the
        # tick stream never keeps a drained event loop alive.
        if queue.peek_time() is not None or any(
            slot.alive and slot.engine.num_pending() > 0
            for slot in self.replicas
        ):
            queue.push(now + self._tick_interval, _CONTROL_TICK, None)

    def _run_health(self, now: float) -> None:
        for index, ratio in self.health.flag_stragglers(self.replicas):
            slot = self.replicas[index]
            slot.draining = True
            self.events.append(
                FleetEvent(
                    time=now,
                    kind="drain_start",
                    replica=index,
                    reason=f"tbt_inflation={ratio:.2f}",
                )
            )
        for slot in self.replicas:
            if (
                slot.draining
                and slot.alive
                and slot.engine.num_pending() == 0
            ):
                slot.draining = False
                slot.recycle(now)
                self._slot_dirty[slot.index] = True
                self.events.append(
                    FleetEvent(time=now, kind="health_restart", replica=slot.index)
                )

    def _run_brownout(self, now: float) -> None:
        change = self.brownout.evaluate(now, self.replicas)
        if change is None:
            return
        budget = self.brownout.active_budget()
        for slot in self.replicas:
            slot.apply_budget_override(budget)
            if slot.alive:
                self._slot_dirty[slot.index] = True
        self.events.append(
            FleetEvent(
                time=now,
                kind="brownout_enter" if change.direction > 0 else "brownout_exit",
                reason=(
                    f"level={change.level}"
                    if change.p99_tbt is None
                    else f"level={change.level} p99_tbt={change.p99_tbt:.3f}"
                ),
            )
        )

    def _route(
        self, request: Request, attempt: int, now: float, queue: EventQueue
    ) -> None:
        if self.brownout is not None:
            veto = self.brownout.admission_veto(request)
            if veto is not None:
                self._shed(request, attempt, now, None, veto)
                return
        snapshots = [slot.snapshot(now) for slot in self.replicas]
        if any(s.draining for s in snapshots) and any(
            s.alive and not s.draining for s in snapshots
        ):
            # Draining replicas take no new work while at least one
            # routable replica remains: state-blind routers see them as
            # down and the dead-pick failover below walks past them.
            snapshots = [
                replace(s, alive=False) if s.draining else s for s in snapshots
            ]
        alive = [s for s in snapshots if s.alive]
        if not alive:
            self._reject(request, attempt, now, queue, None, "no_alive_replica")
            return
        choice = self.router.route(request, now, snapshots)
        num = self.fleet.num_replicas
        if not isinstance(choice, int) or not 0 <= choice < num:
            raise ValueError(f"router returned invalid replica {choice!r}")
        if not snapshots[choice].alive:
            # A state-blind router picked a crashed replica; fail over
            # deterministically to the next alive index.
            for shift in range(1, num):
                candidate = (choice + shift) % num
                if snapshots[candidate].alive:
                    choice = candidate
                    break
        depth_limit = self.fleet.max_queue_depth
        if (
            depth_limit is not None
            and snapshots[choice].queue_depth >= depth_limit
        ):
            policy = self.fleet.admission
            if policy is AdmissionPolicy.SPILL:
                open_replicas = [s for s in alive if s.queue_depth < depth_limit]
                if not open_replicas:
                    self._reject(request, attempt, now, queue, choice, "fleet_saturated")
                    return
                choice = min(
                    open_replicas,
                    key=lambda s: (s.queue_depth, s.outstanding_tokens, s.index),
                ).index
            elif policy is AdmissionPolicy.SHED:
                self._shed(request, attempt, now, choice, "queue_full")
                return
            else:
                self._reject(request, attempt, now, queue, choice, "queue_full")
                return
        # Policy admission hook (see repro.scheduling.policy): a
        # scheduler exposing ``admission_hook`` sees the chosen
        # replica's live snapshot and may defer the request into the
        # backoff-retry loop.  Schedulers without the hook — including
        # every vectorized core — admit unconditionally, as before.
        hook = getattr(self.replicas[choice].engine.scheduler, "admission_hook", None)
        if hook is not None and not hook(snapshots[choice], request, now):
            self._reject(request, attempt, now, queue, choice, "policy_deferred")
            return
        self.replicas[choice].engine.deliver(request, now)
        self._slot_dirty[choice] = True
        self.assignments.setdefault(request.request_id, choice)
        self.events.append(
            FleetEvent(
                time=now,
                kind="route",
                request_id=request.request_id,
                replica=choice,
                attempt=attempt,
                queue_depth=snapshots[choice].queue_depth,
                outstanding_tokens=snapshots[choice].outstanding_tokens,
            )
        )

    def _reject(
        self,
        request: Request,
        attempt: int,
        now: float,
        queue: EventQueue,
        replica: int | None,
        reason: str,
    ) -> None:
        self.num_rejections += 1
        fleet = self.fleet
        backoff = min(
            fleet.retry_backoff * (fleet.retry_backoff_factor**attempt),
            fleet.retry_backoff_max,
        )
        if fleet.retry_jitter > 0.0:
            # Stateless seeded jitter keyed by (seed, request, attempt):
            # concurrent rejects de-synchronize without consuming shared
            # RNG state, which would couple determinism to reject order.
            draw = random.Random(
                f"{fleet.retry_seed}:{request.request_id}:{attempt}"
            ).random()
            backoff *= 1.0 + fleet.retry_jitter * draw
        retry_at = now + backoff
        timed_out = (
            fleet.admission_timeout is not None
            and retry_at - request.arrival_time > fleet.admission_timeout
        )
        if attempt >= fleet.max_retries or timed_out:
            self.events.append(
                FleetEvent(
                    time=now,
                    kind="reject",
                    request_id=request.request_id,
                    replica=replica,
                    attempt=attempt,
                    reason=reason,
                )
            )
            self._shed(
                request,
                attempt,
                now,
                replica,
                "timeout" if timed_out else "retries_exhausted",
            )
            return
        self.events.append(
            FleetEvent(
                time=now,
                kind="reject",
                request_id=request.request_id,
                replica=replica,
                attempt=attempt,
                reason=reason,
                retry_at=retry_at,
            )
        )
        queue.push(retry_at, _ARRIVE, (request, attempt + 1))

    def _shed(
        self,
        request: Request,
        attempt: int,
        now: float,
        replica: int | None,
        reason: str,
    ) -> None:
        self.shed.append(request)
        self.events.append(
            FleetEvent(
                time=now,
                kind="shed",
                request_id=request.request_id,
                replica=replica,
                attempt=attempt,
                reason=reason,
            )
        )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def simulate_fleet(
    deployment: "Deployment",
    config: "ServingConfig",
    requests: list[Request],
    fleet: FleetConfig | None = None,
    *,
    router: FleetRouter | Router | None = None,
    max_time: float | None = None,
    exec_model: "ExecutionModel | None" = None,
) -> tuple[FleetResult, RunMetrics]:
    """Run a trace through an online fleet and summarize it.

    The unified entry point: ``repro.api.simulate`` is the 1-replica
    special case and ``simulate_cluster`` the no-fault compatibility
    shim.  The input trace is cloned, so it can be replayed across
    fleet sizes, routers and fault schedules.  ``exec_model`` (see
    ``repro.api.execution_model_for``) shares one — typically cached —
    execution model across the whole fleet and across calls.
    """
    simulator = FleetSimulator(
        deployment,
        config,
        fleet if fleet is not None else FleetConfig(),
        router=router,
        exec_model=exec_model,
    )
    result = simulator.run(requests, max_time=max_time)
    return result, summarize(result.merged())
