"""Multi-replica serving: routers and fleet simulation."""

from repro.cluster.cluster import ClusterResult, simulate_cluster
from repro.cluster.fleet import (
    AdmissionPolicy,
    FaultSchedule,
    FleetConfig,
    FleetEvent,
    FleetResult,
    FleetSimulator,
    ReplicaFault,
    simulate_fleet,
)
from repro.cluster.router import (
    FleetRouter,
    LeastOutstandingTokensRouter,
    LeastTokensRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    SloAwareRouter,
    as_fleet_router,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastTokensRouter",
    "FleetRouter",
    "ReplicaSnapshot",
    "LeastOutstandingTokensRouter",
    "SloAwareRouter",
    "as_fleet_router",
    "ClusterResult",
    "simulate_cluster",
    "ReplicaFault",
    "FaultSchedule",
    "AdmissionPolicy",
    "FleetConfig",
    "FleetEvent",
    "FleetResult",
    "FleetSimulator",
    "simulate_fleet",
]
