"""Multi-replica serving: routers and fleet simulation."""

from repro.cluster.cluster import ClusterResult, simulate_cluster
from repro.cluster.degradation import (
    BrownoutConfig,
    BrownoutController,
    DegradationLevel,
)
from repro.cluster.fleet import (
    AdmissionPolicy,
    FailureDomain,
    FaultKind,
    FaultSchedule,
    FleetConfig,
    FleetEvent,
    FleetResult,
    FleetSimulator,
    ReplicaFault,
    partition_domains,
    simulate_fleet,
)
from repro.cluster.health import HealthConfig, HealthMonitor
from repro.cluster.router import (
    FleetRouter,
    LeastOutstandingTokensRouter,
    LeastTokensRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    SloAwareRouter,
    as_fleet_router,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastTokensRouter",
    "FleetRouter",
    "ReplicaSnapshot",
    "LeastOutstandingTokensRouter",
    "SloAwareRouter",
    "as_fleet_router",
    "ClusterResult",
    "simulate_cluster",
    "ReplicaFault",
    "FaultKind",
    "FaultSchedule",
    "FailureDomain",
    "partition_domains",
    "AdmissionPolicy",
    "FleetConfig",
    "FleetEvent",
    "FleetResult",
    "FleetSimulator",
    "simulate_fleet",
    "HealthConfig",
    "HealthMonitor",
    "BrownoutConfig",
    "BrownoutController",
    "DegradationLevel",
]
