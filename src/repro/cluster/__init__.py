"""Multi-replica serving: routers and fleet simulation."""

from repro.cluster.cluster import ClusterResult, simulate_cluster
from repro.cluster.router import LeastTokensRouter, RoundRobinRouter, Router

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastTokensRouter",
    "ClusterResult",
    "simulate_cluster",
]
