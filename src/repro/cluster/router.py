"""Request routers for multi-replica serving.

Routing happens at arrival time using only information available to a
real front-end at that moment: the request's prompt/output lengths and
each replica's outstanding assigned work.  (True join-shortest-queue
with live engine state would couple the replica simulations; the
assigned-work heuristic is what production gateways typically run.)
"""

from __future__ import annotations

import abc

from repro.types import Request


class Router(abc.ABC):
    """Assigns each arriving request to a replica index."""

    def __init__(self, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas

    @abc.abstractmethod
    def route(self, request: Request) -> int:
        """Replica index in ``[0, num_replicas)`` for this request."""


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of request size."""

    def __init__(self, num_replicas: int) -> None:
        super().__init__(num_replicas)
        self._next = 0

    def route(self, request: Request) -> int:
        choice = self._next
        self._next = (self._next + 1) % self.num_replicas
        return choice


class LeastTokensRouter(Router):
    """Send to the replica with the fewest outstanding assigned tokens.

    Outstanding work is tracked as the total (prompt + expected output)
    tokens assigned so far, decayed by nothing — a conservative
    front-end estimate that balances heavy-tailed prompt lengths much
    better than round-robin.
    """

    def __init__(self, num_replicas: int) -> None:
        super().__init__(num_replicas)
        self._assigned_tokens = [0] * num_replicas

    def route(self, request: Request) -> int:
        choice = min(range(self.num_replicas), key=lambda i: self._assigned_tokens[i])
        self._assigned_tokens[choice] += request.total_len
        return choice
