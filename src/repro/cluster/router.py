"""Request routers for multi-replica serving.

Two router generations coexist:

* :class:`Router` — the legacy *state-blind* interface.  It sees only
  the request and its own bookkeeping (cumulative assigned work), which
  is what a front-end that never hears back from replicas can run.
* :class:`FleetRouter` — the state-aware interface used by the
  event-driven fleet simulator (:mod:`repro.cluster.fleet`).  At every
  arrival it receives a live :class:`ReplicaSnapshot` per replica —
  queue depth, outstanding tokens, KV occupancy, recently observed TBT
  tail — exactly the feedback a production gateway gets from replica
  health/metrics endpoints.

Legacy routers still work everywhere: the fleet wraps them in an
adapter that ignores the snapshots (and fails over deterministically
when a state-blind router picks a crashed replica).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.types import Request


# ----------------------------------------------------------------------
# Live replica state (produced by the fleet simulator each arrival)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaSnapshot:
    """What the routing tier knows about one replica *right now*."""

    index: int
    alive: bool
    # Requests queued at the replica but not yet admitted to KV memory.
    queue_depth: int
    # Requests admitted and progressing (prefill or decode).
    num_running: int
    # All unfinished requests resident on the replica.
    num_pending: int
    # Remaining prefill + remaining output tokens across pending work.
    outstanding_tokens: int
    # Fraction of KV-cache capacity currently claimed, in [0, 1].
    kv_occupancy: float
    # P99 over the replica's recent TBT samples (None before any
    # decode tokens have been observed, or right after a restart).
    recent_p99_tbt: float | None
    # Health monitor is draining this replica: alive and finishing its
    # in-flight work, but not accepting new arrivals.
    draining: bool = False


# ----------------------------------------------------------------------
# Legacy state-blind routers
# ----------------------------------------------------------------------
class Router(abc.ABC):
    """Assigns each arriving request to a replica index (state-blind)."""

    def __init__(self, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas

    @abc.abstractmethod
    def route(self, request: Request) -> int:
        """Replica index in ``[0, num_replicas)`` for this request."""


class RoundRobinRouter(Router):
    """Cycle through replicas regardless of request size."""

    def __init__(self, num_replicas: int) -> None:
        super().__init__(num_replicas)
        self._next = 0

    def route(self, request: Request) -> int:
        choice = self._next
        self._next = (self._next + 1) % self.num_replicas
        return choice


class LeastTokensRouter(Router):
    """Send to the replica with the fewest *cumulatively assigned* tokens.

    Outstanding work is tracked as the total (prompt + expected output)
    tokens assigned so far, decayed by nothing — a conservative
    front-end estimate that balances heavy-tailed prompt lengths much
    better than round-robin.  For the live-state version see
    :class:`LeastOutstandingTokensRouter`.
    """

    def __init__(self, num_replicas: int) -> None:
        super().__init__(num_replicas)
        self._assigned_tokens = [0] * num_replicas

    def route(self, request: Request) -> int:
        choice = min(range(self.num_replicas), key=lambda i: self._assigned_tokens[i])
        self._assigned_tokens[choice] += request.total_len
        return choice


# ----------------------------------------------------------------------
# State-aware fleet routers
# ----------------------------------------------------------------------
class FleetRouter(abc.ABC):
    """Routes arrivals against live replica state (fleet simulator)."""

    def __init__(self, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas

    @abc.abstractmethod
    def route(
        self, request: Request, now: float, replicas: list[ReplicaSnapshot]
    ) -> int:
        """Replica index for this request; should pick an alive replica."""


def _least_loaded(pool: list[ReplicaSnapshot]) -> int:
    """Lowest outstanding work; queue depth then index break ties."""
    return min(pool, key=lambda s: (s.outstanding_tokens, s.queue_depth, s.index)).index


class LeastOutstandingTokensRouter(FleetRouter):
    """Join the replica with the least *live* outstanding work.

    Unlike :class:`LeastTokensRouter`, which only ever accumulates, this
    reads each replica's actual remaining prefill+decode tokens at the
    moment of arrival — finished work stops counting, so a replica that
    drained its backlog immediately becomes attractive again (true
    join-shortest-queue on token work rather than request count).
    """

    def route(
        self, request: Request, now: float, replicas: list[ReplicaSnapshot]
    ) -> int:
        alive = [s for s in replicas if s.alive]
        if not alive:
            raise ValueError("no alive replica to route to")
        return _least_loaded(alive)


class SloAwareRouter(FleetRouter):
    """Avoid replicas whose recent TBT tail violates the SLO.

    Replicas whose observed recent P99 TBT exceeds ``tbt_slo`` are
    treated as degraded and skipped while at least one healthy replica
    exists (a degraded replica keeps its current work; it just stops
    receiving new arrivals until its tail recovers).  Within the chosen
    pool the least-outstanding-tokens rule applies.
    """

    def __init__(self, num_replicas: int, tbt_slo: float) -> None:
        super().__init__(num_replicas)
        if tbt_slo <= 0:
            raise ValueError("tbt_slo must be positive")
        self.tbt_slo = tbt_slo

    def route(
        self, request: Request, now: float, replicas: list[ReplicaSnapshot]
    ) -> int:
        alive = [s for s in replicas if s.alive]
        if not alive:
            raise ValueError("no alive replica to route to")
        healthy = [
            s
            for s in alive
            if s.recent_p99_tbt is None or s.recent_p99_tbt <= self.tbt_slo
        ]
        return _least_loaded(healthy or alive)


class _LegacyRouterAdapter(FleetRouter):
    """Run a state-blind :class:`Router` under the fleet interface."""

    def __init__(self, router: Router) -> None:
        super().__init__(router.num_replicas)
        self.wrapped = router

    def route(
        self, request: Request, now: float, replicas: list[ReplicaSnapshot]
    ) -> int:
        return self.wrapped.route(request)


def as_fleet_router(router: FleetRouter | Router) -> FleetRouter:
    """Coerce either router generation into the fleet interface."""
    if isinstance(router, FleetRouter):
        return router
    if isinstance(router, Router):
        return _LegacyRouterAdapter(router)
    raise TypeError(
        f"expected a FleetRouter or Router, got {type(router).__name__}"
    )
