"""SLO-aware brownout control: graceful degradation under overload.

When the fleet's pooled p99 TBT blows past the SLO — because a rack
went down, half the replicas are throttling, or demand simply spiked —
shedding *everything* is the wrong answer.  A brownout controller
instead steps through configured :class:`DegradationLevel`\\ s, each
trading a little quality for a lot of headroom:

* shrink the per-iteration token budget (smaller chunks → lower TBT at
  the cost of prefill throughput),
* cap admissible context length (long-context requests are the most
  expensive to admit mid-incident),
* shed the lowest-priority tenant classes outright.

Levels are ordered mild → severe.  The controller steps one level at a
time: *up* when pooled p99 TBT exceeds ``tbt_slo * (1 + enter_margin)``
and *down* when it falls below ``tbt_slo * (1 + exit_margin)``, with
``exit_margin < enter_margin`` and a minimum dwell time between steps
so the fleet cannot oscillate across the boundary (classic hysteresis).

Like the health monitor, the controller is a pure decision function
over replica slots — the fleet simulator drives it from control ticks
and applies its outputs, keeping both engines bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.stats import percentile

if TYPE_CHECKING:
    from repro.cluster.fleet import _ReplicaSlot
    from repro.core.request import Request


@dataclass(frozen=True)
class DegradationLevel:
    """One rung of the brownout ladder; unset knobs inherit baseline."""

    # Clamp the scheduler's per-iteration token budget to this value
    # (dynamic-budget schedulers clamp their search range instead).
    token_budget: int | None = None
    # Reject new requests whose total (prompt + output) length exceeds
    # this many tokens.
    max_context: int | None = None
    # Shed new arrivals from these tenant classes (``Request.client_id``;
    # lower ids are the more important tenants by convention).
    shed_client_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.token_budget is not None and self.token_budget < 1:
            raise ValueError(
                f"token_budget must be >= 1, got {self.token_budget}"
            )
        if self.max_context is not None and self.max_context < 1:
            raise ValueError(
                f"max_context must be >= 1, got {self.max_context}"
            )
        if not isinstance(self.shed_client_ids, tuple):
            object.__setattr__(
                self, "shed_client_ids", tuple(self.shed_client_ids)
            )


@dataclass(frozen=True)
class BrownoutConfig:
    """Brownout ladder plus the hysteresis that keeps it stable."""

    levels: tuple[DegradationLevel, ...]
    # The TBT SLO the controller defends, in seconds.
    tbt_slo: float = 0.2
    # Step up (degrade) when pooled p99 TBT > tbt_slo * (1 + enter_margin).
    enter_margin: float = 1.0
    # Step down (recover) when pooled p99 TBT < tbt_slo * (1 + exit_margin).
    exit_margin: float = 0.6
    # Minimum simulated seconds between level changes.
    min_dwell: float = 1.0
    # Control-loop cadence in simulated seconds.
    check_interval: float = 0.25
    # Minimum pooled TBT samples before the controller acts at all.
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not isinstance(self.levels, tuple):
            object.__setattr__(self, "levels", tuple(self.levels))
        if not self.levels:
            raise ValueError("brownout needs at least one degradation level")
        for level in self.levels:
            if not isinstance(level, DegradationLevel):
                raise TypeError(f"expected DegradationLevel, got {level!r}")
        if self.tbt_slo <= 0:
            raise ValueError(f"tbt_slo must be positive, got {self.tbt_slo}")
        if self.enter_margin < 0 or self.exit_margin < 0:
            raise ValueError("brownout margins must be non-negative")
        if self.exit_margin >= self.enter_margin:
            raise ValueError(
                "exit_margin must be < enter_margin for hysteresis, got "
                f"exit={self.exit_margin} enter={self.enter_margin}"
            )
        if self.min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {self.min_dwell}")
        if self.check_interval <= 0:
            raise ValueError(
                f"check_interval must be positive, got {self.check_interval}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


@dataclass(frozen=True)
class BrownoutChange:
    """A level transition the controller just decided on."""

    direction: int  # +1 stepped up (more degraded), -1 stepped down
    level: int  # new level, 0 = fully healthy
    p99_tbt: float | None  # pooled p99 that triggered the step


@dataclass
class BrownoutController:
    """Steps the fleet through degradation levels with hysteresis."""

    config: BrownoutConfig
    level: int = 0
    _last_change: float = field(default=float("-inf"), repr=False)

    @property
    def active(self) -> DegradationLevel | None:
        """The currently-applied level, or None at full health."""
        if self.level == 0:
            return None
        return self.config.levels[self.level - 1]

    def active_budget(self) -> int | None:
        """Token-budget clamp to apply fleet-wide right now."""
        active = self.active
        return None if active is None else active.token_budget

    def admission_veto(self, request: "Request") -> str | None:
        """Reason to shed this arrival under the active level, if any."""
        active = self.active
        if active is None:
            return None
        if request.client_id in active.shed_client_ids:
            return "brownout_tenant"
        if (
            active.max_context is not None
            and request.total_len > active.max_context
        ):
            return "brownout_context"
        return None

    def evaluate(
        self, now: float, slots: "list[_ReplicaSlot]"
    ) -> BrownoutChange | None:
        """Decide whether to step the ladder; at most one step per call."""
        cfg = self.config
        if now - self._last_change < cfg.min_dwell:
            return None
        pooled: list[float] = []
        for slot in slots:
            if slot.alive:
                pooled.extend(slot.recent_tbts)
        if len(pooled) < cfg.min_samples:
            # No signal.  An idle or just-recovered fleet steps back
            # toward health rather than staying browned out forever.
            if self.level > 0 and pooled == []:
                self.level -= 1
                self._last_change = now
                return BrownoutChange(-1, self.level, None)
            return None
        p99 = percentile(sorted(pooled), 99)
        enter = cfg.tbt_slo * (1.0 + cfg.enter_margin)
        exit_ = cfg.tbt_slo * (1.0 + cfg.exit_margin)
        if p99 > enter and self.level < len(cfg.levels):
            self.level += 1
            self._last_change = now
            return BrownoutChange(+1, self.level, p99)
        if p99 < exit_ and self.level > 0:
            self.level -= 1
            self._last_change = now
            return BrownoutChange(-1, self.level, p99)
        return None
