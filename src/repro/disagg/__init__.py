"""Disaggregated prefill/decode serving (the §6 comparison point)."""

from repro.disagg.engine import DisaggregatedEngine, DisaggregatedResult

__all__ = ["DisaggregatedEngine", "DisaggregatedResult"]
