"""Disaggregated prefill/decode serving (Splitwise / DistServe, §6).

The paper's related-work section describes the alternative school:
dedicate some replicas to prefills and others to decodes, migrating
each request's KV cache between them when its prefill completes.
Interference disappears entirely — prefills run at full efficiency and
decodes are never stalled — at the cost of (a) migrating KV over the
interconnect and (b) prefill replicas whose HBM stores no decode KV.
The paper leaves a quantitative comparison to future work; this module
provides it.

The engine is event-driven like :class:`~repro.engine.replica.ReplicaEngine`:

* prefill replicas pull whole prompts FCFS, one iteration per prompt
  (maximum prefill efficiency — the disaggregation argument);
* a finished prefill emits the first token, then the KV cache migrates
  to the decode replica with the most free memory (waiting in a staging
  queue if none has room);
* decode replicas run decode-only iterations over their resident
  requests, iteration-level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import EventQueue
from repro.hardware.interconnect import LinkSpec
from repro.memory.block_manager import PagedBlockManager
from repro.metrics.timeline import IterationRecord
from repro.perf.iteration import ExecutionModel
from repro.types import Request, RequestPhase, TokenWork

_ARRIVAL = "arrival"
_PREFILL_DONE = "prefill_done"
_MIGRATION_DONE = "migration_done"
_DECODE_DONE = "decode_done"


@dataclass
class DisaggregatedResult:
    """Run outcome, mirroring ``SimulationResult``'s metric surface."""

    requests: list[Request]
    records: list[IterationRecord]
    makespan: float
    num_stages: int = 1
    num_preemptions: int = 0
    unfinished: list[Request] | None = None

    def __post_init__(self) -> None:
        if self.unfinished is None:
            self.unfinished = [r for r in self.requests if not r.is_finished]

    @property
    def finished_requests(self) -> list[Request]:
        return [r for r in self.requests if r.is_finished]


class _DecodeReplica:
    """One decode-pool member: resident requests plus paged memory."""

    def __init__(self, index: int, capacity_tokens: int, block_size: int = 16) -> None:
        self.index = index
        self.memory = PagedBlockManager(capacity_tokens, block_size=block_size)
        self.resident: list[Request] = []
        self.busy = False

    def can_admit(self, request: Request) -> bool:
        # Conservative admission: reserve room for the whole response so
        # decode growth never OOMs (the decode pool has no cheap
        # preemption path — its KV came over the wire).
        footprint = request.context_len + request.remaining_output + self.memory.block_size
        return (
            self.memory.can_admit(request)
            and self.memory.free_token_slots >= footprint
        )

    def admit(self, request: Request) -> None:
        self.memory.admit(request)
        self.resident.append(request)

    def release_finished(self) -> None:
        for request in list(self.resident):
            if request.is_finished:
                self.memory.free(request)
                self.resident.remove(request)


class DisaggregatedEngine:
    """Prefill-pool + decode-pool serving with KV migration."""

    def __init__(
        self,
        exec_model: ExecutionModel,
        num_prefill_replicas: int,
        num_decode_replicas: int,
        migration_link: LinkSpec,
        decode_kv_capacity: int,
        max_decode_batch: int = 128,
    ) -> None:
        if num_prefill_replicas < 1 or num_decode_replicas < 1:
            raise ValueError("need at least one replica in each pool")
        if max_decode_batch < 1:
            raise ValueError("max_decode_batch must be >= 1")
        self.exec_model = exec_model
        self.migration_link = migration_link
        self.max_decode_batch = max_decode_batch
        self._events = EventQueue()
        self._prefill_busy = [False] * num_prefill_replicas
        self._prefill_queue: list[Request] = []
        self._decode_replicas = [
            _DecodeReplica(i, decode_kv_capacity) for i in range(num_decode_replicas)
        ]
        self._staging: list[Request] = []   # prefilled, waiting for decode memory
        self._records: list[IterationRecord] = []
        self.num_migrations = 0
        self.total_migration_time = 0.0

    # ------------------------------------------------------------------
    def run(
        self, requests: list[Request], max_time: float | None = None
    ) -> DisaggregatedResult:
        if not requests:
            raise ValueError("run() needs at least one request")
        for request in requests:
            self._events.push(request.arrival_time, _ARRIVAL, request)
        now = 0.0
        while self._events:
            now, kind, payload = self._events.pop()
            if max_time is not None and now > max_time:
                break
            if kind == _ARRIVAL:
                self._prefill_queue.append(payload)
                payload.phase = RequestPhase.PREFILL
                self._feed_prefill_replicas(now)
            elif kind == _PREFILL_DONE:
                self._on_prefill_done(*payload, now=now)
            elif kind == _MIGRATION_DONE:
                self._on_migration_done(payload, now)
            elif kind == _DECODE_DONE:
                self._on_decode_done(*payload, now=now)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        unfinished = [r for r in requests if not r.is_finished]
        if unfinished and max_time is None:
            raise RuntimeError(
                f"disaggregated run stuck with {len(unfinished)} unfinished requests"
            )
        return DisaggregatedResult(
            requests=list(requests),
            records=self._records,
            makespan=now,
            unfinished=unfinished,
        )

    # ------------------------------------------------------------------
    # Prefill pool
    # ------------------------------------------------------------------
    def _feed_prefill_replicas(self, now: float) -> None:
        for replica, busy in enumerate(self._prefill_busy):
            if busy or not self._prefill_queue:
                continue
            request = self._prefill_queue.pop(0)
            if request.first_scheduled_at is None:
                request.first_scheduled_at = now
            work = TokenWork.prefill_chunk(request.remaining_prefill)
            duration = self.exec_model.iteration_time([work]).total
            self._prefill_busy[replica] = True
            self._records.append(
                IterationRecord(
                    stage=0,
                    start=now,
                    end=now + duration,
                    batch_id=request.request_id,
                    num_prefill_tokens=work.num_tokens,
                    num_decode_tokens=0,
                    num_prefill_seqs=1,
                    num_decode_seqs=0,
                    breakdown=self.exec_model.iteration_time([work]),
                )
            )
            self._events.push(now + duration, _PREFILL_DONE, (replica, request))

    def _on_prefill_done(self, replica: int, request: Request, now: float) -> None:
        self._prefill_busy[replica] = False
        request.record_prefill(request.remaining_prefill, now)
        if not request.is_finished:
            migration = self._migration_time(request)
            self.num_migrations += 1
            self.total_migration_time += migration
            self._events.push(now + migration, _MIGRATION_DONE, request)
        self._feed_prefill_replicas(now)

    def _migration_time(self, request: Request) -> float:
        kv_bytes = self.exec_model.model.kv_bytes(request.context_len)
        return self.migration_link.transfer_time(kv_bytes)

    # ------------------------------------------------------------------
    # Decode pool
    # ------------------------------------------------------------------
    def _on_migration_done(self, request: Request, now: float) -> None:
        self._staging.append(request)
        self._drain_staging(now)

    def _drain_staging(self, now: float) -> None:
        still_waiting = []
        for request in self._staging:
            target = self._pick_decode_replica(request)
            if target is None:
                still_waiting.append(request)
                continue
            target.admit(request)
            if not target.busy:
                self._start_decode_iteration(target, now)
        self._staging = still_waiting

    def _pick_decode_replica(self, request: Request) -> _DecodeReplica | None:
        candidates = [r for r in self._decode_replicas if r.can_admit(request)]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.memory.free_token_slots)

    def _start_decode_iteration(self, replica: _DecodeReplica, now: float) -> None:
        batch = [
            r
            for r in replica.resident
            if not r.is_finished and replica.memory.can_append_token(r)
        ][: self.max_decode_batch]
        if not batch:
            return
        for request in batch:
            replica.memory.append_token(request)
        works = [TokenWork.decode(r.context_len) for r in batch]
        breakdown = self.exec_model.iteration_time(works)
        replica.busy = True
        self._records.append(
            IterationRecord(
                stage=0,
                start=now,
                end=now + breakdown.total,
                batch_id=-(replica.index + 1),
                num_prefill_tokens=0,
                num_decode_tokens=len(batch),
                num_prefill_seqs=0,
                num_decode_seqs=len(batch),
                breakdown=breakdown,
            )
        )
        self._events.push(now + breakdown.total, _DECODE_DONE, (replica.index, batch))

    def _on_decode_done(self, replica_idx: int, batch: list[Request], now: float) -> None:
        replica = self._decode_replicas[replica_idx]
        replica.busy = False
        for request in batch:
            request.record_decode(now)
        replica.release_finished()
        self._drain_staging(now)
        self._start_decode_iteration(replica, now)
