"""Array-backed scheduler cores for the vectorized engine.

Each core is a faithful port of its object-scheduler counterpart
(``repro.scheduling.*`` / ``repro.core.sarathi``) operating on row
indices into a :class:`repro.engine.arrays.RequestArrays` instead of
``Request`` objects.  Faithful means *operation for operation*: pool
ordering, FCFS tie-breaks, preemption victim choice, chunking
arithmetic and memory-watermark checks all replicate the object code
path exactly, so the two engines produce bit-identical schedules.  The
differential suite (``tests/differential``) is the enforcement
mechanism; the object engine remains the golden reference.

The speed comes from the composition fast path: the dominant iteration
shape — a block of decodes with no memory pressure — is assembled with
a handful of numpy operations instead of per-request object traffic.
Any iteration that could preempt, swap or otherwise interleave falls
back to an exact scalar port of the object control flow.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.batch import _batch_ids
from repro.engine.arrays import (
    PH_DECODE,
    PH_FINISHED,
    PH_PREEMPTED,
    PH_PREFILL,
    PH_QUEUED,
    RequestArrays,
)
from repro.memory.prefix import PrefixCacheStats, SharedPrefixStore
from repro.parallel.comm import pp_send_time, tp_comm_time
from repro.scheduling.base import Scheduler as _ObjectScheduler
from repro.types import IterationTime, PreemptionMode, TokenWork

__all__ = [
    "VecBatch",
    "VecPagedMemory",
    "VecReservationMemory",
    "VecSarathiScheduler",
    "VecDynamicSarathiScheduler",
    "VecVLLMScheduler",
    "VecOrcaScheduler",
    "VecFasterTransformerScheduler",
    "VecChunkedPrefillsOnlyScheduler",
]

_EMPTY_ROWS = np.empty(0, dtype=np.int64)


class VecBatch:
    """One iteration's work as row arrays plus per-item prefill lists.

    Batch item order is always the decode block (row order set by the
    policy) followed by the prefill items — every pp=1 policy composes
    batches in that shape, and pricing/commit preserve it so attention
    summation order matches the object engine's float-for-float.
    """

    __slots__ = (
        "batch_id",
        "swap_bytes",
        "decode_rows",
        "decode_ctx",
        "p_rows",
        "p_chunk",
        "p_past",
        "p_is_last",
        "p_rows_arr",
        "num_tokens",
        "num_logit_tokens",
        "num_prefill_tokens",
        "num_decode_tokens",
        "num_prefill_seqs",
        "num_decode_seqs",
    )

    def __init__(
        self,
        decode_rows: np.ndarray,
        decode_ctx: np.ndarray,
        p_rows: list[int],
        p_chunk: list[int],
        p_past: list[int],
        p_is_last: list[bool],
    ) -> None:
        self.batch_id = next(_batch_ids)
        self.swap_bytes = 0
        self.decode_rows = decode_rows
        self.decode_ctx = decode_ctx
        self.p_rows = p_rows
        self.p_chunk = p_chunk
        self.p_past = p_past
        self.p_is_last = p_is_last
        self.p_rows_arr = (
            np.array(p_rows, dtype=np.int64) if p_rows else _EMPTY_ROWS
        )
        num_decode = len(decode_rows)
        num_prefill_tokens = sum(p_chunk)
        self.num_decode_seqs = num_decode
        self.num_decode_tokens = num_decode
        self.num_prefill_seqs = len(p_rows)
        self.num_prefill_tokens = num_prefill_tokens
        self.num_tokens = num_decode + num_prefill_tokens
        # Decodes always emit; a prefill item prices a logit exactly
        # when it is the prompt's final chunk (TokenWork.emits_token).
        self.num_logit_tokens = num_decode + sum(p_is_last)

    @property
    def size(self) -> int:
        return len(self.decode_rows) + len(self.p_rows)


# ----------------------------------------------------------------------
# Memory managers over rows
# ----------------------------------------------------------------------
class VecPagedMemory:
    """Row-indexed port of :class:`repro.memory.block_manager.PagedBlockManager`.

    The prefix-cache extension mirrors the object allocator operation
    for operation: lookups fire only for fresh rows, claimed shared
    blocks shift ``prefill_done`` past the cached span, and retained
    refcount-0 entries are evicted LRU-first when admissions or decode
    appends need their blocks.  Both engines drive the same
    deterministic :class:`SharedPrefixStore` logic, so stores evolve
    bit-identically under the differential contract.
    """

    def __init__(
        self,
        arrays: RequestArrays,
        capacity_tokens: int,
        block_size: int,
        watermark: float = 0.01,
        prefix_store: SharedPrefixStore | None = None,
    ) -> None:
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 <= watermark < 1.0:
            raise ValueError("watermark must be in [0, 1)")
        if prefix_store is not None and prefix_store.block_size != block_size:
            raise ValueError(
                f"prefix store block_size {prefix_store.block_size} != "
                f"allocator block_size {block_size}"
            )
        self.A = arrays
        self.block_size = block_size
        self.num_blocks = capacity_tokens // block_size
        self._watermark_blocks = int(self.num_blocks * watermark)
        self.free_blocks = self.num_blocks
        self._held = np.zeros(0, dtype=np.int64)
        self._store = prefix_store
        # Shared blocks each row claimed at admission (parallel to
        # ``_held``, so the bulk-decode fast path stays vectorized).
        self._shared = np.zeros(0, dtype=np.int64)
        self._claim_prefix: dict[int, int] = {}  # row -> claimed prefix id

    def _held_arr(self) -> np.ndarray:
        if self._held.size < self.A.n:
            grown = np.zeros(max(self.A.n, self._held.size * 2, 1024), dtype=np.int64)
            grown[: self._held.size] = self._held
            self._held = grown
        return self._held

    def _shared_arr(self) -> np.ndarray:
        if self._shared.size < self.A.n:
            grown = np.zeros(max(self.A.n, self._shared.size * 2, 1024), dtype=np.int64)
            grown[: self._shared.size] = self._shared
            self._shared = grown
        return self._shared

    def blocks_for(self, num_tokens: int) -> int:
        return (num_tokens + self.block_size - 1) // self.block_size

    def _initial_blocks(self, row: int) -> int:
        A = self.A
        context = int(A.prefill_done[row] + A.decode_steps[row])
        return self.blocks_for(max(int(A.prefill_target[row]), context))

    # -- prefix-cache plumbing ----------------------------------------
    def _lookup_eligible(self, row: int) -> bool:
        A = self.A
        return (
            self._store is not None
            and A.prefix_id[row] >= 0
            and A.prefill_done[row] == 0
            and A.decode_steps[row] == 0
        )

    def _cached_tokens(self, row: int) -> int:
        if not self._lookup_eligible(row):
            return 0
        A = self.A
        return self._store.usable_tokens(
            int(A.prefix_id[row]),
            int(A.prefix_len[row]),
            int(A.prefill_target[row]),
        )

    def _exclude_id(self, row: int) -> int | None:
        if not self._lookup_eligible(row):
            return None
        return int(self.A.prefix_id[row])

    def _evictable(self, exclude: int | None = None) -> int:
        if self._store is None:
            return 0
        return self._store.evictable_blocks(exclude=exclude)

    @property
    def prefix_stats(self) -> PrefixCacheStats | None:
        return self._store.stats if self._store is not None else None

    @property
    def shared_block_count(self) -> int:
        return self._store.shared_blocks if self._store is not None else 0

    # -- allocator operations -----------------------------------------
    def can_admit(self, row: int) -> bool:
        needed = self._initial_blocks(row) - self._cached_tokens(row) // self.block_size
        evictable = self._evictable(exclude=self._exclude_id(row))
        return self.free_blocks + evictable - needed >= self._watermark_blocks

    def _claim_and_reserve(self, row: int, needed_gate: bool) -> bool:
        """Shared admit body: claim the prefix, evict, reserve blocks.

        ``needed_gate`` selects the watermark check (try_admit) versus
        the raise-on-failure contract (admit).  Returns False only in
        gate mode.
        """
        A = self.A
        cached = 0
        if self._lookup_eligible(row):
            cached = self._cached_tokens(row)
        needed = self._initial_blocks(row) - cached // self.block_size
        if needed_gate:
            evictable = self._evictable(exclude=self._exclude_id(row))
            if self.free_blocks + evictable - needed < self._watermark_blocks:
                return False
        if self._lookup_eligible(row):
            claimed = self._store.claim(
                int(A.prefix_id[row]),
                int(A.prefix_len[row]),
                int(A.prefill_target[row]),
                owner=row,
            )
            assert claimed == cached
        if needed > self.free_blocks and self._store is not None:
            self.free_blocks += self._store.evict_for(
                needed - self.free_blocks,
                exclude=int(A.prefix_id[row]) if A.prefix_id[row] >= 0 else None,
            )
        if needed > self.free_blocks:
            if cached:
                self._store.release(int(A.prefix_id[row]), owner=row)
            raise MemoryError(
                f"cannot admit row {row}: needs {needed} blocks, "
                f"{self.free_blocks} free"
            )
        self.free_blocks -= needed
        self._held_arr()[row] = needed
        if cached:
            self._shared_arr()[row] = cached // self.block_size
            self._claim_prefix[row] = int(A.prefix_id[row])
            A.prefill_done[row] = cached
        return True

    def admit(self, row: int) -> None:
        self._claim_and_reserve(row, needed_gate=False)

    def try_admit(self, row: int) -> bool:
        """can_admit + admit fused (one lookup, one eviction scan)."""
        return self._claim_and_reserve(row, needed_gate=True)

    def _needs_new_block(self, row: int) -> bool:
        A = self.A
        held_tokens = int(
            self._held_arr()[row] + self._shared_arr()[row]
        ) * self.block_size
        return int(A.prefill_done[row] + A.decode_steps[row]) + 1 > held_tokens

    def can_append_token(self, row: int) -> bool:
        if self._held_arr()[row] == 0:
            raise ValueError(f"row {row} holds no allocation")
        if not self._needs_new_block(row):
            return True
        # Shortfall form so a capacity_loss deficit (negative free) is
        # paid down before the append, not papered over.
        return self.free_blocks + self._evictable() >= 1

    def append_token(self, row: int) -> None:
        if self._held_arr()[row] == 0:
            raise ValueError(f"row {row} holds no allocation")
        if not self._needs_new_block(row):
            return
        if self.free_blocks < 1 and self._store is not None:
            self.free_blocks += self._store.evict_for(1 - self.free_blocks)
        if self.free_blocks < 1:
            raise MemoryError("out of KV blocks")
        self.free_blocks -= 1
        self._held_arr()[row] += 1

    def free(self, row: int) -> None:
        held = self._held_arr()
        h = int(held[row])
        if h == 0:
            return  # freeing a row that holds nothing is a no-op
        self.free_blocks += h
        held[row] = 0
        if self._store is None:
            return
        shared = self._shared_arr()
        if shared[row]:
            self._store.release(self._claim_prefix.pop(row), owner=row)
            shared[row] = 0
        A = self.A
        if A.phase[row] == PH_FINISHED and A.prefix_id[row] >= 0:
            context = int(A.prefill_done[row] + A.decode_steps[row])
            cap = int(A.prefix_publish_len[row])
            publish = context if cap < 0 else min(cap, context)
            absorbed = self._store.register(
                int(A.prefix_id[row]), int(A.prefix_len[row]), publish
            )
            self.free_blocks -= absorbed

    def try_bulk_decode(self, rows: np.ndarray, ctx: np.ndarray) -> bool:
        """Reserve one decode slot for every row, or change nothing.

        Succeeds exactly when the object engine's per-row
        ``append_token`` sequence would have succeeded without
        preemption: each row needs at most one fresh block, so the
        sequential drains succeed iff free + evictable blocks cover the
        count.  Evicting the shortfall up front reclaims the same LRU
        entries the object engine's one-block-at-a-time appends would
        have, in the same order — no running row references a
        refcount-0 entry, so candidates cannot differ.
        """
        held = self._held_arr()[rows]
        shared = self._shared_arr()[rows]
        needs = ctx + 1 > (held + shared) * self.block_size
        count = int(needs.sum())
        shortfall = count - self.free_blocks
        if shortfall > 0:
            if self._store is None or self._evictable() < shortfall:
                return False
            self.free_blocks += self._store.evict_for(shortfall)
            if count > self.free_blocks:  # pragma: no cover - defensive
                return False
        if count:
            self._held[rows] = held + needs
            self.free_blocks -= count
        return True

    @property
    def free_token_slots(self) -> int:
        return self.free_blocks * self.block_size

    @property
    def total_token_slots(self) -> int:
        return self.num_blocks * self.block_size

    @property
    def occupancy(self) -> float:
        total = self.total_token_slots
        if total <= 0:
            return 0.0
        return 1.0 - self.free_token_slots / total

    # -- capacity faults ----------------------------------------------
    def shed_capacity(self, fraction: float) -> int:
        # Same integer arithmetic as the object allocator — free may go
        # negative; admissions fail and the normal eviction/preemption
        # machinery works the deficit off identically in both engines.
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        lost = int(self.num_blocks * fraction)
        self.num_blocks -= lost
        self.free_blocks -= lost
        return lost

    def restore_capacity(self, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self.num_blocks += amount
        self.free_blocks += amount


class VecReservationMemory:
    """Row-indexed port of :class:`repro.memory.block_manager.ReservationManager`."""

    def __init__(
        self, arrays: RequestArrays, capacity_tokens: int, reserve_len: int
    ) -> None:
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        if reserve_len <= 0:
            raise ValueError("reserve_len must be positive")
        self.A = arrays
        self.capacity_tokens = capacity_tokens
        self.reserve_len = reserve_len
        self.free_tokens = capacity_tokens
        self._reserved = np.zeros(0, dtype=np.int64)

    def _reserved_arr(self) -> np.ndarray:
        if self._reserved.size < self.A.n:
            grown = np.zeros(
                max(self.A.n, self._reserved.size * 2, 1024), dtype=np.int64
            )
            grown[: self._reserved.size] = self._reserved
            self._reserved = grown
        return self._reserved

    def _reservation_for(self, row: int) -> int:
        A = self.A
        remaining_output = int(A.output_len[row] - A.num_emitted[row])
        return max(self.reserve_len, int(A.prefill_target[row]) + remaining_output)

    def can_admit(self, row: int) -> bool:
        return self.free_tokens >= self._reservation_for(row)

    def admit(self, row: int) -> None:
        reserved = self._reserved_arr()
        needed = self._reservation_for(row)
        if needed > self.free_tokens:
            raise MemoryError(
                f"cannot admit row {row}: needs {needed} token slots, "
                f"{self.free_tokens} free"
            )
        self.free_tokens -= needed
        reserved[row] = needed

    def try_admit(self, row: int) -> bool:
        """can_admit + admit with the reservation computed once."""
        needed = self._reservation_for(row)
        if needed > self.free_tokens:
            return False
        self.free_tokens -= needed
        self._reserved_arr()[row] = needed
        return True

    def can_append_token(self, row: int) -> bool:
        return self._reserved_arr()[row] > 0

    def append_token(self, row: int) -> None:
        # Growth is prepaid by the reservation.
        return

    def free(self, row: int) -> None:
        reserved = self._reserved_arr()
        self.free_tokens += int(reserved[row])
        reserved[row] = 0

    def try_bulk_decode(self, rows: np.ndarray, ctx: np.ndarray) -> bool:
        return True

    @property
    def free_token_slots(self) -> int:
        return self.free_tokens

    @property
    def total_token_slots(self) -> int:
        return self.capacity_tokens

    @property
    def occupancy(self) -> float:
        total = self.total_token_slots
        if total <= 0:
            return 0.0
        return 1.0 - self.free_token_slots / total

    # -- capacity faults ----------------------------------------------
    def shed_capacity(self, fraction: float) -> int:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        lost = int(self.capacity_tokens * fraction)
        self.capacity_tokens -= lost
        self.free_tokens -= lost
        return lost

    def restore_capacity(self, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self.capacity_tokens += amount
        self.free_tokens += amount


# ----------------------------------------------------------------------
# Scheduler core base
# ----------------------------------------------------------------------
class VecScheduler:
    """Shared pools, counters and preemption machinery (rows edition).

    Mirrors :class:`repro.scheduling.base.Scheduler`.  On single-stage
    (pp=1) engines at most one batch is ever in flight, so the
    in-flight set is empty whenever ``_build_batch`` runs and tracking
    it would be pure overhead; the engine flips ``track_in_flight`` on
    for pipelined deployments, where requests stay claimed across
    several stage iterations and must be excluded from re-batching
    exactly like the object scheduler's ``_in_flight`` set.
    """

    name = "abstract"

    _base_budgets = None
    # Brownout budget-clamp hook — byte-for-byte the object base's
    # logic, so both engines apply identical clamps at identical times.
    override_token_budget = _ObjectScheduler.override_token_budget

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecPagedMemory | VecReservationMemory,
        max_batch_size: int,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        preemption_mode = PreemptionMode.parse(preemption_mode)
        if preemption_mode is PreemptionMode.SWAP and kv_bytes_per_token <= 0:
            raise ValueError("swap mode needs kv_bytes_per_token > 0")
        self.A = arrays
        self.memory = memory
        self.max_batch_size = max_batch_size
        self.preemption_mode = preemption_mode
        self.kv_bytes_per_token = kv_bytes_per_token
        self.waiting: deque[int] = deque()
        self.running: list[int] = []
        self._running_set: set[int] = set()
        self.swapped: list[int] = []
        self._claimed: set[int] = set()
        # Rows scheduled into a batch that has not completed yet; only
        # populated when the engine sets ``track_in_flight`` (pp > 1).
        self._in_flight: set[int] = set()
        self.track_in_flight = False
        self._pending_swap_bytes = 0
        self.num_scheduled_batches = 0
        self.num_preemptions = 0
        self.num_swap_outs = 0
        self.num_swap_ins = 0
        # Live workload gauges the fleet router reads per arrival; kept
        # incrementally so snapshots stay O(1) instead of O(requests).
        self.num_pending = 0
        self.outstanding_tokens = 0
        # Bumped whenever the running set or any member's prefill
        # status changes; policies key their sorted/partitioned row
        # caches on it.
        self._run_version = 0

    # -- engine-facing -------------------------------------------------
    def add_row(self, row: int, now: float) -> None:
        A = self.A
        arrival = float(A.arrival_time[row])
        if arrival > now + 1e-9:
            raise ValueError(
                f"request {A.requests[row].request_id} arrives at {arrival}, "
                f"but now is {now}"
            )
        self.waiting.append(row)

    def note_ingested(self, row: int) -> None:
        """Account a freshly mirrored row into the workload gauges."""
        A = self.A
        self.num_pending += 1
        self.outstanding_tokens += int(
            (A.prefill_target[row] - A.prefill_done[row])
            + (A.output_len[row] - A.num_emitted[row])
        )

    def note_ingested_bulk(self, first: int) -> None:
        A = self.A
        sl = slice(first, A.n)
        self.num_pending += A.n - first
        self.outstanding_tokens += int(
            np.sum(A.prefill_target[sl] - A.prefill_done[sl])
            + np.sum(A.output_len[sl] - A.num_emitted[sl])
        )

    def schedule(self, now: float) -> VecBatch | None:
        self._claimed.clear()
        self._try_swap_in()
        batch = self._build_batch(now)
        self._claimed.clear()
        if batch is None:
            return None
        batch.swap_bytes = self._pending_swap_bytes
        self._pending_swap_bytes = 0
        A = self.A
        prows = batch.p_rows_arr
        if len(prows):
            first_sched = A.first_scheduled_at[prows]
            fresh = np.isnan(first_sched)
            if fresh.any():
                A.first_scheduled_at[prows[fresh]] = now
            queued = A.phase[prows] == PH_QUEUED
            if queued.any():
                A.phase[prows[queued]] = PH_PREFILL
        # Decode rows need no transitions: a decoding request was
        # scheduled before (first_scheduled_at set) and left QUEUED at
        # its first prefill (or at swap-in).
        if self.track_in_flight:
            in_flight = self._in_flight
            in_flight.update(batch.decode_rows.tolist())
            in_flight.update(batch.p_rows)
            self._run_version += 1
        self.num_scheduled_batches += 1
        return batch

    def on_batch_complete(
        self, batch: VecBatch, now: float
    ) -> tuple[list[int], list[int]]:
        """Commit one iteration's progress.

        Returns ``(finished, prefill_emits)``: rows that finished, in
        batch item order, and prefill rows whose completed chunk
        emitted the request's first token this iteration.
        """
        A = self.A
        if self._in_flight:
            self._in_flight.difference_update(batch.decode_rows.tolist())
            self._in_flight.difference_update(batch.p_rows)
            self._run_version += 1
        finished: list[int] = []
        prefill_emits: list[int] = []
        rows = batch.decode_rows
        if len(rows):
            A.decode_steps[rows] += 1
            A.num_emitted[rows] += 1
            A.prev_emit[rows] = A.last_emit[rows]
            A.last_emit[rows] = now
            self.outstanding_tokens -= len(rows)
            fin_mask = A.num_emitted[rows] >= A.output_len[rows]
            if fin_mask.any():
                fin_rows = rows[fin_mask]
                A.phase[fin_rows] = PH_FINISHED
                A.finished_at[fin_rows] = now
                for row in fin_rows.tolist():
                    self.memory.free(row)
                    self._run_remove(row)
                    finished.append(row)
                self.num_pending -= len(fin_rows)
        prows = batch.p_rows_arr
        if len(prows):
            # Per-item prefill commits have no cross-item interaction
            # (memory is only freed for finished rows), so committing
            # them as masked vector writes preserves the object
            # engine's sequential semantics and its item ordering.
            chunks = np.array(batch.p_chunk, dtype=np.int64)
            done = A.prefill_done[prows] + chunks
            A.prefill_done[prows] = done
            self.outstanding_tokens -= int(chunks.sum())
            complete = done >= A.prefill_target[prows]
            if complete.any():
                comp = prows[complete]
                A.phase[comp] = PH_DECODE
                self._run_version += 1
                emits = A.num_emitted[comp] == 0
                if emits.any():
                    emit_rows = comp[emits]
                    A.num_emitted[emit_rows] = 1
                    A.prev_emit[emit_rows] = A.last_emit[emit_rows]
                    A.last_emit[emit_rows] = now
                    no_first = np.isnan(A.first_token_at[emit_rows])
                    if no_first.any():
                        A.first_token_at[emit_rows[no_first]] = now
                    self.outstanding_tokens -= len(emit_rows)
                    prefill_emits = emit_rows.tolist()
                fin = A.num_emitted[comp] >= A.output_len[comp]
                if fin.any():
                    fin_rows = comp[fin]
                    A.phase[fin_rows] = PH_FINISHED
                    A.finished_at[fin_rows] = now
                    for row in fin_rows.tolist():
                        self.memory.free(row)
                        self._run_remove(row)
                        finished.append(row)
                    self.num_pending -= len(fin_rows)
        return finished, prefill_emits

    def _build_batch(self, now: float) -> VecBatch | None:  # pragma: no cover
        raise NotImplementedError

    # -- pool maintenance ----------------------------------------------
    def _run_add(self, row: int) -> None:
        self.running.append(row)
        self._running_set.add(row)
        self._run_version += 1

    def _run_remove(self, row: int) -> None:
        if row in self._running_set:
            self.running.remove(row)
            self._running_set.remove(row)
            self._run_version += 1

    def _schedulable_rows(self) -> list[int]:
        """Running rows not claimed by an in-flight batch, running order.

        Port of ``Scheduler._schedulable_running``; with tracking off
        (pp=1) the in-flight set is empty and this is just ``running``.
        """
        in_flight = self._in_flight
        if not in_flight:
            return self.running
        return [r for r in self.running if r not in in_flight]

    # -- shared policy helpers (exact ports) ---------------------------
    def _admit_waiting_head(self) -> int | None:
        if not self.waiting:
            return None
        head = self.waiting[0]
        # A prefix-cache hit advances prefill_done inside try_admit;
        # the skipped tokens leave the outstanding-work gauge (the
        # object engine recomputes the gauge by scanning, so this
        # adjustment keeps the counters bit-identical).
        done_before = int(self.A.prefill_done[head])
        if not self.memory.try_admit(head):
            return None
        cached = int(self.A.prefill_done[head]) - done_before
        if cached:
            self.outstanding_tokens -= cached
        self.waiting.popleft()
        self._run_add(head)
        return head

    def _prepare_decode(self, row: int) -> bool:
        if not self._preempt_for_decode(row):
            return False
        self.memory.append_token(row)
        self._claimed.add(row)
        return True

    def _preempt_for_decode(self, row: int) -> bool:
        A = self.A
        while not self.memory.can_append_token(row):
            victim = self._pick_preemption_victim(row)
            if victim is None or A.arrival_time[victim] < A.arrival_time[row]:
                self._evict(row, force_recompute=True)
                return False
            self._evict(victim)
        return True

    def _pick_preemption_victim(self, protect: int) -> int | None:
        # max() over candidates in running order: the *first* row with
        # the strictly greatest arrival time wins, like the object code.
        # In-flight rows are never victims (their KV is in use by a
        # pipelined batch); the set is empty at pp=1.
        arrival = self.A.arrival_time
        claimed = self._claimed
        in_flight = self._in_flight
        best: int | None = None
        best_time = -math.inf
        for row in self.running:
            if row == protect or row in claimed or row in in_flight:
                continue
            t = arrival[row]
            if t > best_time:
                best = row
                best_time = t
        return best

    def _evict(self, victim: int, force_recompute: bool = False) -> None:
        if self.preemption_mode is PreemptionMode.SWAP and not force_recompute:
            self._swap_out(victim)
            return
        A = self.A
        self.memory.free(victim)
        old_remaining = int(A.prefill_target[victim] - A.prefill_done[victim])
        A.prefill_target[victim] = A.prompt_len[victim] + A.num_emitted[victim]
        A.prefill_done[victim] = 0
        A.decode_steps[victim] = 0
        A.phase[victim] = PH_QUEUED
        A.num_restarts[victim] += 1
        self.outstanding_tokens += int(A.prefill_target[victim]) - old_remaining
        self._run_remove(victim)
        self.waiting.appendleft(victim)
        self.num_preemptions += 1

    def _swap_out(self, victim: int) -> None:
        A = self.A
        context = int(A.prefill_done[victim] + A.decode_steps[victim])
        self._pending_swap_bytes += self.kv_bytes_per_token * context
        self.memory.free(victim)
        A.phase[victim] = PH_PREEMPTED
        self._run_remove(victim)
        self.swapped.append(victim)
        self.num_preemptions += 1
        self.num_swap_outs += 1

    def _try_swap_in(self) -> None:
        if not self.swapped:
            return
        A = self.A
        still_out = []
        for row in self.swapped:
            if self.memory.can_admit(row):
                self.memory.admit(row)
                context = int(A.prefill_done[row] + A.decode_steps[row])
                self._pending_swap_bytes += self.kv_bytes_per_token * context
                A.phase[row] = (
                    PH_DECODE
                    if A.prefill_done[row] >= A.prefill_target[row]
                    else PH_PREFILL
                )
                self._run_add(row)
                self.num_swap_ins += 1
            else:
                still_out.append(row)
        self.swapped = still_out

    # -- introspection (fleet snapshot parity) -------------------------
    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def has_work(self) -> bool:
        if self.waiting or self.swapped:
            return True
        if not self._in_flight:
            return bool(self.running)
        in_flight = self._in_flight
        return any(r not in in_flight for r in self.running)


# ----------------------------------------------------------------------
# Sorted/partitioned running-set cache shared by arrival-FCFS policies
# ----------------------------------------------------------------------
class _ArrivalSortedMixin(VecScheduler):
    """Caches the running set partitioned and arrival-sorted.

    ``sorted(decodes, key=arrival_time)`` with a stable sort over the
    running-order partition reproduces the object schedulers' decode
    ordering; the cache makes the steady decode loop O(1) per
    iteration instead of O(B log B).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cache_version = -1
        self._cached_decodes_sorted = _EMPTY_ROWS
        self._cached_partials = _EMPTY_ROWS

    def _partition(self) -> tuple[np.ndarray, np.ndarray]:
        """(decodes sorted by arrival — stable, partials in running order).

        Partitions the *schedulable* running rows; in-flight mutations
        bump ``_run_version`` so the cache never serves stale rows.
        """
        if self._cache_version != self._run_version:
            A = self.A
            run_arr = np.array(self._schedulable_rows(), dtype=np.int64)
            if run_arr.size:
                complete = A.prefill_done[run_arr] >= A.prefill_target[run_arr]
                decodes = run_arr[complete]
                self._cached_partials = run_arr[~complete]
                order = np.argsort(A.arrival_time[decodes], kind="stable")
                self._cached_decodes_sorted = decodes[order]
            else:
                self._cached_decodes_sorted = _EMPTY_ROWS
                self._cached_partials = _EMPTY_ROWS
            self._cache_version = self._run_version
        return self._cached_decodes_sorted, self._cached_partials

    def _decode_block(
        self, sorted_rows: np.ndarray, check_complete: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """The decode block: bulk fast path or exact scalar fallback.

        ``check_complete`` ports the vLLM/chunked-only guard that skips
        prefill-incomplete rows inside the candidate walk; sarathi
        pre-partitions instead so it passes False.  Filtering before
        the max-batch-size slice is exact: skipped rows don't count
        toward the object loop's size either, and nothing turns a
        running row incomplete without also removing it from running.
        """
        A = self.A
        if check_complete and len(sorted_rows):
            sorted_rows = sorted_rows[
                A.prefill_done[sorted_rows] >= A.prefill_target[sorted_rows]
            ]
        cand = sorted_rows[: self.max_batch_size]
        if len(cand):
            ctx = A.prefill_done[cand] + A.decode_steps[cand]
            if self.memory.try_bulk_decode(cand, ctx):
                return cand, ctx
        # Memory pressure: replay the object engine's per-row loop with
        # preemption exactly (evictions may drop later candidates).
        rows: list[int] = []
        ctxs: list[int] = []
        running_set = self._running_set
        for row in sorted_rows.tolist():
            if len(rows) >= self.max_batch_size:
                break
            if check_complete and A.prefill_done[row] < A.prefill_target[row]:
                continue
            if row not in running_set:
                continue  # evicted by an earlier preemption
            if not self._prepare_decode(row):
                continue
            rows.append(row)
            ctxs.append(int(A.prefill_done[row] + A.decode_steps[row]))
        return (
            np.array(rows, dtype=np.int64),
            np.array(ctxs, dtype=np.int64),
        )


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class VecSarathiScheduler(_ArrivalSortedMixin):
    """Port of :class:`repro.core.sarathi.SarathiScheduler` (Algorithm 3)."""

    name = "sarathi"

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecPagedMemory,
        token_budget: int,
        max_batch_size: int,
        chunk_prefills: bool = True,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        super().__init__(
            arrays,
            memory,
            max_batch_size,
            preemption_mode=preemption_mode,
            kv_bytes_per_token=kv_bytes_per_token,
        )
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.token_budget = token_budget
        self.chunk_prefills = chunk_prefills

    def _build_batch(self, now: float) -> VecBatch | None:
        A = self.A
        sorted_decodes, partials = self._partition()
        decode_rows, decode_ctx = self._decode_block(sorted_decodes)
        tokens_used = len(decode_rows)
        size = tokens_used

        p_rows: list[int] = []
        p_chunk: list[int] = []
        p_past: list[int] = []
        p_is_last: list[bool] = []

        def add_prefill(row: int, chunk: int) -> None:
            remaining = int(A.prefill_target[row] - A.prefill_done[row])
            p_rows.append(row)
            p_chunk.append(chunk)
            p_past.append(int(A.prefill_done[row]))
            p_is_last.append(chunk >= remaining)

        # Continue partially completed prefills before admitting new
        # work (lines 9-12).
        running_set = self._running_set
        for row in partials.tolist():
            if size >= self.max_batch_size:
                break
            if row not in running_set:
                continue  # evicted by a preemption above
            chunk = self._chunk_for(row, tokens_used)
            if chunk <= 0:
                break
            add_prefill(row, chunk)
            tokens_used += chunk
            size += 1

        # Admit new requests within the leftover budget (lines 13-20).
        while size < self.max_batch_size and tokens_used < self.token_budget:
            if not self.waiting:
                break
            head = self.waiting[0]
            chunk = self._chunk_for(head, tokens_used)
            if chunk <= 0:
                break
            admitted = self._admit_waiting_head()
            if admitted is None:
                break  # memory full
            # Admission may have claimed a cached prefix, shrinking the
            # remaining prefill below the pre-admission estimate;
            # recompute so the chunk never overruns (still >= 1: the
            # cache always leaves at least one token to prefill).
            chunk = self._chunk_for(admitted, tokens_used)
            add_prefill(admitted, chunk)
            tokens_used += chunk
            size += 1

        if size == 0:
            return None
        return VecBatch(decode_rows, decode_ctx, p_rows, p_chunk, p_past, p_is_last)

    def _chunk_for(self, row: int, tokens_used: int) -> int:
        A = self.A
        remaining = int(A.prefill_target[row] - A.prefill_done[row])
        if not self.chunk_prefills:
            # Hybrid-batching-only ablation: whole prompts; budget only
            # gates whether more requests join.
            return remaining if tokens_used < self.token_budget else 0
        leftover = self.token_budget - tokens_used
        if leftover <= 0:
            return 0
        chunk = min(remaining, leftover)
        return chunk if chunk > 0 else 0


class VecDynamicSarathiScheduler(VecSarathiScheduler):
    """Port of :class:`repro.core.dynamic.DynamicSarathiScheduler`.

    Re-runs the §4.3 budget decision every iteration against the live
    decode pool, exactly like the object scheduler: bisection over the
    step grid for the largest budget whose predicted hybrid-iteration
    latency meets the TBT SLO.  Instead of an opaque ``works -> cost``
    oracle it prices candidates from per-component memo tables (the
    same tables the vectorized engine uses), assembled in
    ``stage_iteration_time``'s operation order so every probe produces
    the same float the object's ``iteration_cost`` closure would — the
    budget choices, and hence the schedules, stay bit-identical.

    The decode pool's attention sum is folded left-to-right once per
    ``_pick_budget`` and shared across probes; that matches the
    object's per-probe ``sum(...)`` because float addition is
    deterministic and every probe folds the same prefix.
    """

    name = "sarathi-dynamic"

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecPagedMemory,
        exec_model,
        tbt_slo: float,
        min_budget: int = 128,
        max_budget: int = 8192,
        budget_step: int = 128,
        max_batch_size: int = 128,
    ) -> None:
        if tbt_slo <= 0:
            raise ValueError("tbt_slo must be positive")
        if not 0 < min_budget <= max_budget:
            raise ValueError("need 0 < min_budget <= max_budget")
        if budget_step <= 0:
            raise ValueError("budget_step must be positive")
        super().__init__(
            arrays,
            memory,
            token_budget=min_budget,
            max_batch_size=max_batch_size,
        )
        self.exec_model = exec_model
        self.tbt_slo = tbt_slo
        self.min_budget = min_budget
        self.max_budget = max_budget
        self.budget_step = budget_step
        self.budget_history: list[int] = []
        self._pp = exec_model.parallel.pipeline_parallel
        # Candidate-pricing memos, keyed like the engine's (see
        # VectorizedReplicaEngine._price): components are cached, the
        # assembly replays every float operation.
        self._dyn_linear: dict[tuple[int, int], float] = {}
        self._dyn_prefill_attn: dict[tuple[int, int], float] = {}
        self._dyn_decode_attn: dict[int, float] = {}
        self._dyn_token: dict[int, tuple[float, float]] = {}
        self._dyn_send: dict[int, float] = {}
        self._dyn_overhead = exec_model._fixed_overhead(True)

    def _build_batch(self, now: float) -> VecBatch | None:
        self.token_budget = self._pick_budget()
        self.budget_history.append(self.token_budget)
        return super()._build_batch(now)

    # ------------------------------------------------------------------
    def _pick_budget(self) -> int:
        """Largest budget whose predicted iteration fits the SLO."""
        A = self.A
        decode_attn = 0
        num_decodes = 0
        table = self._dyn_decode_attn
        work_time = self.exec_model.attention.work_time
        for row in self._schedulable_rows():
            if A.prefill_done[row] < A.prefill_target[row]:
                continue
            ctx = int(A.prefill_done[row] + A.decode_steps[row])
            value = table.get(ctx)
            if value is None:
                value = work_time(TokenWork.decode(ctx))
                table[ctx] = value
            decode_attn = decode_attn + value
            num_decodes += 1
        lo = self.min_budget
        if not self._fits(lo, num_decodes, decode_attn):
            return self.min_budget
        hi = self.max_budget
        if self._fits(hi, num_decodes, decode_attn):
            return self.max_budget
        while hi - lo > self.budget_step:
            mid = lo + (hi - lo) // (2 * self.budget_step) * self.budget_step
            if mid == lo:
                break
            if self._fits(mid, num_decodes, decode_attn):
                lo = mid
            else:
                hi = mid
        return lo

    def _fits(self, budget: int, num_decodes: int, decode_attn: float) -> bool:
        num_tokens = num_decodes
        attention = decode_attn
        prefill_tokens = budget - num_decodes
        if prefill_tokens > 0:
            key = (prefill_tokens, budget)
            value = self._dyn_prefill_attn.get(key)
            if value is None:
                value = self.exec_model.attention.work_time(
                    TokenWork.prefill_chunk(
                        prefill_tokens, past_len=budget, is_last=False
                    )
                )
                self._dyn_prefill_attn[key] = value
            attention = attention + value
            num_tokens += prefill_tokens
        elif num_decodes == 0:
            return True  # empty candidate — mirrors the object guard
        lin_key = (num_tokens, num_decodes)
        linear = self._dyn_linear.get(lin_key)
        if linear is None:
            linear = self.exec_model.linear.stage_time(num_tokens, num_decodes)
            self._dyn_linear[lin_key] = linear
        token_terms = self._dyn_token.get(num_tokens)
        if token_terms is None:
            model = self.exec_model
            token_terms = (
                model._others_time(num_tokens),
                tp_comm_time(
                    model.model, model.parallel, num_tokens, model.stage_layers
                ),
            )
            self._dyn_token[num_tokens] = token_terms
        stage = IterationTime(
            linear, attention, token_terms[0], token_terms[1], self._dyn_overhead
        ).total
        if self._pp == 1:
            cost = stage
        else:
            send = self._dyn_send.get(num_tokens)
            if send is None:
                send = pp_send_time(
                    self.exec_model.model, self.exec_model.parallel, num_tokens
                )
                self._dyn_send[num_tokens] = send
            cost = self._pp * stage + (self._pp - 1) * send
        return cost <= self.tbt_slo


class VecVLLMScheduler(_ArrivalSortedMixin):
    """Port of :class:`repro.scheduling.vllm.VLLMScheduler` (Algorithm 2)."""

    name = "vllm"

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecPagedMemory,
        max_batch_size: int,
        max_batched_tokens: int = 16384,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        super().__init__(
            arrays,
            memory,
            max_batch_size,
            preemption_mode=preemption_mode,
            kv_bytes_per_token=kv_bytes_per_token,
        )
        if max_batched_tokens <= 0:
            raise ValueError("max_batched_tokens must be positive")
        self.max_batched_tokens = max_batched_tokens

    def _build_batch(self, now: float) -> VecBatch | None:
        A = self.A
        # Eager prefills first (lines 5-9).
        p_rows: list[int] = []
        p_chunk: list[int] = []
        p_past: list[int] = []
        p_is_last: list[bool] = []
        num_tokens = 0
        while (
            len(self.running) < self.max_batch_size
            and len(p_rows) < self.max_batch_size
        ):
            if not self.waiting:
                break
            head = self.waiting[0]
            if (
                p_rows
                and num_tokens + int(A.prefill_target[head]) > self.max_batched_tokens
            ):
                break
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            remaining = int(A.prefill_target[admitted] - A.prefill_done[admitted])
            p_rows.append(admitted)
            p_chunk.append(remaining)
            p_past.append(int(A.prefill_done[admitted]))
            p_is_last.append(True)
            num_tokens += remaining
        if p_rows:
            return VecBatch(_EMPTY_ROWS, _EMPTY_ROWS, p_rows, p_chunk, p_past, p_is_last)

        # Otherwise a decode-only batch (line 12).  vLLM sorts the whole
        # running pool and skips prefill-incomplete rows inside the
        # loop, so the sorted cache covers every runner here.
        sorted_rows = self._sorted_all_running()
        decode_rows, decode_ctx = self._decode_block(sorted_rows, check_complete=True)
        if not len(decode_rows):
            return None
        return VecBatch(decode_rows, decode_ctx, [], [], [], [])

    def _sorted_all_running(self) -> np.ndarray:
        sorted_decodes, partials = self._partition()
        if not len(partials):
            return sorted_decodes
        # Rare (swap re-admission): merge back to the object engine's
        # ordering — the schedulable pool, stably sorted by arrival.
        run_arr = np.array(self._schedulable_rows(), dtype=np.int64)
        order = np.argsort(self.A.arrival_time[run_arr], kind="stable")
        return run_arr[order]


class VecOrcaScheduler(VecScheduler):
    """Port of :class:`repro.scheduling.orca.OrcaScheduler`."""

    name = "orca"

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecReservationMemory,
        max_batch_size: int,
    ) -> None:
        super().__init__(arrays, memory, max_batch_size)
        self._cache_version = -1
        self._cached_running = _EMPTY_ROWS

    def _build_batch(self, now: float) -> VecBatch | None:
        A = self.A
        if self._cache_version != self._run_version:
            self._cached_running = np.array(
                self._schedulable_rows(), dtype=np.int64
            )
            self._cache_version = self._run_version
        run_arr = self._cached_running
        decode_rows = run_arr[: self.max_batch_size]
        if len(decode_rows) and not bool(
            np.all(
                A.prefill_done[decode_rows] >= A.prefill_target[decode_rows]
            )
        ):
            # A running request's full prefill always commits with the
            # batch that admitted it (in-flight rows are excluded), so
            # a partial schedulable runner would mean the port diverged
            # from the object engine.
            raise RuntimeError(
                "vectorized orca core saw a partially prefilled running request"
            )
        decode_ctx = (
            A.prefill_done[decode_rows] + A.decode_steps[decode_rows]
            if len(decode_rows)
            else _EMPTY_ROWS
        )
        size = len(decode_rows)

        p_rows: list[int] = []
        p_chunk: list[int] = []
        p_past: list[int] = []
        p_is_last: list[bool] = []
        while size < self.max_batch_size:
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            remaining = int(A.prefill_target[admitted] - A.prefill_done[admitted])
            p_rows.append(admitted)
            p_chunk.append(remaining)
            p_past.append(int(A.prefill_done[admitted]))
            p_is_last.append(True)
            size += 1
        if size == 0:
            return None
        return VecBatch(decode_rows, decode_ctx, p_rows, p_chunk, p_past, p_is_last)


class VecFasterTransformerScheduler(VecScheduler):
    """Port of :class:`repro.scheduling.faster_transformer.FasterTransformerScheduler`."""

    name = "faster-transformer"

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecReservationMemory,
        max_batch_size: int,
    ) -> None:
        super().__init__(arrays, memory, max_batch_size)
        self._members: list[int] = []

    def _build_batch(self, now: float) -> VecBatch | None:
        A = self.A
        members = [r for r in self._members if A.phase[r] != PH_FINISHED]
        self._members = members
        if not members:
            while len(self._members) < self.max_batch_size:
                admitted = self._admit_waiting_head()
                if admitted is None:
                    break
                self._members.append(admitted)
            members = self._members
        in_flight = self._in_flight
        if in_flight:
            members = [r for r in members if r not in in_flight]
        if not members:
            return None

        member_arr = np.array(members, dtype=np.int64)
        incomplete = A.prefill_done[member_arr] < A.prefill_target[member_arr]
        if bool(incomplete.any()):
            # Line 8 of Algorithm 1: prefill the whole batch at once.
            p_rows: list[int] = []
            p_chunk: list[int] = []
            p_past: list[int] = []
            for row in member_arr[incomplete].tolist():
                p_rows.append(row)
                p_chunk.append(int(A.prefill_target[row] - A.prefill_done[row]))
                p_past.append(int(A.prefill_done[row]))
            return VecBatch(
                _EMPTY_ROWS, _EMPTY_ROWS, p_rows, p_chunk, p_past, [True] * len(p_rows)
            )
        # Line 10: decode-only until the batch drains.
        decode_ctx = A.prefill_done[member_arr] + A.decode_steps[member_arr]
        return VecBatch(member_arr, decode_ctx, [], [], [], [])


class VecChunkedPrefillsOnlyScheduler(_ArrivalSortedMixin):
    """Port of :class:`repro.scheduling.ablations.ChunkedPrefillsOnlyScheduler`."""

    name = "chunked-prefills-only"

    def __init__(
        self,
        arrays: RequestArrays,
        memory: VecPagedMemory,
        token_budget: int,
        max_batch_size: int,
    ) -> None:
        super().__init__(arrays, memory, max_batch_size)
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.token_budget = token_budget
        self._last_was_prefill = False

    def _build_batch(self, now: float) -> VecBatch | None:
        if self._last_was_prefill:
            batch = self._decode_batch() or self._prefill_batch()
        else:
            batch = self._prefill_batch() or self._decode_batch()
        if batch is not None:
            self._last_was_prefill = bool(batch.p_rows)
        return batch

    def _decode_batch(self) -> VecBatch | None:
        sorted_rows = self._sorted_all_running()
        decode_rows, decode_ctx = self._decode_block(sorted_rows, check_complete=True)
        if not len(decode_rows):
            return None
        return VecBatch(decode_rows, decode_ctx, [], [], [], [])

    def _sorted_all_running(self) -> np.ndarray:
        sorted_decodes, partials = self._partition()
        if not len(partials):
            return sorted_decodes
        run_arr = np.array(self._schedulable_rows(), dtype=np.int64)
        order = np.argsort(self.A.arrival_time[run_arr], kind="stable")
        return run_arr[order]

    def _prefill_batch(self) -> VecBatch | None:
        A = self.A
        p_rows: list[int] = []
        p_chunk: list[int] = []
        p_past: list[int] = []
        p_is_last: list[bool] = []
        tokens_used = 0

        def add_prefill(row: int, chunk: int) -> None:
            remaining = int(A.prefill_target[row] - A.prefill_done[row])
            p_rows.append(row)
            p_chunk.append(chunk)
            p_past.append(int(A.prefill_done[row]))
            p_is_last.append(chunk >= remaining)

        # Ongoing partial prefills first (running order), then admit.
        for row in self._schedulable_rows():
            if A.prefill_done[row] >= A.prefill_target[row]:
                continue
            chunk = self._next_chunk(row, tokens_used)
            if chunk <= 0:
                break
            add_prefill(row, chunk)
            tokens_used += chunk
        while len(p_rows) < self.max_batch_size and tokens_used < self.token_budget:
            if not self.waiting:
                break
            head = self.waiting[0]
            chunk = self._next_chunk(head, tokens_used)
            if chunk <= 0:
                break
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            # Recompute after admission: a prefix-cache hit shrinks the
            # remaining prefill (see VecSarathiScheduler._build_batch).
            chunk = self._next_chunk(admitted, tokens_used)
            add_prefill(admitted, chunk)
            tokens_used += chunk
        if not p_rows:
            return None
        return VecBatch(_EMPTY_ROWS, _EMPTY_ROWS, p_rows, p_chunk, p_past, p_is_last)

    def _next_chunk(self, row: int, tokens_used: int) -> int:
        A = self.A
        remaining = int(A.prefill_target[row] - A.prefill_done[row])
        leftover = self.token_budget - tokens_used
        if leftover <= 0:
            return 0
        chunk = min(remaining, leftover)
        return chunk if chunk > 0 else 0
