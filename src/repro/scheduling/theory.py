"""Theory-grounded scheduling policies from the queueing literature.

Implements, on top of the plug-in protocol (:mod:`repro.scheduling.policy`),
the policies studied by "Optimal Scheduling Algorithms for LLM
Inference: Theory and Practice" (PAPERS.md):

* :class:`SRPTOraclePolicy` — Shortest Remaining Processing Time with
  *oracle-known* output lengths.  SRPT minimizes mean flow time on a
  single server, so this is the upper bound every practical scheduler
  is measured against on the leaderboard.
* :class:`SRPTPredictedPolicy` — the deployable variant: a bucketed
  output-length estimator with configurable multiplicative error
  (deterministic per request), modeling a length-prediction model.
* :class:`AgingPriorityPolicy` — tenant-priority FCFS with starvation
  aging: a request's effective priority improves linearly with waiting
  time, so low-priority tenants are delayed under load but never
  starved.

All three compose batches under the adapter's token budget (so they
inherit Sarathi-style chunked prefills and bounded iterations) and
none defines an admission hook — they reorder work, they never shed
it.  They register themselves as ``srpt_oracle``, ``srpt_predicted``
and ``fcfs_aging`` on import (the registry imports this module).
"""

from __future__ import annotations

import math
import random

from repro.scheduling.policy import BatchDirective, PoolView, SchedulingPolicy
from repro.types import Request

# Default knobs for the registered instances; custom variants can be
# registered under new names via register_policy.
DEFAULT_BUCKET_SIZE = 32
DEFAULT_PREDICTION_ERROR = 0.3


class SRPTOraclePolicy(SchedulingPolicy):
    """SRPT with oracle output lengths — the mean-latency upper bound.

    Ranks every runnable request by its true remaining service demand
    (remaining prefill tokens + remaining output tokens) and spends the
    token budget shortest-first.  Ties break by arrival time then
    request id, keeping the order deterministic.
    """

    name = "srpt-oracle"

    def remaining_service(self, request: Request) -> float:
        return request.remaining_prefill + request.remaining_output

    def compose_batch(self, pool: PoolView) -> list[BatchDirective]:
        ranked = sorted(
            pool.runnable,
            key=lambda r: (
                self.remaining_service(r), r.arrival_time, r.request_id
            ),
        )
        return [
            BatchDirective(r)
            if r.is_prefill_complete
            else BatchDirective(r, chunk=pool.token_budget)
            for r in ranked
        ]


class SRPTPredictedPolicy(SRPTOraclePolicy):
    """SRPT under a *predicted* output length, as deployed systems must.

    The predictor buckets the true output length up to a multiple of
    ``bucket_size`` (what a classifier over length classes would emit)
    and perturbs it by a deterministic per-request multiplicative error
    drawn uniformly from ``[1 - error, 1 + error]``.  ``error=0.0``
    degrades gracefully to bucketed-oracle SRPT; larger errors measure
    how fast SRPT's advantage decays with predictor quality.

    The perturbation is keyed on stable request identity (lengths,
    tenant, arrival time) rather than the process-local request id, so
    identical traces get identical predictions in every run and worker.
    """

    name = "srpt-predicted"

    def __init__(
        self,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        error: float = DEFAULT_PREDICTION_ERROR,
        seed: int = 0,
    ) -> None:
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        if error < 0:
            raise ValueError(f"error must be non-negative, got {error}")
        self.bucket_size = bucket_size
        self.error = error
        self.seed = seed
        self._predictions: dict[int, int] = {}

    def predicted_output_len(self, request: Request) -> int:
        cached = self._predictions.get(request.request_id)
        if cached is not None:
            return cached
        bucketed = math.ceil(request.output_len / self.bucket_size) * self.bucket_size
        key = (
            request.prompt_len * 1_000_003 + request.output_len
        ) * 1_000_003 + int(round(request.arrival_time * 1e6)) + request.client_id
        rng = random.Random(self.seed * 0x9E3779B9 + key)
        factor = 1.0 + self.error * rng.uniform(-1.0, 1.0)
        predicted = max(1, round(bucketed * factor))
        self._predictions[request.request_id] = predicted
        return predicted

    def remaining_service(self, request: Request) -> float:
        predicted_remaining = max(
            0, self.predicted_output_len(request) - request.num_emitted
        )
        return request.remaining_prefill + predicted_remaining


class AgingPriorityPolicy(SchedulingPolicy):
    """Tenant-priority FCFS with linear starvation aging.

    ``client_id`` doubles as the tenant's priority class (lower is more
    important, 0 the highest).  A request's effective priority is
    ``client_id - aging_rate × wait_seconds``: within a class requests
    run FCFS, across classes high-priority traffic goes first, and a
    starving low-priority request eventually out-ranks fresh
    high-priority arrivals.  Ongoing decodes are composed first so held
    KV memory keeps draining — aging governs who gets the *leftover*
    budget, preserving the stall-free iteration shape.
    """

    name = "fcfs-aging"

    def __init__(self, aging_rate: float = 0.1) -> None:
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be non-negative, got {aging_rate}")
        self.aging_rate = aging_rate

    def effective_priority(self, request: Request, now: float) -> float:
        waited = max(0.0, now - request.arrival_time)
        return request.client_id - self.aging_rate * waited

    def compose_batch(self, pool: PoolView) -> list[BatchDirective]:
        def rank(request: Request) -> tuple:
            return (
                self.effective_priority(request, pool.now),
                request.arrival_time,
                request.request_id,
            )

        directives = [
            BatchDirective(r) for r in sorted(pool.decodes, key=rank)
        ]
        directives.extend(
            BatchDirective(r, chunk=pool.token_budget)
            for r in sorted((*pool.prefills, *pool.waiting), key=rank)
        )
        return directives


def _register() -> None:
    from repro.scheduling.registry import register_policy

    register_policy(
        "srpt_oracle",
        lambda ctx: SRPTOraclePolicy(),
        description="SRPT with oracle-known output lengths — the "
        "mean-latency upper bound (Optimal-Scheduling paper).",
    )
    register_policy(
        "srpt_predicted",
        lambda ctx: SRPTPredictedPolicy(),
        description="SRPT under a bucketed output-length predictor with "
        f"±{DEFAULT_PREDICTION_ERROR:.0%} deterministic error.",
    )
    register_policy(
        "fcfs_aging",
        lambda ctx: AgingPriorityPolicy(),
        description="Tenant-priority FCFS with linear starvation aging "
        "over client_id priority classes.",
    )


_register()
