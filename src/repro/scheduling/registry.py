"""Scheduler registry: string names → scheduler factories.

The construction surface for every scheduler in the library.  A
:class:`SchedulerSpec` bundles a canonical name with an object-engine
factory, an *optional* vectorized-engine factory (a capability flag:
specs without one fail loudly when the vectorized engine is requested,
naming the schedulers that *are* vectorized-capable), and the memory
family the policy needs.  ``repro.api.build_scheduler`` / ``build_vectorized_scheduler``
dispatch through :func:`resolve`; the legacy :class:`~repro.types.SchedulerKind`
enum survives as a thin compatibility shim whose values are registry
names.

Third-party policies register themselves without touching engine
internals::

    from repro.scheduling.registry import register_policy

    class Shortest(SchedulingPolicy):
        name = "shortest"
        def compose_batch(self, pool): ...

    register_policy("shortest", lambda ctx: Shortest(),
                    description="toy shortest-first policy")

after which ``ServingConfig(scheduler="shortest")`` — and the
``--scheduler`` CLI flag, the ``REPRO_SCHEDULER`` environment variable
and the leaderboard experiment — all accept the new name.  See
DESIGN.md §12 for the full protocol contract.

Determinism requirement: factories must be pure functions of the build
context (no wall-clock, no unseeded randomness) so the same config
builds a bit-identical scheduler everywhere, including sweep workers.
Note that sweep worker processes import ``repro`` fresh: registrations
performed imperatively in the parent (e.g. inside a test) are visible
to in-process runs and ``--jobs 1`` sweeps, but not to spawned workers
— package your policy as an importable module for parallel sweeps.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.types import SchedulerKind

if TYPE_CHECKING:  # imported lazily at runtime: repro.api imports us
    from repro.api import Deployment, ServingConfig
    from repro.engine.arrays import RequestArrays
    from repro.memory.block_manager import MemoryManager
    from repro.perf.iteration import ExecutionModel
    from repro.scheduling.base import Scheduler
    from repro.scheduling.policy import SchedulingPolicy
    from repro.scheduling.vectorized import VecScheduler

# Memory families a spec can request (see repro.api.build_memory):
# "paged" gets a PagedBlockManager (block-granular, preemptible,
# prefix-cache capable); "reservation" gets a ReservationManager
# (worst-case contiguous slots, Orca/FasterTransformer style).
MEMORY_FAMILIES = ("paged", "reservation")


@dataclass
class SchedulerBuildContext:
    """Everything an object-engine scheduler factory may draw on.

    The memory manager is pre-built to the spec's declared family.
    ``execution_model()`` is lazy — only SLO-driven schedulers that
    price candidate iterations (e.g. ``sarathi_dynamic``) should call
    it, so plain policies never pay for model construction.
    """

    deployment: "Deployment"
    config: "ServingConfig"
    memory: "MemoryManager"
    kv_bytes_per_token: int
    _exec_model: "ExecutionModel | None" = None
    _exec_model_factory: Callable[[], "ExecutionModel"] | None = None

    def execution_model(self) -> "ExecutionModel":
        """The deployment's (possibly cached) execution model, memoized."""
        if self._exec_model is None:
            if self._exec_model_factory is None:
                raise RuntimeError(
                    "no execution model available in this build context"
                )
            self._exec_model = self._exec_model_factory()
        return self._exec_model


@dataclass
class VecSchedulerBuildContext:
    """Everything a vectorized scheduler factory may draw on.

    ``arrays`` is the struct-of-arrays request store shared by the
    scheduler and its row-indexed memory manager (pre-built to the
    spec's declared family).  ``execution_model()`` is lazy, exactly
    like the object context's: only SLO-driven cores that price
    candidate iterations (``sarathi_dynamic``) should call it.
    """

    deployment: "Deployment"
    config: "ServingConfig"
    arrays: "RequestArrays"
    memory: Any
    kv_bytes_per_token: int
    _exec_model: "ExecutionModel | None" = None
    _exec_model_factory: Callable[[], "ExecutionModel"] | None = None

    def execution_model(self) -> "ExecutionModel":
        """The deployment's (possibly cached) execution model, memoized."""
        if self._exec_model is None:
            if self._exec_model_factory is None:
                raise RuntimeError(
                    "no execution model available in this build context"
                )
            self._exec_model = self._exec_model_factory()
        return self._exec_model


@dataclass(frozen=True)
class SchedulerSpec:
    """One registered scheduler: a name, factories, and capabilities.

    ``build`` constructs the object-engine scheduler and is mandatory —
    the object engine is the golden reference every policy must run on.
    ``build_vectorized`` is the capability flag for the vectorized
    engine: ``None`` means unsupported, and requesting
    ``engine='vectorized'`` fails loudly with
    ``vectorized_unsupported_reason``.
    """

    name: str
    build: Callable[[SchedulerBuildContext], "Scheduler"]
    description: str = ""
    memory_family: str = "paged"
    build_vectorized: Callable[[VecSchedulerBuildContext], "VecScheduler"] | None = None
    vectorized_unsupported_reason: str = "no vectorized implementation registered"
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise ValueError(f"invalid scheduler name {self.name!r}")
        if self.memory_family not in MEMORY_FAMILIES:
            raise ValueError(
                f"unknown memory family {self.memory_family!r}; "
                f"choose one of {', '.join(MEMORY_FAMILIES)}"
            )

    @property
    def supports_vectorized(self) -> bool:
        return self.build_vectorized is not None


_REGISTRY: dict[str, SchedulerSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: SchedulerSpec, replace: bool = False) -> SchedulerSpec:
    """Add a spec to the registry (``replace=True`` to overwrite)."""
    if not replace:
        for name in (spec.name, *spec.aliases):
            if name in _REGISTRY or name in _ALIASES:
                raise ValueError(
                    f"scheduler {name!r} is already registered; "
                    "pass replace=True to overwrite"
                )
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def unregister(name: str) -> None:
    """Remove a spec (tests use this to clean up toy registrations)."""
    spec = _REGISTRY.pop(name, None)
    if spec is None:
        raise KeyError(name)
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)


def scheduler_name(scheduler: "SchedulerKind | str") -> str:
    """The canonical registry name for an enum member or string."""
    if isinstance(scheduler, SchedulerKind):
        return scheduler.value
    return str(scheduler)


def resolve(scheduler: "SchedulerKind | str") -> SchedulerSpec:
    """Look up a spec by name (or enum shim), with did-you-mean help."""
    name = scheduler_name(scheduler)
    name = _ALIASES.get(name, name)
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    known = registered_names()
    hints = difflib.get_close_matches(name, known + list(_ALIASES), n=3)
    suggestion = f" — did you mean {', '.join(repr(h) for h in hints)}?" if hints else ""
    raise ValueError(
        f"unknown scheduler {name!r}{suggestion} "
        f"(registered: {', '.join(known)})"
    )


def registered_names() -> list[str]:
    """Canonical scheduler names, in registration order (built-ins first)."""
    return list(_REGISTRY)


def vectorized_names() -> list[str]:
    """Names of schedulers with a vectorized factory, registration order."""
    return [name for name, spec in _REGISTRY.items() if spec.supports_vectorized]


def list_specs() -> list[SchedulerSpec]:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


def register_policy(
    name: str,
    policy_factory: Callable[[SchedulerBuildContext], "SchedulingPolicy"],
    description: str = "",
    memory_family: str = "paged",
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> SchedulerSpec:
    """Register a :class:`~repro.scheduling.policy.SchedulingPolicy`.

    The common case for plug-in authors: supply a factory for the
    *policy* object alone and this wraps it in the
    :class:`~repro.scheduling.policy.PolicyScheduler` adapter, wired to
    the config's token budget, batch-size cap and preemption mode.
    """

    def build(ctx: SchedulerBuildContext) -> "Scheduler":
        from repro.scheduling.policy import PolicyScheduler

        return PolicyScheduler(
            policy_factory(ctx),
            ctx.memory,
            token_budget=ctx.config.token_budget,
            max_batch_size=ctx.config.max_batch_size,
            preemption_mode=ctx.config.preemption_mode,
            kv_bytes_per_token=ctx.kv_bytes_per_token,
        )

    return register(
        SchedulerSpec(
            name=name,
            build=build,
            description=description,
            memory_family=memory_family,
            vectorized_unsupported_reason=(
                "policy-protocol schedulers run on the object engine"
            ),
            aliases=aliases,
        ),
        replace=replace,
    )


# ----------------------------------------------------------------------
# Built-in schedulers (the paper's four baselines + ablations).
# Factories import their classes lazily so importing the registry never
# drags in numpy or the perf model.
# ----------------------------------------------------------------------
def _build_faster_transformer(ctx: SchedulerBuildContext):
    from repro.scheduling.faster_transformer import FasterTransformerScheduler

    return FasterTransformerScheduler(ctx.memory, ctx.config.max_batch_size)


def _build_vec_faster_transformer(ctx: VecSchedulerBuildContext):
    from repro.scheduling.vectorized import VecFasterTransformerScheduler

    return VecFasterTransformerScheduler(
        ctx.arrays, ctx.memory, ctx.config.max_batch_size
    )


def _build_orca(ctx: SchedulerBuildContext):
    from repro.scheduling.orca import OrcaScheduler

    return OrcaScheduler(ctx.memory, ctx.config.max_batch_size)


def _build_vec_orca(ctx: VecSchedulerBuildContext):
    from repro.scheduling.vectorized import VecOrcaScheduler

    return VecOrcaScheduler(ctx.arrays, ctx.memory, ctx.config.max_batch_size)


def _build_vllm(ctx: SchedulerBuildContext):
    from repro.scheduling.vllm import VLLMScheduler

    return VLLMScheduler(
        ctx.memory,
        ctx.config.max_batch_size,
        preemption_mode=ctx.config.preemption_mode,
        kv_bytes_per_token=ctx.kv_bytes_per_token,
    )


def _build_vec_vllm(ctx: VecSchedulerBuildContext):
    from repro.scheduling.vectorized import VecVLLMScheduler

    return VecVLLMScheduler(
        ctx.arrays,
        ctx.memory,
        ctx.config.max_batch_size,
        preemption_mode=ctx.config.preemption_mode,
        kv_bytes_per_token=ctx.kv_bytes_per_token,
    )


def _build_sarathi(ctx: SchedulerBuildContext):
    from repro.core.sarathi import SarathiScheduler

    return SarathiScheduler(
        ctx.memory,
        token_budget=ctx.config.token_budget,
        max_batch_size=ctx.config.max_batch_size,
        preemption_mode=ctx.config.preemption_mode,
        kv_bytes_per_token=ctx.kv_bytes_per_token,
    )


def _build_vec_sarathi(ctx: VecSchedulerBuildContext):
    from repro.scheduling.vectorized import VecSarathiScheduler

    return VecSarathiScheduler(
        ctx.arrays,
        ctx.memory,
        token_budget=ctx.config.token_budget,
        max_batch_size=ctx.config.max_batch_size,
        preemption_mode=ctx.config.preemption_mode,
        kv_bytes_per_token=ctx.kv_bytes_per_token,
    )


def _build_sarathi_dynamic(ctx: SchedulerBuildContext):
    from repro.core.dynamic import DynamicSarathiScheduler
    from repro.perf.profiler import derive_slo

    exec_model = ctx.execution_model()
    slo = ctx.config.tbt_slo
    if slo is None:
        slo = derive_slo(exec_model, strict=True)

    def iteration_cost(works, _exec_model=exec_model):
        stage = _exec_model.iteration_time(works).total
        pp = _exec_model.parallel.pipeline_parallel
        if pp == 1:
            return stage
        return pp * stage + (pp - 1) * _exec_model.pipeline_send_time(works)

    return DynamicSarathiScheduler(
        ctx.memory,
        tbt_slo=slo,
        iteration_cost=iteration_cost,
        max_batch_size=ctx.config.max_batch_size,
    )


def _build_vec_sarathi_dynamic(ctx: VecSchedulerBuildContext):
    from repro.perf.profiler import derive_slo
    from repro.scheduling.vectorized import VecDynamicSarathiScheduler

    exec_model = ctx.execution_model()
    slo = ctx.config.tbt_slo
    if slo is None:
        slo = derive_slo(exec_model, strict=True)
    return VecDynamicSarathiScheduler(
        ctx.arrays,
        ctx.memory,
        exec_model=exec_model,
        tbt_slo=slo,
        max_batch_size=ctx.config.max_batch_size,
    )


def _build_chunked_only(ctx: SchedulerBuildContext):
    from repro.scheduling.ablations import ChunkedPrefillsOnlyScheduler

    return ChunkedPrefillsOnlyScheduler(
        ctx.memory,
        token_budget=ctx.config.token_budget,
        max_batch_size=ctx.config.max_batch_size,
    )


def _build_vec_chunked_only(ctx: VecSchedulerBuildContext):
    from repro.scheduling.vectorized import VecChunkedPrefillsOnlyScheduler

    return VecChunkedPrefillsOnlyScheduler(
        ctx.arrays,
        ctx.memory,
        token_budget=ctx.config.token_budget,
        max_batch_size=ctx.config.max_batch_size,
    )


def _build_hybrid_only(ctx: SchedulerBuildContext):
    from repro.scheduling.ablations import hybrid_batching_only_scheduler

    return hybrid_batching_only_scheduler(
        ctx.memory,
        token_budget=ctx.config.token_budget,
        max_batch_size=ctx.config.max_batch_size,
    )


def _build_vec_hybrid_only(ctx: VecSchedulerBuildContext):
    from repro.scheduling.vectorized import VecSarathiScheduler

    core = VecSarathiScheduler(
        ctx.arrays,
        ctx.memory,
        token_budget=ctx.config.token_budget,
        max_batch_size=ctx.config.max_batch_size,
        chunk_prefills=False,
        preemption_mode=ctx.config.preemption_mode,
        kv_bytes_per_token=ctx.kv_bytes_per_token,
    )
    core.name = "hybrid-batching-only"
    return core


def _register_builtins() -> None:
    register(SchedulerSpec(
        name=SchedulerKind.FASTER_TRANSFORMER.value,
        build=_build_faster_transformer,
        build_vectorized=_build_vec_faster_transformer,
        memory_family="reservation",
        description="Request-level batching (Algorithm 1): a batch runs "
        "to full completion before the next forms.",
    ))
    register(SchedulerSpec(
        name=SchedulerKind.ORCA.value,
        build=_build_orca,
        build_vectorized=_build_vec_orca,
        memory_family="reservation",
        description="Iteration-level batching with eager full prefills "
        "and reservation-style memory (Orca, §2.5).",
    ))
    register(SchedulerSpec(
        name=SchedulerKind.VLLM.value,
        build=_build_vllm,
        build_vectorized=_build_vec_vllm,
        description="Prefill-prioritizing segregated batches over paged "
        "KV memory (Algorithm 2).",
    ))
    register(SchedulerSpec(
        name=SchedulerKind.SARATHI.value,
        build=_build_sarathi,
        build_vectorized=_build_vec_sarathi,
        description="Stall-free batching with chunked prefills under a "
        "fixed token budget (Algorithm 3, the paper's contribution).",
    ))
    register(SchedulerSpec(
        name=SchedulerKind.SARATHI_DYNAMIC.value,
        build=_build_sarathi_dynamic,
        build_vectorized=_build_vec_sarathi_dynamic,
        description="Sarathi with an SLO-driven per-iteration token "
        "budget priced on the execution model (§5.1).",
    ))
    register(SchedulerSpec(
        name=SchedulerKind.CHUNKED_ONLY.value,
        build=_build_chunked_only,
        build_vectorized=_build_vec_chunked_only,
        description="Ablation: chunked prefills without hybrid batching "
        "— decode-only and prefill-only iterations stay segregated "
        "(Table 4).",
    ))
    register(SchedulerSpec(
        name=SchedulerKind.HYBRID_ONLY.value,
        build=_build_hybrid_only,
        build_vectorized=_build_vec_hybrid_only,
        description="Ablation: hybrid (mixed) batches without chunking "
        "— whole prompts ride along with decodes (Table 4).",
    ))


_register_builtins()

# The theory-grounded policies (SRPT oracle/predicted, priority+aging)
# register themselves on import; pulling them in here makes every
# registry consumer — CLI, leaderboard, property tests — see them.
import repro.scheduling.theory  # noqa: E402,F401  (registration side effect)
