"""Ablation schedulers isolating Sarathi-Serve's two techniques (§5.4.2).

* **chunked-prefills-only** — prompts are chunked under the token
  budget, but batches stay segregated (no hybrid coalescing): the
  scheduler alternates between a decode-only iteration and a
  prefill-chunk iteration.  Decode stalls are bounded by one chunk's
  latency (good TBT) but prefill throughput is halved and chunks are
  slightly inefficient, inflating TTFT (Table 4).

* **hybrid-batching-only** — Orca-style hybrid batches with paged
  memory and decode-first ordering, but no chunking; provided by
  ``SarathiScheduler(chunk_prefills=False)`` and re-exported here as a
  factory for symmetry.
"""

from __future__ import annotations

from repro.batch import ScheduledWork
from repro.core.chunking import get_next_chunk_size
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.types import Request, TokenWork


class ChunkedPrefillsOnlyScheduler(Scheduler):
    """Chunked prefills without hybrid batching (segregated iterations)."""

    name = "chunked-prefills-only"

    def __init__(
        self,
        memory: MemoryManager,
        token_budget: int,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    ) -> None:
        super().__init__(memory, max_batch_size)
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.token_budget = token_budget
        self._last_was_prefill = False

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        # Alternate phases so neither starves: after a prefill-chunk
        # iteration, decodes run; after decodes, pending chunks run.
        if self._last_was_prefill:
            items = self._decode_items() or self._prefill_items()
        else:
            items = self._prefill_items() or self._decode_items()
        if items:
            self._last_was_prefill = items[0].work.is_prefill
        return items

    # ------------------------------------------------------------------
    def _decode_items(self) -> list[ScheduledWork]:
        items: list[ScheduledWork] = []
        for request in sorted(self._schedulable_running(), key=lambda r: r.arrival_time):
            if len(items) >= self.max_batch_size:
                break
            if not request.is_prefill_complete:
                continue
            if request not in self.running:
                continue
            if not self._prepare_decode(request):
                continue
            items.append(
                ScheduledWork(request=request, work=TokenWork.decode(request.context_len))
            )
        return items

    def _prefill_items(self) -> list[ScheduledWork]:
        items: list[ScheduledWork] = []
        tokens_used = 0
        # Ongoing partial prefills first, then admit new requests.
        for request in self._schedulable_running():
            if request.is_prefill_complete:
                continue
            chunk = get_next_chunk_size(request, self.token_budget, tokens_used)
            if chunk <= 0:
                break
            items.append(self._prefill_item(request, chunk))
            tokens_used += chunk
        while len(items) < self.max_batch_size and tokens_used < self.token_budget:
            head = self.waiting[0] if self.waiting else None
            if head is None:
                break
            chunk = get_next_chunk_size(head, self.token_budget, tokens_used)
            if chunk <= 0:
                break
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            # Recompute after admission: a prefix-cache hit shrinks the
            # remaining prefill (see SarathiScheduler._build_batch).
            chunk = get_next_chunk_size(admitted, self.token_budget, tokens_used)
            items.append(self._prefill_item(admitted, chunk))
            tokens_used += chunk
        return items

    @staticmethod
    def _prefill_item(request: Request, chunk: int) -> ScheduledWork:
        is_last = chunk >= request.remaining_prefill
        return ScheduledWork(
            request=request,
            work=TokenWork.prefill_chunk(
                chunk, past_len=request.prefill_done, is_last=is_last
            ),
        )


def hybrid_batching_only_scheduler(
    memory: MemoryManager,
    token_budget: int,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
) -> "Scheduler":
    """Hybrid batches without chunking (Table 4's hybrid-batching-only)."""
    # Imported here: ``core.sarathi`` depends on ``scheduling.base``,
    # so a module-level import would be circular via the package init.
    from repro.core.sarathi import SarathiScheduler

    scheduler = SarathiScheduler(
        memory,
        token_budget=token_budget,
        max_batch_size=max_batch_size,
        chunk_prefills=False,
    )
    scheduler.name = "hybrid-batching-only"
    return scheduler
