"""vLLM-style iteration-level, prefill-prioritizing scheduler.

Implements the paper's Algorithm 2: whenever new requests can be
admitted (paged KV memory available), it schedules a *prefill-only*
batch with their full prompts; otherwise it runs a decode-only batch
of everything running.  Eager prefills maximize subsequent decode
batch size — great for throughput — but a multi-second prompt stalls
every ongoing decode (the paper's *generation stalls*, Fig. 1a).

Preemption follows vLLM's recompute policy: when a decode cannot grow
its KV allocation, the most recently arrived running request is
evicted, re-queued, and later re-prefilled from scratch.
"""

from __future__ import annotations

from repro.batch import ScheduledWork
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.types import TokenWork

# Cap on the total prompt tokens packed into one prefill-only batch
# (vLLM's ``max_num_batched_tokens``); a single longer prompt is still
# admitted alone.
DEFAULT_MAX_BATCHED_TOKENS = 16384


class VLLMScheduler(Scheduler):
    """Iteration-level batching with eager, segregated prefills (Alg. 2)."""

    name = "vllm"

    def __init__(
        self,
        memory: MemoryManager,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_batched_tokens: int = DEFAULT_MAX_BATCHED_TOKENS,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        super().__init__(
            memory,
            max_batch_size,
            preemption_mode=preemption_mode,
            kv_bytes_per_token=kv_bytes_per_token,
        )
        if max_batched_tokens <= 0:
            raise ValueError("max_batched_tokens must be positive")
        self.max_batched_tokens = max_batched_tokens

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        prefill_items = self._build_prefill_batch()
        if prefill_items:
            return prefill_items
        return self._build_decode_batch()

    # ------------------------------------------------------------------
    def _build_prefill_batch(self) -> list[ScheduledWork]:
        """Lines 5-9 of Algorithm 2: admit and prefill eagerly."""
        items: list[ScheduledWork] = []
        num_tokens = 0

        # Requests re-queued by preemption sit at the waiting head and
        # re-prefill first; the rest are admitted FCFS.
        while len(self.running) < self.max_batch_size and len(items) < self.max_batch_size:
            head = self.waiting[0] if self.waiting else None
            if head is None:
                break
            if items and num_tokens + head.prefill_target > self.max_batched_tokens:
                break
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            items.append(
                ScheduledWork(
                    request=admitted,
                    work=TokenWork.prefill_chunk(
                        admitted.remaining_prefill,
                        past_len=admitted.prefill_done,
                        is_last=True,
                    ),
                )
            )
            num_tokens += admitted.remaining_prefill
        return items

    def _build_decode_batch(self) -> list[ScheduledWork]:
        """Line 12 of Algorithm 2, with recompute preemption on OOM."""
        items: list[ScheduledWork] = []
        # Iterate over a copy ordered by arrival (FCFS priority): the
        # preemption helper may evict later arrivals from ``running``.
        for request in sorted(self._schedulable_running(), key=lambda r: r.arrival_time):
            if len(items) >= self.max_batch_size:
                break
            if not request.is_prefill_complete:
                continue  # re-queued by a preemption race; prefilled later
            if request not in self.running:
                continue  # evicted while making room for an earlier request
            if not self._prepare_decode(request):
                continue  # cannot make room this iteration
            items.append(
                ScheduledWork(request=request, work=TokenWork.decode(request.context_len))
            )
        return items
