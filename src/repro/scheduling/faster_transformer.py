"""FasterTransformer-style request-level, decode-prioritizing scheduler.

Implements the paper's Algorithm 1: a batch of requests is admitted
only when the previous batch has fully drained (no decodes left), all
their prefills run together, and the batch then decodes to completion
with a shrinking batch size as requests finish.  TBT is excellent —
no new prefill ever interferes with ongoing decodes — but throughput
suffers from the drain-down tail (§3.2).
"""

from __future__ import annotations

from repro.batch import ScheduledWork
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.types import Request, TokenWork


class FasterTransformerScheduler(Scheduler):
    """Request-level batching (Algorithm 1).

    Prompt padding waste is not modelled (each prefill is charged its
    true length), which strictly *favours* this baseline; it loses on
    batch drain-down and head-of-line blocking regardless.
    """

    name = "faster-transformer"

    def __init__(
        self,
        memory: MemoryManager,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    ) -> None:
        super().__init__(memory, max_batch_size)
        self._members: list[Request] = []

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        self._members = [r for r in self._members if not r.is_finished]
        if not self._members:
            self._admit_new_batch()
        schedulable = [
            r for r in self._members if r.request_id not in self._in_flight
        ]
        if not schedulable:
            return []

        pending_prefill = [r for r in schedulable if not r.is_prefill_complete]
        if pending_prefill:
            # Line 8 of Algorithm 1: prefill the whole batch at once.
            return [
                ScheduledWork(
                    request=r,
                    work=TokenWork.prefill_chunk(
                        r.remaining_prefill, past_len=r.prefill_done, is_last=True
                    ),
                )
                for r in pending_prefill
            ]
        # Line 10: decode-only iterations until the batch drains.
        return [
            ScheduledWork(request=r, work=TokenWork.decode(r.context_len))
            for r in schedulable
        ]

    def _admit_new_batch(self) -> None:
        while len(self._members) < self.max_batch_size:
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            self._members.append(admitted)
