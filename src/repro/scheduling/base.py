"""Scheduler framework shared by all four policies and the ablations.

A scheduler owns three request pools:

* ``waiting`` — arrived, not yet holding KV memory;
* ``running`` — admitted (holding memory), progressing through prefill
  and decode;
* ``in-flight`` — the subset of running requests currently inside a
  scheduled-but-uncommitted batch.  With pipeline parallelism several
  micro-batches are in flight at once and a request may appear in at
  most one of them (iteration-level scheduling, Orca §2.5).

The engine calls ``schedule`` whenever the first pipeline stage is
free and ``on_batch_complete`` when a batch leaves the last stage;
progress (token emission, memory growth, completion, preemption) is
committed at completion time.
"""

from __future__ import annotations

import abc
from collections import deque

from repro.batch import Batch, ScheduledWork
from repro.memory.block_manager import MemoryManager
from repro.types import PreemptionMode, Request, RequestPhase

DEFAULT_MAX_BATCH_SIZE = 128


class Scheduler(abc.ABC):
    """Admission control plus batching policy (§2.5)."""

    name: str = "abstract"

    # Optional fleet-level admission hook (the plug-in protocol's second
    # hook, see repro.scheduling.policy): a callable
    # ``(snapshot: ReplicaSnapshot, request, now) -> bool`` consulted by
    # the fleet router before delivering a request to this scheduler's
    # replica; False defers the request into the router's backoff-retry
    # loop.  None (the default for all built-in schedulers) admits
    # unconditionally.
    admission_hook = None

    # Baseline budgets stashed by the first override_token_budget call:
    # (token_budget, min_budget, max_budget) with None for absent attrs.
    _base_budgets = None

    def __init__(
        self,
        memory: MemoryManager,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        """``preemption_mode`` selects what happens to an evicted
        request: ``"recompute"`` re-queues it to re-prefill from scratch
        (vLLM's default), ``"swap"`` parks its KV cache in host memory
        and swaps it back when space frees up — the engine charges the
        transfer volume (``kv_bytes_per_token`` × context) to the
        surrounding iterations.  A request that must evict *itself*
        always recomputes: swapping self out and straight back in would
        never make progress.
        """
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        preemption_mode = PreemptionMode.parse(preemption_mode)
        if preemption_mode is PreemptionMode.SWAP and kv_bytes_per_token <= 0:
            raise ValueError("swap mode needs kv_bytes_per_token > 0")
        self.memory = memory
        self.max_batch_size = max_batch_size
        self.preemption_mode = preemption_mode
        self.kv_bytes_per_token = kv_bytes_per_token
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.swapped: list[Request] = []
        self._in_flight: set[int] = set()
        # Requests already placed in the batch currently being built —
        # they must never be chosen as preemption victims.
        self._claimed: set[int] = set()
        self._pending_swap_bytes = 0
        # Cumulative counters, handy for tests and telemetry.
        self.num_scheduled_batches = 0
        self.num_preemptions = 0
        self.num_swap_outs = 0
        self.num_swap_ins = 0

    # ------------------------------------------------------------------
    # Engine-facing interface
    # ------------------------------------------------------------------
    def add_request(self, request: Request, now: float) -> None:
        """Accept a newly arrived request into the waiting queue (FCFS)."""
        if request.arrival_time > now + 1e-9:
            raise ValueError(
                f"request {request.request_id} arrives at {request.arrival_time}, "
                f"but now is {now}"
            )
        self.waiting.append(request)

    def override_token_budget(self, budget: int | None) -> None:
        """Clamp the per-iteration token budget (brownout hook).

        ``None`` restores the configured baseline.  Schedulers without
        a token budget (e.g. FasterTransformer) ignore the call.
        Dynamic-budget schedulers clamp their search *range* instead —
        their ``token_budget`` is recomputed every batch.
        """
        if not hasattr(self, "token_budget"):
            return
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if self._base_budgets is None:
            self._base_budgets = (
                self.token_budget,
                getattr(self, "min_budget", None),
                getattr(self, "max_budget", None),
            )
        base_budget, base_min, base_max = self._base_budgets
        if budget is None:
            self.token_budget = base_budget
            if base_min is not None:
                self.min_budget = base_min
            if base_max is not None:
                self.max_budget = base_max
            return
        if base_max is not None:
            self.max_budget = min(base_max, budget)
            self.min_budget = min(base_min, self.max_budget)
        else:
            self.token_budget = min(base_budget, budget)

    def schedule(self, now: float) -> Batch | None:
        """Form the next batch, or ``None`` when there is nothing to run."""
        self._claimed.clear()
        self._try_swap_in()
        items = self._build_batch(now)
        self._claimed.clear()
        if not items:
            return None
        batch = Batch(items=items, scheduled_at=now, swap_bytes=self._pending_swap_bytes)
        self._pending_swap_bytes = 0
        for item in batch.items:
            request = item.request
            self._in_flight.add(request.request_id)
            if request.first_scheduled_at is None:
                request.first_scheduled_at = now
            if request.phase is RequestPhase.QUEUED:
                request.phase = RequestPhase.PREFILL
        self.num_scheduled_batches += 1
        return batch

    def on_batch_complete(self, batch: Batch, now: float) -> list[Request]:
        """Commit a completed batch's progress; return finished requests."""
        finished = []
        for item in batch.items:
            request = item.request
            self._in_flight.discard(request.request_id)
            if item.work.is_prefill:
                request.record_prefill(item.work.num_tokens, now)
            else:
                # The KV slot was reserved at schedule time (see
                # ``_prepare_decode``); only the progress commits here.
                request.record_decode(now)
            if request.is_finished:
                self.memory.free(request)
                self._remove_running(request)
                finished.append(request)
        return finished

    # ------------------------------------------------------------------
    # Policy hook
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build_batch(self, now: float) -> list[ScheduledWork]:
        """Select requests and their token work for the next iteration."""

    # ------------------------------------------------------------------
    # Shared helpers for concrete policies
    # ------------------------------------------------------------------
    def _schedulable_running(self) -> list[Request]:
        """Running requests not currently inside an in-flight batch."""
        return [
            r for r in self.running if r.request_id not in self._in_flight
        ]

    def _admit_waiting_head(self) -> Request | None:
        """Admit the FCFS head of the waiting queue if memory allows."""
        if not self.waiting:
            return None
        head = self.waiting[0]
        if not self.memory.can_admit(head):
            return None
        self.waiting.popleft()
        self.memory.admit(head)
        self.running.append(head)
        return head

    def _prepare_decode(self, request: Request) -> bool:
        """Reserve the KV slot for ``request``'s next token, preempting
        lower-priority requests if needed.  Must be called when
        *scheduling* a decode so concurrent decodes cannot race for the
        same block.  Returns False when the request cannot decode this
        iteration (including when it preempted *itself*).
        """
        if not self._preempt_for_decode(request):
            return False
        self.memory.append_token(request)
        self._claimed.add(request.request_id)
        return True

    def _preempt_for_decode(self, request: Request) -> bool:
        """Free memory for ``request``'s next token by evicting others.

        vLLM's recompute policy: evict the lowest-priority (most
        recently arrived) running request and re-queue it at the front
        of the waiting queue.  When ``request`` is itself the lowest
        priority left, it self-preempts.  Returns True once ``request``
        can append a token.
        """
        while not self.memory.can_append_token(request):
            victim = self._pick_preemption_victim(request)
            if victim is None or victim.arrival_time < request.arrival_time:
                # ``request`` is the lowest-priority request left.  It
                # must recompute even in swap mode: swapping itself out
                # and immediately back in could never make progress.
                self._evict(request, force_recompute=True)
                return False
            self._evict(victim)
        return True

    def _evict(self, victim: Request, force_recompute: bool = False) -> None:
        if self.preemption_mode is PreemptionMode.SWAP and not force_recompute:
            self._swap_out(victim)
            return
        self.memory.free(victim)
        victim.restart_after_preemption()
        self._remove_running(victim)
        self.waiting.appendleft(victim)
        self.num_preemptions += 1

    def _swap_out(self, victim: Request) -> None:
        """Park the victim's KV cache in host memory (state preserved)."""
        self._pending_swap_bytes += self.kv_bytes_per_token * victim.context_len
        self.memory.free(victim)
        victim.phase = RequestPhase.PREEMPTED
        self._remove_running(victim)
        self.swapped.append(victim)
        self.num_preemptions += 1
        self.num_swap_outs += 1

    def _try_swap_in(self) -> None:
        """Bring swapped requests back once memory allows (FCFS)."""
        if not self.swapped:
            return
        still_out = []
        for request in self.swapped:
            if self.memory.can_admit(request):
                self.memory.admit(request)
                self._pending_swap_bytes += (
                    self.kv_bytes_per_token * request.context_len
                )
                request.phase = (
                    RequestPhase.DECODE
                    if request.is_prefill_complete
                    else RequestPhase.PREFILL
                )
                self.running.append(request)
                self.num_swap_ins += 1
            else:
                still_out.append(request)
        self.swapped = still_out

    def _pick_preemption_victim(self, protect: Request) -> Request | None:
        candidates = [
            r
            for r in self.running
            if r is not protect
            and r.request_id not in self._in_flight
            and r.request_id not in self._claimed
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.arrival_time)

    def _remove_running(self, request: Request) -> None:
        try:
            self.running.remove(request)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def has_work(self) -> bool:
        return (
            bool(self.waiting)
            or bool(self.swapped)
            or bool(self._schedulable_running())
        )
