"""Scheduling policies: the paper's baselines, ablations, and plug-ins.

The Sarathi-Serve scheduler itself — the paper's core contribution —
lives in :mod:`repro.core`.  Third-party policies enter through the
plug-in protocol (:mod:`repro.scheduling.policy`) and the registry
(:mod:`repro.scheduling.registry`); the theory-grounded baselines
(SRPT oracle/predicted, priority+aging) live in
:mod:`repro.scheduling.theory`.
"""

from repro.scheduling.ablations import (
    ChunkedPrefillsOnlyScheduler,
    hybrid_batching_only_scheduler,
)
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.scheduling.faster_transformer import FasterTransformerScheduler
from repro.scheduling.orca import OrcaScheduler
from repro.scheduling.policy import (
    BatchDirective,
    MemoryView,
    PolicyScheduler,
    PoolView,
    SchedulingPolicy,
)
from repro.scheduling.registry import (
    SchedulerBuildContext,
    SchedulerSpec,
    VecSchedulerBuildContext,
    list_specs,
    register,
    register_policy,
    registered_names,
    resolve,
    scheduler_name,
    unregister,
)
from repro.scheduling.theory import (
    AgingPriorityPolicy,
    SRPTOraclePolicy,
    SRPTPredictedPolicy,
)
from repro.scheduling.vllm import DEFAULT_MAX_BATCHED_TOKENS, VLLMScheduler

__all__ = [
    "Scheduler",
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_BATCHED_TOKENS",
    "FasterTransformerScheduler",
    "OrcaScheduler",
    "VLLMScheduler",
    "ChunkedPrefillsOnlyScheduler",
    "hybrid_batching_only_scheduler",
    # plug-in protocol
    "SchedulingPolicy",
    "PolicyScheduler",
    "PoolView",
    "MemoryView",
    "BatchDirective",
    # registry
    "SchedulerSpec",
    "SchedulerBuildContext",
    "VecSchedulerBuildContext",
    "register",
    "register_policy",
    "registered_names",
    "resolve",
    "scheduler_name",
    "list_specs",
    "unregister",
    # theory-grounded policies
    "SRPTOraclePolicy",
    "SRPTPredictedPolicy",
    "AgingPriorityPolicy",
]
