"""Scheduling policies: the paper's baselines and ablations.

The Sarathi-Serve scheduler itself — the paper's core contribution —
lives in :mod:`repro.core`.
"""

from repro.scheduling.ablations import (
    ChunkedPrefillsOnlyScheduler,
    hybrid_batching_only_scheduler,
)
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.scheduling.faster_transformer import FasterTransformerScheduler
from repro.scheduling.orca import OrcaScheduler
from repro.scheduling.vllm import DEFAULT_MAX_BATCHED_TOKENS, VLLMScheduler

__all__ = [
    "Scheduler",
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_BATCHED_TOKENS",
    "FasterTransformerScheduler",
    "OrcaScheduler",
    "VLLMScheduler",
    "ChunkedPrefillsOnlyScheduler",
    "hybrid_batching_only_scheduler",
]
