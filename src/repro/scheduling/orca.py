"""Orca-style iteration-level, prefill-prioritizing hybrid scheduler.

Orca (OSDI '22) introduced iteration-level batching: requests join and
leave the batch every iteration.  It eagerly admits new requests and
runs their *entire* prompt in the same (hybrid) iteration as ongoing
decodes.  Because a hybrid iteration containing a multi-thousand-token
prompt takes as long as that prompt's prefill, ongoing decodes still
suffer generation stalls (Fig. 7), and its reservation-style memory
manager caps batch size well below vLLM's (§5.1).
"""

from __future__ import annotations

from repro.batch import ScheduledWork
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.types import TokenWork


class OrcaScheduler(Scheduler):
    """Iteration-level hybrid batching with eager full prefills."""

    name = "orca"

    def __init__(
        self,
        memory: MemoryManager,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    ) -> None:
        super().__init__(memory, max_batch_size)

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        items: list[ScheduledWork] = []

        # Ongoing work first: decodes, plus any request whose prefill is
        # still incomplete (only possible mid-admission in this policy).
        for request in self._schedulable_running():
            if len(items) >= self.max_batch_size:
                break
            if request.is_prefill_complete:
                items.append(
                    ScheduledWork(
                        request=request, work=TokenWork.decode(request.context_len)
                    )
                )
            else:
                items.append(self._full_prefill(request))

        # Eager admission: pack new requests' full prompts into this
        # same hybrid iteration whenever memory and batch slots allow.
        while len(items) < self.max_batch_size:
            admitted = self._admit_waiting_head()
            if admitted is None:
                break
            items.append(self._full_prefill(admitted))
        return items

    @staticmethod
    def _full_prefill(request) -> ScheduledWork:
        return ScheduledWork(
            request=request,
            work=TokenWork.prefill_chunk(
                request.remaining_prefill, past_len=request.prefill_done, is_last=True
            ),
        )
