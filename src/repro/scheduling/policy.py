"""The scheduler plug-in protocol: policies without engine internals.

A :class:`SchedulingPolicy` sees two narrow, documented hooks and
nothing else — no memory manager, no batch objects, no engine state:

* **Batch composition** (mandatory): given a :class:`PoolView` — the
  runnable pools, token budget and a memory snapshot — return the next
  iteration as an ordered list of :class:`BatchDirective`\\ s.  The
  :class:`PolicyScheduler` adapter enforces the engine's invariants
  (budget, batch-size cap, KV admission, preemption), so a policy may
  freely over-emit: directives that no longer fit are truncated or
  skipped.

* **Admission** (optional): ``admit(snapshot, request, now)`` is
  consulted by the fleet router with a live
  :class:`~repro.cluster.router.ReplicaSnapshot` (queue depth,
  outstanding tokens, KV occupancy, windowed p99 TBT) before a request
  is delivered.  Returning ``False`` defers the request into the
  fleet's backoff-retry loop (it is eventually shed if never admitted).
  Policies without the hook admit everything, exactly as before.

Determinism contract: both hooks must be pure functions of their
arguments plus the policy's own seeded state.  No wall-clock reads, no
unseeded randomness, no iteration-order dependence on ``id()`` — the
simulator's bit-identical replay (sweep resume, differential tests)
relies on it.

See DESIGN.md §12 for the full contract and README for a worked
example of registering a custom policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.batch import ScheduledWork
from repro.memory.block_manager import MemoryManager
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.types import Request, TokenWork

if TYPE_CHECKING:
    from repro.cluster.router import ReplicaSnapshot


@dataclass(frozen=True)
class MemoryView:
    """Read-only snapshot of the replica's KV memory for policies.

    ``can_admit`` answers "would this waiting request fit right now?"
    without reserving anything — admission itself stays inside the
    adapter.
    """

    occupancy: float
    can_admit: Callable[[Request], bool]


@dataclass(frozen=True)
class PoolView:
    """What the batch-composition hook sees each scheduling round.

    ``decodes`` are running requests whose prefill is complete (one
    token each this iteration if scheduled); ``prefills`` are running
    requests mid-prefill; ``waiting`` are arrived-but-unadmitted
    requests in FCFS order.  Requests already inside an in-flight
    pipeline micro-batch are excluded.  All three are read-only views:
    mutating request state from a policy is a contract violation.
    """

    now: float
    decodes: tuple[Request, ...]
    prefills: tuple[Request, ...]
    waiting: tuple[Request, ...]
    token_budget: int
    max_batch_size: int
    memory: MemoryView

    @property
    def runnable(self) -> tuple[Request, ...]:
        """Every request the policy may direct, decodes first."""
        return self.decodes + self.prefills + self.waiting


@dataclass(frozen=True)
class BatchDirective:
    """One policy decision: run ``request`` this iteration.

    ``chunk=None`` decodes one token (the request must be mid-decode);
    an integer caps the prefill chunk — the adapter clamps it to the
    leftover token budget and the request's remaining prefill, so
    ``chunk`` is an upper bound, not a promise.
    """

    request: Request
    chunk: int | None = None

    def __post_init__(self) -> None:
        if self.chunk is not None and self.chunk <= 0:
            raise ValueError(f"chunk must be positive or None, got {self.chunk}")


class SchedulingPolicy:
    """Base class for plug-in scheduling policies.

    Subclasses must override :meth:`compose_batch`; they may override
    :meth:`admit` (leave it ``None`` to accept all traffic).  ``name``
    labels telemetry and repr output.
    """

    name: str = "policy"

    # Optional admission hook: subclasses override with a method of
    # signature (snapshot: ReplicaSnapshot, request, now) -> bool.
    admit: Callable[["ReplicaSnapshot", Request, float], bool] | None = None

    def compose_batch(self, pool: PoolView) -> list[BatchDirective]:
        raise NotImplementedError


class PolicyScheduler(Scheduler):
    """Adapter running a :class:`SchedulingPolicy` inside the engine.

    Translates directives into scheduled work while enforcing every
    engine invariant the policy is shielded from: the token budget
    (decodes cost one token, Sarathi accounting), the batch-size cap,
    KV reservation with preemption for decodes, and block admission
    for waiting requests (admitted out of FCFS order when the policy
    says so).  Contract violations — duplicate directives, directives
    for unknown requests, decoding an incomplete prefill — raise
    immediately with the policy's name; memory-driven impossibilities
    are silently skipped, because pool state legitimately shifts as
    earlier directives preempt.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        memory: MemoryManager,
        token_budget: int,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        preemption_mode: str = "recompute",
        kv_bytes_per_token: int = 0,
    ) -> None:
        super().__init__(
            memory,
            max_batch_size,
            preemption_mode=preemption_mode,
            kv_bytes_per_token=kv_bytes_per_token,
        )
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.policy = policy
        self.name = policy.name
        self.token_budget = token_budget
        hook = getattr(policy, "admit", None)
        self.admission_hook = hook if callable(hook) else None

    # ------------------------------------------------------------------
    def _pool_view(self, now: float) -> PoolView:
        decodes: list[Request] = []
        prefills: list[Request] = []
        for request in self._schedulable_running():
            if request.is_prefill_complete:
                decodes.append(request)
            else:
                prefills.append(request)
        return PoolView(
            now=now,
            decodes=tuple(decodes),
            prefills=tuple(prefills),
            waiting=tuple(self.waiting),
            token_budget=self.token_budget,
            max_batch_size=self.max_batch_size,
            memory=MemoryView(
                occupancy=self.memory.occupancy,
                can_admit=self.memory.can_admit,
            ),
        )

    def _build_batch(self, now: float) -> list[ScheduledWork]:
        pool = self._pool_view(now)
        directives = self.policy.compose_batch(pool)

        items: list[ScheduledWork] = []
        tokens_used = 0
        seen: set[int] = set()
        offered = {r.request_id for r in pool.runnable}
        for directive in directives:
            if len(items) >= self.max_batch_size or tokens_used >= self.token_budget:
                break
            request = directive.request
            if request.request_id not in offered:
                raise ValueError(
                    f"policy {self.policy.name!r} directed request "
                    f"{request.request_id}, which is not in its pool view"
                )
            if request.request_id in seen:
                raise ValueError(
                    f"policy {self.policy.name!r} directed request "
                    f"{request.request_id} twice in one batch"
                )
            seen.add(request.request_id)

            if directive.chunk is None:
                if not request.is_prefill_complete:
                    raise ValueError(
                        f"policy {self.policy.name!r} decoded request "
                        f"{request.request_id} before its prefill completed "
                        "(pass chunk= for prefill work)"
                    )
                if request not in self.running:
                    continue  # evicted by an earlier directive's preemption
                if not self._prepare_decode(request):
                    continue  # no KV room this iteration
                items.append(ScheduledWork(
                    request=request, work=TokenWork.decode(request.context_len)
                ))
                tokens_used += 1
                continue

            if request.is_prefill_complete:
                raise ValueError(
                    f"policy {self.policy.name!r} scheduled a prefill chunk "
                    f"for request {request.request_id}, which is already "
                    "decoding (omit chunk= for decode work)"
                )
            if request not in self.running:
                if request not in self.waiting:
                    continue  # evicted and re-queued state shifted; skip
                if not self.memory.can_admit(request):
                    continue  # KV full; policy may retry next round
                self.waiting.remove(request)
                self.memory.admit(request)
                self.running.append(request)
            # Admission may have claimed a cached prefix, shrinking the
            # remaining prefill — clamp after admission, like Sarathi.
            chunk = min(
                directive.chunk,
                self.token_budget - tokens_used,
                request.remaining_prefill,
            )
            if chunk <= 0:
                continue
            self._claimed.add(request.request_id)
            items.append(ScheduledWork(
                request=request,
                work=TokenWork.prefill_chunk(
                    chunk,
                    past_len=request.prefill_done,
                    is_last=chunk >= request.remaining_prefill,
                ),
            ))
            tokens_used += chunk
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"PolicyScheduler(policy={self.policy.name!r}, "
            f"token_budget={self.token_budget}, "
            f"max_batch_size={self.max_batch_size})"
        )
