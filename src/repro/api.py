"""High-level API: describe a deployment, pick a scheduler, simulate.

This is the entry point examples, benchmarks and the capacity harness
use.  A ``Deployment`` pins the model/hardware/parallelism triple; a
``ServingConfig`` picks the scheduling policy and its knobs; and
``simulate`` runs a request trace through a freshly built engine.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field, replace

from repro.engine.arrays import RequestArrays
from repro.engine.replica import ReplicaEngine, SimulationResult
from repro.engine.vectorized import VectorizedReplicaEngine
from repro.hardware.gpu import GPUSpec
from repro.memory.block_manager import (
    DEFAULT_BLOCK_SIZE,
    MemoryManager,
    PagedBlockManager,
    ReservationManager,
)
from repro.memory.capacity import (
    PAGED_ACTIVATION_RESERVE_BYTES,
    RESERVATION_ACTIVATION_RESERVE_BYTES,
    kv_token_capacity,
)
from repro.memory.prefix import SharedPrefixStore
from repro.metrics.summary import RunMetrics, summarize
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.perf.cache import DEFAULT_MAX_ENTRIES, CachedExecutionModel
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.iteration import ExecutionModel
from repro.scheduling.base import DEFAULT_MAX_BATCH_SIZE, Scheduler
from repro.scheduling.registry import (
    SchedulerBuildContext,
    VecSchedulerBuildContext,
    resolve,
    scheduler_name,
    vectorized_names,
)
from repro.scheduling.vectorized import (
    VecPagedMemory,
    VecReservationMemory,
    VecScheduler,
)
from repro.types import PreemptionMode, Request, SchedulerKind


@dataclass(frozen=True)
class Deployment:
    """A model running on a specific hardware/parallelism configuration."""

    model: ModelConfig
    gpu: GPUSpec
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    calibration: Calibration = DEFAULT_CALIBRATION

    def execution_model(self, cached: bool = False) -> ExecutionModel:
        model = ExecutionModel(self.model, self.gpu, self.parallel, self.calibration)
        return CachedExecutionModel(model) if cached else model

    def kv_capacity_tokens(self, reservation_style: bool = False) -> int:
        reserve = (
            RESERVATION_ACTIVATION_RESERVE_BYTES
            if reservation_style
            else PAGED_ACTIVATION_RESERVE_BYTES
        )
        return kv_token_capacity(
            self.model, self.gpu, self.parallel, activation_reserve_bytes=reserve
        )

    @property
    def label(self) -> str:
        return f"{self.model.name}/{self.gpu.name}/{self.parallel.label}"


@dataclass(frozen=True)
class ServingConfig:
    """Scheduler choice and its knobs."""

    # Any name from the scheduler registry (repro.scheduling.registry);
    # the SchedulerKind enum keeps working as a shim whose values are
    # registry names.  The default can be flipped process-wide with the
    # REPRO_SCHEDULER environment variable; the CLI exposes it as
    # --scheduler.
    scheduler: SchedulerKind | str = field(
        default_factory=lambda: os.environ.get(
            "REPRO_SCHEDULER", SchedulerKind.SARATHI
        )
    )
    token_budget: int = 512
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    block_size: int = DEFAULT_BLOCK_SIZE
    # Reservation length for Orca/FT-style memory (defaults to the
    # dataset-appropriate max sequence length).
    reserve_len: int = 8192
    max_inflight_batches: int | None = None
    # For SARATHI_DYNAMIC: the TBT SLO the per-iteration budget targets
    # (None derives the strict SLO from the deployment, §5.1).
    tbt_slo: float | None = None
    # What eviction does under memory pressure (paged schedulers):
    # "recompute" re-prefills from scratch, "swap" parks KV in host
    # memory and pays PCIe transfers instead.  Strings are normalized
    # to the enum at construction time.
    preemption_mode: PreemptionMode | str = PreemptionMode.RECOMPUTE
    # Memoize execution-model pricing (bit-identical results; see
    # repro.perf.cache).  On by default — disable to time the raw
    # analytical model or to bisect a suspected cache bug.
    perf_cache: bool = True
    perf_cache_max_entries: int = DEFAULT_MAX_ENTRIES
    # Which event-loop implementation runs the simulation: "object"
    # (the golden reference) or "vectorized" (array-backed, pp=1 only,
    # bit-identical by contract — see DESIGN.md §10).  The default can
    # be flipped process-wide with the REPRO_ENGINE environment
    # variable; the CLI exposes it as --engine.
    engine: str = field(
        default_factory=lambda: os.environ.get("REPRO_ENGINE", "object")
    )
    # KV prefix caching (paged schedulers only): requests tagged with a
    # prefix_id reuse ref-counted shared blocks published by earlier
    # requests in the same lineage, prefilling only their novel suffix
    # while still paying full-context attention and occupancy.  Off by
    # default — untagged traces behave identically either way, but the
    # default keeps golden traces byte-stable.  Ignored by the
    # reservation schedulers (Orca/FT), whose worst-case contiguous
    # slots cannot share blocks.  Flip process-wide with
    # REPRO_PREFIX_CACHE=1; the CLI exposes it as --prefix-cache.
    prefix_cache: bool = field(
        default_factory=lambda: os.environ.get("REPRO_PREFIX_CACHE", "0").lower()
        in ("1", "true", "on", "yes")
    )

    def __post_init__(self) -> None:
        # Validate at construction time so a bad knob fails where it was
        # written, not several layers down inside scheduler/memory
        # constructors with a stack trace that hides the culprit field.
        if self.token_budget <= 0:
            raise ValueError(
                f"token_budget must be positive, got {self.token_budget}"
            )
        if self.max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        if self.reserve_len <= 0:
            raise ValueError(f"reserve_len must be positive, got {self.reserve_len}")
        if self.max_inflight_batches is not None and self.max_inflight_batches < 1:
            raise ValueError(
                "max_inflight_batches must be >= 1 or None, "
                f"got {self.max_inflight_batches}"
            )
        if self.tbt_slo is not None and self.tbt_slo <= 0:
            raise ValueError(
                f"tbt_slo must be positive or None, got {self.tbt_slo}"
            )
        if self.perf_cache_max_entries <= 0:
            raise ValueError(
                "perf_cache_max_entries must be positive, "
                f"got {self.perf_cache_max_entries}"
            )
        if self.engine not in ("object", "vectorized"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'object' or 'vectorized'"
            )
        # Normalize to the enum (raises a naming error on typos); plain
        # strings keep working thanks to PreemptionMode's str mixin.
        object.__setattr__(
            self, "preemption_mode", PreemptionMode.parse(self.preemption_mode)
        )
        # Normalize enum-valued scheduler strings to the enum so legacy
        # `config.scheduler is SchedulerKind.X` comparisons keep
        # working.  Names beyond the enum (plug-in schedulers) stay as
        # strings and are validated — with did-you-mean suggestions —
        # against the registry at build time, after any late
        # registrations.
        if isinstance(self.scheduler, str):
            try:
                object.__setattr__(
                    self, "scheduler", SchedulerKind(self.scheduler)
                )
            except ValueError:
                pass

    def with_budget(self, token_budget: int) -> "ServingConfig":
        return replace(self, token_budget=token_budget)


def build_memory(deployment: Deployment, config: ServingConfig) -> MemoryManager:
    """Construct the memory manager matching the scheduler's declared family."""
    spec = resolve(config.scheduler)
    if spec.memory_family == "reservation":
        capacity = deployment.kv_capacity_tokens(reservation_style=True)
        return ReservationManager(capacity, reserve_len=config.reserve_len)
    capacity = deployment.kv_capacity_tokens(reservation_style=False)
    store = (
        SharedPrefixStore(block_size=config.block_size)
        if config.prefix_cache
        else None
    )
    return PagedBlockManager(
        capacity, block_size=config.block_size, prefix_store=store
    )


def execution_model_for(
    deployment: Deployment, config: ServingConfig
) -> ExecutionModel:
    """The deployment's execution model, memoized when config asks.

    Build one and pass it to several ``simulate``/``build_engine``
    calls to share warm cache entries across runs (capacity searches
    replay thousands of overlapping batch compositions).
    """
    exec_model = deployment.execution_model()
    if config.perf_cache:
        exec_model = CachedExecutionModel(
            exec_model, max_entries=config.perf_cache_max_entries
        )
    return exec_model


def build_scheduler(
    deployment: Deployment,
    config: ServingConfig,
    exec_model: ExecutionModel | None = None,
) -> Scheduler:
    """Construct a fresh scheduler (and its memory manager).

    ``exec_model`` lets dynamic (SLO-driven) schedulers price candidate
    iterations on the same — possibly cached — model the engine runs
    on, instead of building their own.  Dispatch goes through the
    scheduler registry (:mod:`repro.scheduling.registry`): any
    registered name — or the :class:`~repro.types.SchedulerKind` shim —
    builds here; unknown names fail with nearest-name suggestions.
    """
    spec = resolve(config.scheduler)
    context = SchedulerBuildContext(
        deployment=deployment,
        config=config,
        memory=build_memory(deployment, config),
        kv_bytes_per_token=deployment.model.kv_bytes_per_token,
        _exec_model=exec_model,
        _exec_model_factory=lambda: execution_model_for(deployment, config),
    )
    return spec.build(context)


def build_vectorized_scheduler(
    deployment: Deployment,
    config: ServingConfig,
    exec_model: ExecutionModel | None = None,
) -> VecScheduler:
    """Construct the array-backed scheduler core (and its memory).

    Vectorized support is a registry capability: specs without a
    vectorized factory (plug-in policies) fail loudly here with the
    spec's stated reason plus the schedulers that do support it.
    ``exec_model`` serves SLO-driven cores (``sarathi_dynamic``) that
    price candidate iterations, sharing the engine's warm cache.
    """
    spec = resolve(config.scheduler)
    if spec.build_vectorized is None:
        raise ValueError(
            f"the vectorized engine does not support scheduler "
            f"{scheduler_name(config.scheduler)!r} "
            f"({spec.vectorized_unsupported_reason}); use engine='object' "
            f"or a vectorized-capable scheduler: {', '.join(vectorized_names())}"
        )
    arrays = RequestArrays()
    if spec.memory_family == "reservation":
        capacity = deployment.kv_capacity_tokens(reservation_style=True)
        memory = VecReservationMemory(
            arrays, capacity, reserve_len=config.reserve_len
        )
    else:
        capacity = deployment.kv_capacity_tokens(reservation_style=False)
        store = (
            SharedPrefixStore(block_size=config.block_size)
            if config.prefix_cache
            else None
        )
        memory = VecPagedMemory(
            arrays, capacity, block_size=config.block_size, prefix_store=store
        )
    context = VecSchedulerBuildContext(
        deployment=deployment,
        config=config,
        arrays=arrays,
        memory=memory,
        kv_bytes_per_token=deployment.model.kv_bytes_per_token,
        _exec_model=exec_model,
        _exec_model_factory=lambda: execution_model_for(deployment, config),
    )
    return spec.build_vectorized(context)


def build_engine(
    deployment: Deployment,
    config: ServingConfig,
    exec_model: ExecutionModel | None = None,
) -> ReplicaEngine | VectorizedReplicaEngine:
    """A fresh engine ready to ``run`` a request trace.

    Passing ``exec_model`` overrides ``config.perf_cache`` — the caller
    owns the model (typically to share one warm cache across engines).
    ``config.engine`` selects the implementation; both produce
    bit-identical results on every configuration the vectorized engine
    supports (including pipeline parallelism and ``sarathi_dynamic``).
    """
    if exec_model is None:
        exec_model = execution_model_for(deployment, config)
    if config.engine == "vectorized":
        return VectorizedReplicaEngine(
            exec_model,
            build_vectorized_scheduler(deployment, config, exec_model=exec_model),
            max_inflight_batches=config.max_inflight_batches,
        )
    return ReplicaEngine(
        exec_model,
        build_scheduler(deployment, config, exec_model=exec_model),
        max_inflight_batches=config.max_inflight_batches,
    )


def clone_requests(requests: list[Request]) -> list[Request]:
    """Deep-copy a trace so runs never share mutable request state."""
    return [copy.deepcopy(r) for r in requests]


def simulate(
    deployment: Deployment,
    config: ServingConfig,
    requests: list[Request],
    max_time: float | None = None,
    exec_model: ExecutionModel | None = None,
) -> tuple[SimulationResult, RunMetrics]:
    """Run a trace through a fresh engine and summarize it.

    This is the 1-replica special case of the fleet simulator
    (:func:`repro.cluster.fleet.simulate_fleet`): one replica, no
    faults, unbounded admission — which reduces, event for event, to
    ``ReplicaEngine.run`` on a fresh engine.  The input requests are
    cloned first, so the same trace can be replayed across schedulers
    and loads.  ``exec_model`` (see ``execution_model_for``) shares
    one — typically cached — model across calls.
    """
    # Imported lazily: repro.cluster.fleet imports this module.
    from repro.cluster.fleet import FleetConfig, simulate_fleet

    fleet_result, metrics = simulate_fleet(
        deployment,
        config,
        requests,
        FleetConfig(num_replicas=1),
        max_time=max_time,
        exec_model=exec_model,
    )
    return fleet_result.merged(), metrics
