"""Batch composition: which requests contribute which tokens.

A ``Batch`` is the unit the engine executes per iteration (or per
pipeline micro-batch).  Each entry pairs a request with the
``TokenWork`` the scheduler assigned it — a decode step or a prefill
chunk — which is exactly what the execution model needs to price the
iteration and what ``on_batch_complete`` needs to commit progress.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.types import Request, TokenWork

_batch_ids = itertools.count()


@dataclass(frozen=True)
class ScheduledWork:
    """One request's assignment within a batch."""

    request: Request
    work: TokenWork


@dataclass
class Batch:
    """One iteration's worth of coalesced work.

    ``swap_bytes`` is the KV-cache volume moved between GPU and host
    memory alongside this iteration (swap-based preemption); the engine
    charges its transfer time to the iteration.
    """

    items: list[ScheduledWork]
    scheduled_at: float = 0.0
    swap_bytes: int = 0
    batch_id: int = field(default_factory=lambda: next(_batch_ids))

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a batch must contain at least one item")
        seen: set[int] = set()
        for item in self.items:
            rid = item.request.request_id
            if rid in seen:
                raise ValueError(f"request {rid} appears twice in batch")
            seen.add(rid)

    # ------------------------------------------------------------------
    @property
    def works(self) -> list[TokenWork]:
        return [item.work for item in self.items]

    @property
    def requests(self) -> list[Request]:
        return [item.request for item in self.items]

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def num_tokens(self) -> int:
        return sum(item.work.num_tokens for item in self.items)

    @property
    def num_prefill_tokens(self) -> int:
        return sum(item.work.num_tokens for item in self.items if item.work.is_prefill)

    @property
    def num_decode_tokens(self) -> int:
        return sum(
            item.work.num_tokens for item in self.items if not item.work.is_prefill
        )

    @property
    def num_decode_seqs(self) -> int:
        return sum(1 for item in self.items if not item.work.is_prefill)

    @property
    def num_prefill_seqs(self) -> int:
        return sum(1 for item in self.items if item.work.is_prefill)

    @property
    def is_hybrid(self) -> bool:
        """Whether the batch mixes prefill and decode work (Orca/Sarathi)."""
        return self.num_prefill_seqs > 0 and self.num_decode_seqs > 0

    def describe(self) -> str:
        """Short human-readable composition summary for timelines."""
        return (
            f"batch#{self.batch_id}[{self.num_prefill_seqs}p/"
            f"{self.num_decode_seqs}d, {self.num_tokens}tok]"
        )
