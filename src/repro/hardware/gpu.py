"""GPU device specifications used by the roofline model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Peak capabilities of one accelerator.

    ``peak_flops`` is dense half-precision throughput (FLOP/s) and
    ``memory_bandwidth`` is HBM bandwidth (bytes/s).  The ratio of the
    two is the *ridge point* of the roofline: operations with lower
    arithmetic intensity are memory-bound (§3.1).
    """

    name: str
    peak_flops: float            # FLOP/s, fp16/bf16 dense
    memory_bandwidth: float      # bytes/s
    memory_capacity: int         # bytes of HBM
    matmul_tile: int = 128       # tile edge for tile-quantization effects

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError(f"{self.name}: peak rates must be positive")
        if self.memory_capacity <= 0:
            raise ValueError(f"{self.name}: memory_capacity must be positive")

    @property
    def ridge_intensity(self) -> float:
        """FLOPs-per-byte at which compute and memory time are equal."""
        return self.peak_flops / self.memory_bandwidth

    def math_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds to execute ``flops`` at a fraction of peak compute."""
        return flops / (self.peak_flops * efficiency)

    def mem_time(self, num_bytes: float, efficiency: float = 1.0) -> float:
        """Seconds to move ``num_bytes`` at a fraction of peak bandwidth."""
        return num_bytes / (self.memory_bandwidth * efficiency)
