"""GPU and interconnect specifications."""

from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import LinkSpec
from repro.hardware.catalog import (
    A40_48G,
    A100_80G,
    ETHERNET_100G,
    H100_80G,
    NVLINK,
    PCIE_4,
    get_gpu,
    get_link,
)

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "A100_80G",
    "A40_48G",
    "H100_80G",
    "NVLINK",
    "PCIE_4",
    "ETHERNET_100G",
    "get_gpu",
    "get_link",
]
