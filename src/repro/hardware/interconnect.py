"""Interconnect link models for tensor- and pipeline-parallel traffic."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """A bidirectional communication link between GPUs or nodes.

    ``bandwidth`` is the effective per-direction bandwidth available to
    one GPU (bytes/s); ``latency`` is the fixed per-message cost in
    seconds (software stack + wire latency).
    """

    name: str
    bandwidth: float     # bytes/s per direction
    latency: float       # seconds per message

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds for one point-to-point message of ``num_bytes``."""
        return self.latency + num_bytes / self.bandwidth

    def allreduce_time(self, num_bytes: float, world_size: int) -> float:
        """Ring allreduce cost for ``num_bytes`` across ``world_size`` ranks.

        Standard ring algorithm: each rank sends ``2*(n-1)/n`` of the
        buffer, in ``2*(n-1)`` latency-bound steps.
        """
        if world_size <= 1:
            return 0.0
        steps = 2 * (world_size - 1)
        volume = 2.0 * (world_size - 1) / world_size * num_bytes
        return steps * self.latency + volume / self.bandwidth
