"""Device and interconnect catalog for the paper's testbeds (Table 1)."""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import LinkSpec

GiB = 1 << 30

A100_80G = GPUSpec(
    name="A100-80GB",
    peak_flops=312e12,
    memory_bandwidth=2.0e12,
    memory_capacity=80 * GiB,
)

A40_48G = GPUSpec(
    name="A40-48GB",
    peak_flops=149e12,
    memory_bandwidth=696e9,
    memory_capacity=48 * GiB,
)

H100_80G = GPUSpec(
    name="H100-80GB",
    peak_flops=989e12,
    memory_bandwidth=3.35e12,
    memory_capacity=80 * GiB,
)

# Effective per-GPU link rates (NCCL-achievable, not headline numbers).
NVLINK = LinkSpec(name="NVLink", bandwidth=250e9, latency=5e-6)
PCIE_4 = LinkSpec(name="PCIe-4.0", bandwidth=24e9, latency=10e-6)
ETHERNET_100G = LinkSpec(name="Ethernet-100G", bandwidth=11e9, latency=30e-6)

_GPUS: dict[str, GPUSpec] = {
    g.name.lower(): g for g in (A100_80G, A40_48G, H100_80G)
}
_LINKS: dict[str, LinkSpec] = {
    l.name.lower(): l for l in (NVLINK, PCIE_4, ETHERNET_100G)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by case-insensitive name."""
    key = name.lower()
    if key not in _GPUS:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(_GPUS)}")
    return _GPUS[key]


def get_link(name: str) -> LinkSpec:
    """Look up an interconnect spec by case-insensitive name."""
    key = name.lower()
    if key not in _LINKS:
        raise KeyError(f"unknown link {name!r}; known: {sorted(_LINKS)}")
    return _LINKS[key]
