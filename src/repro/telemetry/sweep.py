"""Sweep telemetry: capacity probes, worker footprints and fault accounting.

Four tables make sweep performance — and sweep *survival* — measurable
instead of anecdotal:

* :func:`capacity_probe_rows` — one row per capacity-search probe, with
  the probe's phase (bracketing vs bisection) and the hint the search
  was seeded from.  Summing ``phase == "bracket"`` rows per cell shows
  exactly how many simulations warm-started hints saved.
* :func:`sweep_cell_rows` — one row per sweep cell, with the worker pid
  that ran it, its wall-clock, how its execution model started
  (cold / disk-warmed / process-shared) including loaded/merged entry
  counts, plus fault-tolerance provenance: whether the cell was
  replayed from the run ledger (``resumed`` — the "ledger hit" counter
  a resumed run is verified by) and how many retries it survived.
* :func:`sweep_run_rows` — one row per ``map_tasks`` report:
  resumed/retried/failed/respawn counts, interruption, fingerprint.
* :func:`sweep_failure_rows` — one row per quarantined task, with the
  failure kind (exception / worker-death / timeout) and attempt count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.metrics.capacity import CapacityResult

if TYPE_CHECKING:
    from repro.experiments.capacity_runner import CellOutcome
    from repro.runtime import SweepReport

Row = dict[str, Any]


def capacity_probe_rows(result: CapacityResult, **labels: Any) -> list[Row]:
    """Flatten one capacity search into per-probe telemetry rows.

    ``labels`` (deployment, scheduler, dataset, …) are prepended to
    every row so rows from a whole sweep concatenate into one table.
    Probes are listed in execution order; the first
    ``num_bracket_probes`` are phase ``"bracket"``, the rest
    ``"bisect"``.
    """
    rows = []
    for index, (qps, metrics, ok) in enumerate(result.probes):
        rows.append(
            {
                **labels,
                "probe_index": index,
                "phase": "bracket" if index < result.num_bracket_probes else "bisect",
                "qps": qps,
                "meets_slo": ok,
                "qps_hint": result.qps_hint,
                "capacity_qps": result.capacity_qps,
                "p99_tbt": metrics.p99_tbt,
                "max_tbt": metrics.max_tbt,
                "median_ttft": metrics.median_ttft,
                "median_scheduling_delay": metrics.median_scheduling_delay,
                "throughput_tokens_per_s": metrics.throughput_tokens_per_s,
                "num_preemptions": metrics.num_preemptions,
            }
        )
    return rows


def sweep_cell_rows(outcomes: "list[CellOutcome]") -> list[Row]:
    """One row per sweep cell: timing, worker and cache-warmth counters."""
    rows = []
    for outcome in outcomes:
        cell = outcome.cell
        rows.append(
            {
                "deployment": cell.deployment,
                "scheduler": cell.scheduler,
                "dataset": cell.dataset,
                "slo": cell.slo_name,
                "variant": outcome.variant,
                "capacity_qps": cell.capacity_qps,
                "num_probes": cell.num_probes,
                "num_bracket_probes": outcome.num_bracket_probes,
                "num_bisect_probes": outcome.num_bisect_probes,
                "qps_hint": outcome.qps_hint,
                "hinted": outcome.hinted,
                "worker_pid": outcome.worker_pid,
                "cell_seconds": outcome.seconds,
                "cache_source": outcome.cache_source,
                "cache_loaded_entries": outcome.loaded_entries,
                "cache_merged_entries": outcome.merged_entries,
                "resumed": outcome.resumed,
                "attempt": outcome.attempt,
                **outcome.cache_row,
            }
        )
    return rows


def sweep_run_rows(reports: "list[SweepReport]", **labels: Any) -> list[Row]:
    """One row per sweep wave: resume/retry/failure/respawn accounting.

    ``sum(row["num_resumed"])`` across a resumed run's waves is the
    ledger-hit count the resume acceptance check verifies; a clean
    first run shows zero everywhere.
    """
    rows = []
    for index, report in enumerate(reports):
        rows.append(
            {
                **labels,
                "wave": index,
                "jobs": report.jobs,
                "num_tasks": len(report.outcomes) + len(report.failures),
                "num_completed": len(report.outcomes),
                "num_resumed": report.num_resumed,
                "num_retries": report.num_retries,
                "num_failures": len(report.failures),
                "num_respawns": report.num_respawns,
                "interrupted": report.interrupted,
                "wall_seconds": report.wall_seconds,
                "fingerprint": report.fingerprint,
                "run_dir": str(report.run_dir) if report.run_dir else None,
            }
        )
    return rows


def sweep_failure_rows(reports: "list[SweepReport]", **labels: Any) -> list[Row]:
    """One row per quarantined task across a run's sweep waves."""
    rows = []
    for index, report in enumerate(reports):
        for failure_row in report.failure_rows():
            rows.append({**labels, "wave": index, **failure_row})
    return rows
