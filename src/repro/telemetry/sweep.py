"""Sweep telemetry: capacity probes and per-worker execution footprints.

Two tables make sweep performance measurable instead of anecdotal:

* :func:`capacity_probe_rows` — one row per capacity-search probe, with
  the probe's phase (bracketing vs bisection) and the hint the search
  was seeded from.  Summing ``phase == "bracket"`` rows per cell shows
  exactly how many simulations warm-started hints saved.
* :func:`sweep_cell_rows` — one row per sweep cell, with the worker pid
  that ran it, its wall-clock, and how its execution model started
  (cold / disk-warmed / process-shared) including loaded/merged entry
  counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.metrics.capacity import CapacityResult

if TYPE_CHECKING:
    from repro.experiments.capacity_runner import CellOutcome

Row = dict[str, Any]


def capacity_probe_rows(result: CapacityResult, **labels: Any) -> list[Row]:
    """Flatten one capacity search into per-probe telemetry rows.

    ``labels`` (deployment, scheduler, dataset, …) are prepended to
    every row so rows from a whole sweep concatenate into one table.
    Probes are listed in execution order; the first
    ``num_bracket_probes`` are phase ``"bracket"``, the rest
    ``"bisect"``.
    """
    rows = []
    for index, (qps, metrics, ok) in enumerate(result.probes):
        rows.append(
            {
                **labels,
                "probe_index": index,
                "phase": "bracket" if index < result.num_bracket_probes else "bisect",
                "qps": qps,
                "meets_slo": ok,
                "qps_hint": result.qps_hint,
                "capacity_qps": result.capacity_qps,
                "p99_tbt": metrics.p99_tbt,
                "max_tbt": metrics.max_tbt,
                "median_ttft": metrics.median_ttft,
                "median_scheduling_delay": metrics.median_scheduling_delay,
                "throughput_tokens_per_s": metrics.throughput_tokens_per_s,
                "num_preemptions": metrics.num_preemptions,
            }
        )
    return rows


def sweep_cell_rows(outcomes: "list[CellOutcome]") -> list[Row]:
    """One row per sweep cell: timing, worker and cache-warmth counters."""
    rows = []
    for outcome in outcomes:
        cell = outcome.cell
        rows.append(
            {
                "deployment": cell.deployment,
                "scheduler": cell.scheduler,
                "dataset": cell.dataset,
                "slo": cell.slo_name,
                "variant": outcome.variant,
                "capacity_qps": cell.capacity_qps,
                "num_probes": cell.num_probes,
                "num_bracket_probes": outcome.num_bracket_probes,
                "num_bisect_probes": outcome.num_bisect_probes,
                "qps_hint": outcome.qps_hint,
                "hinted": outcome.hinted,
                "worker_pid": outcome.worker_pid,
                "cell_seconds": outcome.seconds,
                "cache_source": outcome.cache_source,
                "cache_loaded_entries": outcome.loaded_entries,
                "cache_merged_entries": outcome.merged_entries,
                **outcome.cache_row,
            }
        )
    return rows
