"""Telemetry export (§4.4's "extensive telemetry system")."""

from repro.telemetry.fleet import fleet_rows, replica_utilization_rows
from repro.telemetry.recorder import (
    engine_rows,
    iteration_rows,
    read_csv,
    read_jsonl,
    request_rows,
    run_counters,
    write_csv,
    write_jsonl,
)
from repro.telemetry.sweep import (
    capacity_probe_rows,
    sweep_cell_rows,
    sweep_failure_rows,
    sweep_run_rows,
)

__all__ = [
    "engine_rows",
    "iteration_rows",
    "request_rows",
    "run_counters",
    "fleet_rows",
    "replica_utilization_rows",
    "capacity_probe_rows",
    "sweep_cell_rows",
    "sweep_failure_rows",
    "sweep_run_rows",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
]
