"""Fleet-level telemetry: control-plane decisions and replica timelines.

Extends the per-run tables in :mod:`repro.telemetry.recorder` to the
fleet simulator: one row per routing/rejection/failover/fault decision
(the control-plane log a production gateway would emit) and a
per-replica utilization timeline (how busy each replica's GPU was over
bucketed wall-clock windows — the view that makes load imbalance and
crash gaps visible at a glance).  All rows are plain dicts compatible
with ``write_jsonl``/``write_csv``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.cluster.fleet import FleetResult

Row = dict[str, Any]


def fleet_rows(result: "FleetResult") -> list[Row]:
    """One row per fleet control-plane event, in decision order."""
    return [
        {
            "time": event.time,
            "kind": event.kind,
            "request_id": event.request_id,
            "replica": event.replica,
            "attempt": event.attempt,
            "reason": event.reason,
            "queue_depth": event.queue_depth,
            "outstanding_tokens": event.outstanding_tokens,
            "retry_at": event.retry_at,
        }
        for event in result.events
    ]


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def replica_utilization_rows(result: "FleetResult", bucket: float = 1.0) -> list[Row]:
    """Per-replica busy fraction over ``bucket``-second windows.

    A replica counts as busy while any of its pipeline stages is
    executing (union over its iteration records), so with pipeline
    parallelism this is "replica doing anything", not per-stage
    utilization.  Windows span ``[0, makespan)``; a crashed replica
    reads as zero through its downtime because its in-flight records
    were discarded at the crash.
    """
    if bucket <= 0:
        raise ValueError(f"bucket must be positive, got {bucket}")
    horizon = result.makespan
    num_buckets = max(1, int(horizon / bucket) + (1 if horizon % bucket else 0))
    rows: list[Row] = []
    for replica, replica_result in enumerate(result.replica_results):
        busy = _merge_intervals(
            [(r.start, r.end) for r in replica_result.records]
        )
        starts = [r.start for r in replica_result.records]
        for i in range(num_buckets):
            lo, hi = i * bucket, min((i + 1) * bucket, horizon)
            width = hi - lo
            if width <= 0:
                continue
            busy_time = sum(
                max(0.0, min(end, hi) - max(start, lo)) for start, end in busy
            )
            rows.append(
                {
                    "replica": replica,
                    "bucket_start": lo,
                    "bucket_end": hi,
                    "busy_fraction": busy_time / width,
                    "num_iterations_started": sum(1 for s in starts if lo <= s < hi),
                }
            )
    return rows
