"""Telemetry export: turn simulation results into analyzable tables.

The paper's implementation notes an "extensive telemetry system" built
into their vLLM fork (§4.4); this is its reproduction-side analogue.
Two flat tables are produced from a ``SimulationResult`` — one row per
executed (stage, batch) iteration and one row per request — exportable
as JSONL or CSV for offline analysis and plotting.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.engine.replica import SimulationResult

Row = dict[str, Any]


def iteration_rows(result: "SimulationResult") -> list[Row]:
    """One row per executed (stage, batch) pair, in start-time order."""
    rows = []
    for record in sorted(result.records, key=lambda r: (r.start, r.stage)):
        rows.append(
            {
                "stage": record.stage,
                "batch_id": record.batch_id,
                "start": record.start,
                "end": record.end,
                "duration": record.duration,
                "num_prefill_tokens": record.num_prefill_tokens,
                "num_decode_tokens": record.num_decode_tokens,
                "num_prefill_seqs": record.num_prefill_seqs,
                "num_decode_seqs": record.num_decode_seqs,
                "is_hybrid": record.is_hybrid,
                "time_linear": record.breakdown.linear,
                "time_attention": record.breakdown.attention,
                "time_others": record.breakdown.others,
                "time_communication": record.breakdown.communication,
                "time_overhead": record.breakdown.overhead,
            }
        )
    return rows


def request_rows(result: "SimulationResult") -> list[Row]:
    """One row per request with its lifecycle timestamps and latencies."""
    rows = []
    for request in sorted(result.requests, key=lambda r: r.arrival_time):
        tbts = request.tbt_samples
        rows.append(
            {
                "request_id": request.request_id,
                "arrival_time": request.arrival_time,
                "prompt_len": request.prompt_len,
                "output_len": request.output_len,
                "finished": request.is_finished,
                "first_scheduled_at": request.first_scheduled_at,
                "first_token_at": request.first_token_at,
                "finished_at": request.finished_at,
                "ttft": request.ttft,
                "scheduling_delay": request.scheduling_delay,
                "e2e_latency": request.e2e_latency,
                "max_tbt": max(tbts) if tbts else None,
                "num_emitted": request.num_emitted,
                "num_restarts": request.num_restarts,
            }
        )
    return rows


def engine_rows(result: "SimulationResult") -> list[Row]:
    """One row describing the engine that produced ``result``.

    Tracks the simulator itself (which core ran, how many events and
    batches it processed, the wall-clock it burned) rather than the
    simulated system — the table sweeps use to compare the object and
    vectorized cores.  Empty for results assembled outside ``run()``
    (fleet crash snapshots, merged fleet results), which carry no
    engine stats.
    """
    stats = result.engine_stats
    if stats is None:
        return []
    return [
        {
            "engine": stats.kind,
            "num_events": stats.num_events,
            "num_batches": stats.num_batches,
            "events_per_batch": stats.events_per_batch,
            "wall_time_s": stats.wall_time_s,
        }
    ]


def prefix_cache_rows(result: "SimulationResult") -> list[Row]:
    """One row of KV prefix-cache counters, when the run had a cache.

    Empty when the run used a memory manager without a shared-prefix
    store (reservation managers, or ``prefix_cache=False``), so sweeps
    can concatenate tables across mixed configurations.
    """
    stats = result.prefix_stats
    if stats is None:
        return []
    return [stats.as_row()]


def write_jsonl(path: str | Path, rows: list[Row]) -> Path:
    """Write rows as JSON Lines; returns the resolved path."""
    path = Path(path)
    with path.open("w") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[Row]:
    """Read back a JSONL table written by :func:`write_jsonl`."""
    path = Path(path)
    rows = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def write_csv(path: str | Path, rows: list[Row]) -> Path:
    """Write rows as CSV with a header from the first row's keys."""
    path = Path(path)
    if not rows:
        raise ValueError("cannot write an empty table")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def _parse_csv_cell(text: str) -> Any:
    """Invert ``csv.DictWriter``'s stringification for our row types."""
    if text == "":
        return None
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(path: str | Path) -> list[Row]:
    """Read back a CSV table written by :func:`write_csv`.

    Cell types are recovered (None/bool/int/float/str), so a round
    trip of any table this module produces is exact — Python floats
    stringify losslessly.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        return [
            {key: _parse_csv_cell(value) for key, value in row.items()}
            for row in reader
        ]


def run_counters(result: "SimulationResult") -> Row:
    """Aggregate counters of one run — the quick health check.

    Includes the execution-model cache counters (zeros when the run
    used the uncached model) so sweeps can track hit rates alongside
    scheduling health.
    """
    from repro.memory.prefix import PrefixCacheStats
    from repro.perf.cache import CacheStats

    hybrid = sum(1 for r in result.records if r.stage == 0 and r.is_hybrid)
    stage0 = [r for r in result.records if r.stage == 0]
    cache = result.cache_stats if result.cache_stats is not None else CacheStats()
    prefix = result.prefix_stats if result.prefix_stats is not None else PrefixCacheStats()
    return {
        "num_requests": len(result.requests),
        "num_finished": len(result.finished_requests),
        "num_unfinished": len(result.unfinished),
        "num_iterations": len(stage0),
        "num_hybrid_iterations": hybrid,
        "num_preemptions": result.num_preemptions,
        "makespan": result.makespan,
        "total_prefill_tokens": sum(r.num_prefill_tokens for r in stage0),
        "total_decode_tokens": sum(r.num_decode_tokens for r in stage0),
        "mean_batch_size": (
            sum(r.num_prefill_seqs + r.num_decode_seqs for r in stage0) / len(stage0)
            if stage0
            else 0.0
        ),
        **cache.as_row(),
        **prefix.as_row(),
    }
