"""Tensor- and pipeline-parallel deployment configuration.

A deployment shards a model over ``tp`` tensor-parallel workers per
pipeline stage and ``pp`` pipeline stages (TP4-PP2 means 8 GPUs).
The sharding math here is the single source of truth for both the
perf model (per-GPU FLOPs and bytes) and the memory manager (per-GPU
weight and KV footprints).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.catalog import NVLINK
from repro.hardware.interconnect import LinkSpec
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class ParallelConfig:
    """Degrees of tensor and pipeline parallelism plus their links."""

    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    tp_link: LinkSpec = field(default=NVLINK)
    pp_link: LinkSpec = field(default=NVLINK)

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        if self.pipeline_parallel < 1:
            raise ValueError("pipeline_parallel must be >= 1")

    @property
    def world_size(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel

    @property
    def label(self) -> str:
        return f"TP{self.tensor_parallel}-PP{self.pipeline_parallel}"

    # ------------------------------------------------------------------
    # Sharding math
    # ------------------------------------------------------------------
    def layers_per_stage(self, model: ModelConfig) -> int:
        """Layers hosted by one pipeline stage (ceil split)."""
        pp = self.pipeline_parallel
        return (model.num_layers + pp - 1) // pp

    def stage_weight_bytes_per_gpu(self, model: ModelConfig) -> int:
        """Model weight bytes resident on one GPU of one stage.

        Embedding lives on the first stage and the LM head on the last;
        for footprint purposes we charge each stage the larger of the
        two, a conservative and symmetric approximation.
        """
        layer_bytes = self.layers_per_stage(model) * model.params_per_layer
        extra = max(model.embedding_params, model.lm_head_params)
        total = (layer_bytes + extra) * model.dtype_bytes
        return total // self.tensor_parallel

    def kv_bytes_per_token_per_gpu(self, model: ModelConfig) -> float:
        """KV-cache bytes one token costs on each GPU of a stage."""
        per_layer = model.kv_bytes_per_token_per_layer
        return self.layers_per_stage(model) * per_layer / self.tensor_parallel
