"""Tensor- and pipeline-parallel sharding and communication models."""

from repro.parallel.config import ParallelConfig
from repro.parallel.comm import allreduce_bytes_per_layer, pp_send_time, tp_comm_time

__all__ = [
    "ParallelConfig",
    "allreduce_bytes_per_layer",
    "pp_send_time",
    "tp_comm_time",
]
