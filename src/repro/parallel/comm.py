"""Communication cost models for TP allreduces and PP activation sends.

Tensor parallelism pays two allreduces per layer (after attention and
after the FFN, §2.3); pipeline parallelism pays one point-to-point
activation transfer per stage boundary per micro-batch.  Both costs
scale with the number of tokens in the batch, which is exactly why
cross-node TP is so much more expensive than PP (Fig. 13a).
"""

from __future__ import annotations

from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig


def allreduce_bytes_per_layer(model: ModelConfig, num_tokens: int) -> int:
    """Bytes allreduced by one layer for a batch of ``num_tokens``."""
    return num_tokens * model.hidden_size * model.dtype_bytes


def tp_comm_time(
    model: ModelConfig,
    parallel: ParallelConfig,
    num_tokens: int,
    num_layers: int,
) -> float:
    """Total TP allreduce time for ``num_layers`` layers of a batch."""
    tp = parallel.tensor_parallel
    if tp <= 1 or num_tokens <= 0:
        return 0.0
    per_layer = parallel.tp_link.allreduce_time(
        allreduce_bytes_per_layer(model, num_tokens), tp
    )
    # Falcon-style parallel attention/MLP blocks fuse the two allreduces.
    reduces_per_layer = 1 if model.parallel_attn_mlp else 2
    return reduces_per_layer * per_layer * num_layers


def pp_send_time(
    model: ModelConfig,
    parallel: ParallelConfig,
    num_tokens: int,
) -> float:
    """Time to ship a micro-batch's activations to the next stage."""
    if parallel.pipeline_parallel <= 1 or num_tokens <= 0:
        return 0.0
    num_bytes = num_tokens * model.hidden_size * model.dtype_bytes
    return parallel.pp_link.transfer_time(num_bytes)
