"""Model architecture catalog and static cost accounting."""

from repro.models.config import Activation, ModelConfig
from repro.models.catalog import (
    FALCON_180B,
    LLAMA2_70B,
    MISTRAL_7B,
    TINY_1B,
    YI_34B,
    get_model,
    list_models,
    register_model,
)

__all__ = [
    "Activation",
    "ModelConfig",
    "MISTRAL_7B",
    "YI_34B",
    "LLAMA2_70B",
    "FALCON_180B",
    "TINY_1B",
    "get_model",
    "list_models",
    "register_model",
]
