"""Catalog of the models evaluated in the paper (Table 1).

Architectural parameters follow the public model cards.  ``get_model``
looks up by case-insensitive name so CLI strings like ``"mistral-7b"``
resolve naturally.
"""

from __future__ import annotations

from repro.models.config import Activation, ModelConfig

MISTRAL_7B = ModelConfig(
    name="Mistral-7B",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=8,
    ffn_size=14336,
    vocab_size=32000,
    activation=Activation.SWIGLU,
    sliding_window=4096,
)

YI_34B = ModelConfig(
    name="Yi-34B",
    num_layers=60,
    hidden_size=7168,
    num_heads=56,
    num_kv_heads=8,
    ffn_size=20480,
    vocab_size=64000,
    activation=Activation.SWIGLU,
)

LLAMA2_70B = ModelConfig(
    name="LLaMA2-70B",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    ffn_size=28672,
    vocab_size=32000,
    activation=Activation.SWIGLU,
)

FALCON_180B = ModelConfig(
    name="Falcon-180B",
    num_layers=80,
    hidden_size=14848,
    num_heads=232,
    num_kv_heads=8,
    ffn_size=59392,
    vocab_size=65024,
    activation=Activation.GELU,
    parallel_attn_mlp=True,
)

# A tiny synthetic model for fast tests and examples.
TINY_1B = ModelConfig(
    name="Tiny-1B",
    num_layers=16,
    hidden_size=2048,
    num_heads=16,
    num_kv_heads=4,
    ffn_size=5632,
    vocab_size=32000,
    activation=Activation.SWIGLU,
)

_CATALOG: dict[str, ModelConfig] = {
    cfg.name.lower(): cfg
    for cfg in (MISTRAL_7B, YI_34B, LLAMA2_70B, FALCON_180B, TINY_1B)
}


def list_models() -> list[str]:
    """Names of all registered models, in catalog order."""
    return [cfg.name for cfg in _CATALOG.values()]


def get_model(name: str) -> ModelConfig:
    """Look up a model by (case-insensitive) name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    key = name.lower()
    if key not in _CATALOG:
        raise KeyError(f"unknown model {name!r}; known models: {list_models()}")
    return _CATALOG[key]


def register_model(config: ModelConfig) -> None:
    """Register a custom model so ``get_model`` can find it."""
    _CATALOG[config.name.lower()] = config
