"""Transformer architecture description and static accounting.

``ModelConfig`` captures the handful of architectural quantities that
determine inference cost on the roofline model: layer count, hidden and
FFN widths, attention head layout (MHA / GQA / MQA, optional sliding
window), vocabulary size and datatype width.  All the derived
quantities — parameter counts, per-token FLOPs, KV-cache bytes — are
exposed as methods so the perf model and the memory manager share one
source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Activation(enum.Enum):
    """FFN activation family; gated activations add a third projection."""

    GELU = "gelu"
    RELU = "relu"
    SWIGLU = "swiglu"

    @property
    def is_gated(self) -> bool:
        return self is Activation.SWIGLU


@dataclass(frozen=True)
class ModelConfig:
    """Static architecture description of a decoder-only transformer."""

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    ffn_size: int
    vocab_size: int
    activation: Activation = Activation.SWIGLU
    sliding_window: int | None = None
    dtype_bytes: int = 2  # fp16/bf16 weights and KV cache
    parallel_attn_mlp: bool = False  # Falcon-style parallel blocks
    max_position_embeddings: int = 32768

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads:
            raise ValueError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads:
            raise ValueError(
                f"{self.name}: num_heads {self.num_heads} not divisible by "
                f"num_kv_heads {self.num_kv_heads}"
            )
        if self.dtype_bytes not in (1, 2, 4):
            raise ValueError(f"{self.name}: unsupported dtype width {self.dtype_bytes}")

    # ------------------------------------------------------------------
    # Head geometry
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.num_kv_heads * self.head_dim

    @property
    def gqa_group_size(self) -> int:
        """Query heads sharing one KV head (1 = MHA, num_heads = MQA)."""
        return self.num_heads // self.num_kv_heads

    # ------------------------------------------------------------------
    # Parameter counts (full model, unsharded)
    # ------------------------------------------------------------------
    @property
    def attn_params_per_layer(self) -> int:
        """Q/K/V and output projection weights of one layer."""
        q_and_out = 2 * self.hidden_size * self.hidden_size
        kv = 2 * self.hidden_size * self.kv_dim
        return q_and_out + kv

    @property
    def ffn_params_per_layer(self) -> int:
        matrices = 3 if self.activation.is_gated else 2
        return matrices * self.hidden_size * self.ffn_size

    @property
    def params_per_layer(self) -> int:
        return self.attn_params_per_layer + self.ffn_params_per_layer

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_size

    @property
    def lm_head_params(self) -> int:
        return self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        return (
            self.num_layers * self.params_per_layer
            + self.embedding_params
            + self.lm_head_params
        )

    # ------------------------------------------------------------------
    # Byte footprints
    # ------------------------------------------------------------------
    @property
    def weight_bytes(self) -> int:
        return self.total_params * self.dtype_bytes

    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """K + V vectors for one token in one layer."""
        return 2 * self.kv_dim * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        return self.num_layers * self.kv_bytes_per_token_per_layer

    def kv_bytes(self, num_tokens: int) -> int:
        return num_tokens * self.kv_bytes_per_token

    # ------------------------------------------------------------------
    # FLOP accounting (per forward pass)
    # ------------------------------------------------------------------
    def linear_flops(self, num_tokens: int) -> int:
        """Matmul FLOPs of all linear layers for ``num_tokens`` tokens."""
        per_token = 2 * self.num_layers * self.params_per_layer
        return num_tokens * per_token + 2 * num_tokens * self.lm_head_params

    def attention_flops(self, num_tokens: int, past_len: int) -> int:
        """Score+value FLOPs for a causal segment of ``num_tokens``.

        The segment attends to ``past_len`` cached tokens plus itself
        causally, optionally clipped by a sliding window.  Counted over
        all layers and query heads: QK^T and PV each cost
        ``2 * head_dim`` FLOPs per (query, key) pair.
        """
        pairs = self._attention_pairs(num_tokens, past_len)
        per_pair = 4 * self.head_dim  # 2 for QK^T + 2 for PV
        return self.num_layers * self.num_heads * pairs * per_pair

    def _attention_pairs(self, num_tokens: int, past_len: int) -> int:
        """Number of (query, key) interactions in a causal segment."""
        window = self.sliding_window
        total = 0
        for i in range(num_tokens):
            span = past_len + i + 1
            if window is not None:
                span = min(span, window)
            total += span
        return total

    def attention_kv_read_bytes(self, num_tokens: int, past_len: int) -> int:
        """Bytes of K/V fetched from HBM to attend the segment.

        Cached keys/values of ``past_len`` tokens (window-clipped) are
        read once per segment; the segment's own KV is produced on-chip.
        This is the term that makes chunked prefills re-read earlier
        chunks (§4.3).
        """
        span = past_len
        if self.sliding_window is not None:
            span = min(span, self.sliding_window)
        return span * self.kv_bytes_per_token

    def flops_per_token(self) -> int:
        """Classic ~2×params estimate used for MFU-style sanity checks."""
        return self.linear_flops(1)
