"""KV-cache memory management: paged and reservation allocators."""

from repro.memory.block_manager import (
    DEFAULT_BLOCK_SIZE,
    MemoryManager,
    PagedBlockManager,
    ReservationManager,
)
from repro.memory.capacity import (
    DEFAULT_GPU_MEMORY_UTILIZATION,
    PAGED_ACTIVATION_RESERVE_BYTES,
    RESERVATION_ACTIVATION_RESERVE_BYTES,
    kv_token_capacity,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "MemoryManager",
    "PagedBlockManager",
    "ReservationManager",
    "DEFAULT_GPU_MEMORY_UTILIZATION",
    "PAGED_ACTIVATION_RESERVE_BYTES",
    "RESERVATION_ACTIVATION_RESERVE_BYTES",
    "kv_token_capacity",
]
