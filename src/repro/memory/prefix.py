"""Shared KV prefix store: ref-counted cross-request block reuse.

Multi-round conversations and fleet tenants with common system prompts
re-prefill the same leading tokens on every request.  The store keeps
those leading blocks alive after their owning request finishes, keyed
by a *prefix id* (conversation or tenant identity), so a later request
in the same lineage can claim them instead of recomputing.

Design constraints, in order:

* **Correct-by-accounting.**  The store never fabricates capacity: a
  shared block is a real block moved out of the allocator's free pool
  when published and moved back when evicted.  The conservation
  invariant ``free + exclusive + shared == total`` holds at every step
  (property-tested in ``tests/test_prefix_properties.py``).
* **Deterministic.**  Eviction is strict LRU over a monotone logical
  clock bumped only by claims and registrations.  Both engines drive
  the store through bit-identical schedules, so their stores evolve
  identically — the differential suite enforces this.
* **Block-aligned sharing with copy-on-write.**  Only whole blocks are
  shared.  A request whose ``prefix_len`` diverges mid-block shares
  the last fully-matching block boundary and writes the divergent
  block fresh (the copy-on-write copy, counted in ``cow_copies``);
  the shared entry itself is never mutated by a claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PrefixCacheStats:
    """Counters the store accumulates over a run."""

    hits: int = 0
    misses: int = 0
    hit_tokens: int = 0       # prefill tokens skipped thanks to reuse
    cow_copies: int = 0       # mid-block divergences paid with a fresh block
    registrations: int = 0    # entries created or extended at finish
    evictions: int = 0        # entries reclaimed under memory pressure

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "prefix_hits": self.hits,
            "prefix_misses": self.misses,
            "prefix_hit_rate": self.hit_rate,
            "prefix_hit_tokens": self.hit_tokens,
            "prefix_cow_copies": self.cow_copies,
            "prefix_registrations": self.registrations,
            "prefix_evictions": self.evictions,
        }


@dataclass
class _Entry:
    """One published prefix: ``blocks`` whole blocks covering ``tokens``."""

    prefix_id: int
    tokens: int        # always a multiple of the block size
    blocks: int        # == tokens // block_size, kept for O(1) sums
    refcount: int      # running requests currently sharing the entry
    last_use: int      # logical clock of the last claim/registration
    owners: tuple[int, ...] = field(default_factory=tuple)  # claiming request ids


class SharedPrefixStore:
    """Ref-counted prefix entries living inside one paged allocator.

    The owning :class:`~repro.memory.block_manager.PagedBlockManager`
    (or its vectorized port) is responsible for moving blocks between
    its free pool and the store; the store only does the bookkeeping.
    Entries with ``refcount == 0`` are *retained* — they keep serving
    hits until the allocator needs their blocks back and evicts them
    LRU-first via :meth:`evict_for`.
    """

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self._entries: dict[int, _Entry] = {}
        self._clock = 0
        self._shared_blocks = 0
        self.stats = PrefixCacheStats()

    # -- introspection -------------------------------------------------
    @property
    def shared_blocks(self) -> int:
        """Blocks currently owned by the store (referenced or retained)."""
        return self._shared_blocks

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def entry_tokens(self, prefix_id: int) -> int:
        """Published token coverage for a prefix id (0 when absent)."""
        entry = self._entries.get(prefix_id)
        return entry.tokens if entry is not None else 0

    def entry_refcount(self, prefix_id: int) -> int:
        entry = self._entries.get(prefix_id)
        return entry.refcount if entry is not None else 0

    def entry_owners(self, prefix_id: int) -> tuple[int, ...]:
        """Request ids currently sharing the entry (for invariant tests)."""
        entry = self._entries.get(prefix_id)
        return entry.owners if entry is not None else ()

    def evictable_blocks(self, exclude: int | None = None) -> int:
        """Blocks reclaimable right now (refcount-0 entries)."""
        return sum(
            e.blocks
            for e in self._entries.values()
            if e.refcount == 0 and e.prefix_id != exclude
        )

    # -- lookup / claim ------------------------------------------------
    def usable_tokens(self, prefix_id: int, prefix_len: int, prefill_target: int) -> int:
        """Cached tokens an admission could skip — pure, no side effects.

        The usable span is the largest whole-block prefix that is (a)
        published, (b) attested identical by the request's
        ``prefix_len``, and (c) strictly shorter than the prefill
        target, so every request still computes at least one token and
        emits its first token from a real prefill chunk.
        """
        entry = self._entries.get(prefix_id)
        if entry is None:
            return 0
        bs = self.block_size
        usable = min(
            entry.tokens,
            (prefix_len // bs) * bs,
            ((prefill_target - 1) // bs) * bs,
        )
        return usable if usable > 0 else 0

    def claim(
        self, prefix_id: int, prefix_len: int, prefill_target: int, owner: int
    ) -> int:
        """Take a reference at admission time; returns cached tokens.

        A zero return is a miss (no entry, or nothing usable) and takes
        no reference.  ``owner`` tags the claiming request for the
        owner-set invariant; claims never mutate the entry's published
        coverage.
        """
        entry = self._entries.get(prefix_id)
        if entry is None:
            self.stats.misses += 1
            return 0
        cached = self.usable_tokens(prefix_id, prefix_len, prefill_target)
        if cached <= 0:
            self.stats.misses += 1
            return 0
        self._clock += 1
        entry.last_use = self._clock
        entry.refcount += 1
        entry.owners = entry.owners + (owner,)
        self.stats.hits += 1
        self.stats.hit_tokens += cached
        # Copy-on-write: the request matches the entry only up to a
        # mid-block divergence point, so its first novel block is a
        # fresh copy of a shared block (already part of its exclusive
        # allocation — this is pure accounting).
        bs = self.block_size
        aligned_prefix = (prefix_len // bs) * bs
        if cached == aligned_prefix and cached < entry.tokens and prefix_len % bs:
            self.stats.cow_copies += 1
        return cached

    def release(self, prefix_id: int, owner: int) -> None:
        """Drop a reference taken by :meth:`claim` (entry is retained)."""
        entry = self._entries[prefix_id]
        if entry.refcount <= 0:
            raise ValueError(f"prefix {prefix_id} released more than claimed")
        entry.refcount -= 1
        owners = list(entry.owners)
        owners.remove(owner)
        entry.owners = tuple(owners)

    # -- publication ---------------------------------------------------
    def register(self, prefix_id: int, prefix_len: int, publish_tokens: int) -> int:
        """Publish a finished request's context; returns blocks absorbed.

        The caller moves the returned number of blocks from the
        request's just-freed exclusive pool into the store.  Three
        cases:

        * no entry yet → create one covering ``publish_tokens`` aligned
          down to whole blocks;
        * the request's attested prefix (``prefix_len``) covers the
          whole existing entry and it publishes more → extend;
        * anything else (divergent or shorter history) → conservative
          no-op: the existing entry keeps serving its claimants.
        """
        bs = self.block_size
        publish_aligned = (publish_tokens // bs) * bs
        if publish_aligned <= 0:
            return 0
        entry = self._entries.get(prefix_id)
        if entry is None:
            self._clock += 1
            blocks = publish_aligned // bs
            self._entries[prefix_id] = _Entry(
                prefix_id=prefix_id,
                tokens=publish_aligned,
                blocks=blocks,
                refcount=0,
                last_use=self._clock,
            )
            self.stats.registrations += 1
            self._shared_blocks += blocks
            return blocks
        aligned_prefix = (prefix_len // bs) * bs
        if aligned_prefix >= entry.tokens and publish_aligned > entry.tokens:
            self._clock += 1
            delta = (publish_aligned - entry.tokens) // bs
            entry.tokens = publish_aligned
            entry.blocks += delta
            entry.last_use = self._clock
            self.stats.registrations += 1
            self._shared_blocks += delta
            return delta
        return 0

    # -- eviction ------------------------------------------------------
    def evict_for(self, blocks_needed: int, exclude: int | None = None) -> int:
        """Reclaim at least ``blocks_needed`` blocks if possible.

        Evicts whole refcount-0 entries in strict LRU order until the
        target is covered (or no candidates remain); returns the blocks
        actually reclaimed.  ``exclude`` protects the entry an ongoing
        admission is about to claim.
        """
        if blocks_needed <= 0:
            return 0
        candidates = sorted(
            (
                e
                for e in self._entries.values()
                if e.refcount == 0 and e.prefix_id != exclude
            ),
            key=lambda e: e.last_use,
        )
        reclaimed = 0
        for entry in candidates:
            if reclaimed >= blocks_needed:
                break
            del self._entries[entry.prefix_id]
            self._shared_blocks -= entry.blocks
            reclaimed += entry.blocks
            self.stats.evictions += 1
        return reclaimed
