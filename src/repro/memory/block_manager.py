"""KV-cache allocators: paged (vLLM-style) and reservation (Orca/FT-style).

The two allocation disciplines are a first-order driver of the paper's
results: PagedAttention lets vLLM and Sarathi-Serve admit requests
against their *current* footprint and grow block-by-block, while
Orca/FasterTransformer must reserve a worst-case contiguous slot per
request up front, capping their effective batch size (§5.1).
"""

from __future__ import annotations

import abc

from repro.memory.prefix import PrefixCacheStats, SharedPrefixStore
from repro.types import Request, RequestPhase

DEFAULT_BLOCK_SIZE = 16


class MemoryManager(abc.ABC):
    """Admission and growth interface shared by both allocators."""

    @abc.abstractmethod
    def can_admit(self, request: Request) -> bool:
        """Whether a *new* request's initial allocation would succeed."""

    @abc.abstractmethod
    def admit(self, request: Request) -> None:
        """Claim the initial allocation for a new request."""

    @abc.abstractmethod
    def can_append_token(self, request: Request) -> bool:
        """Whether one more generated token can be stored."""

    @abc.abstractmethod
    def append_token(self, request: Request) -> None:
        """Grow the request's allocation by one token slot."""

    @abc.abstractmethod
    def free(self, request: Request) -> None:
        """Release everything the request holds."""

    @property
    @abc.abstractmethod
    def free_token_slots(self) -> int:
        """Currently unclaimed token capacity."""

    @property
    @abc.abstractmethod
    def total_token_slots(self) -> int:
        """Total usable token capacity (free + claimed)."""

    @property
    def occupancy(self) -> float:
        """Fraction of usable capacity currently claimed, in [0, 1]."""
        total = self.total_token_slots
        if total <= 0:
            return 0.0
        return 1.0 - self.free_token_slots / total

    @abc.abstractmethod
    def holds(self, request: Request) -> bool:
        """Whether the request currently owns an allocation."""

    # -- capacity faults ----------------------------------------------
    def shed_capacity(self, fraction: float) -> int:
        """Shrink usable capacity by ``fraction`` (a capacity_loss fault).

        Returns the amount shed in the allocator's native unit (blocks
        or token slots) for a later :meth:`restore_capacity`.  The free
        pool may go *negative* — already-admitted work is never seized;
        instead admissions fail and decode appends trigger the normal
        eviction/preemption machinery until the deficit is worked off.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support capacity faults"
        )

    def restore_capacity(self, amount: int) -> None:
        """Return capacity shed by :meth:`shed_capacity`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support capacity faults"
        )


class PagedBlockManager(MemoryManager):
    """vLLM-style paged allocator, optionally with KV prefix caching.

    Requests are admitted when blocks for their *prompt* are available
    (plus a watermark that prevents immediately thrashing) and grow one
    block at a time during decode.  There is no fragmentation: any free
    block serves any request.

    With a :class:`~repro.memory.prefix.SharedPrefixStore` attached, an
    admission whose request carries a ``prefix_id`` first looks up the
    store: on a hit the cached whole blocks are claimed shared
    (ref-counted, never copied) and the request's ``prefill_done``
    jumps past them, so chunked prefill covers only the novel suffix
    while ``context_len`` — and therefore attention cost and KV
    occupancy — still reflects the full history.  Retained refcount-0
    entries are evicted LRU-first whenever an admission or decode
    append would otherwise fail, so sharing never deadlocks the
    allocator.  The lookup fires only for fresh state
    (``prefill_done == decode_steps == 0``): a swap-in restores its KV
    from host memory and must not re-claim shared blocks.
    """

    def __init__(
        self,
        capacity_tokens: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        watermark: float = 0.01,
        prefix_store: SharedPrefixStore | None = None,
    ) -> None:
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 <= watermark < 1.0:
            raise ValueError("watermark must be in [0, 1)")
        if prefix_store is not None and prefix_store.block_size != block_size:
            raise ValueError(
                f"prefix store block_size {prefix_store.block_size} != "
                f"allocator block_size {block_size}"
            )
        self.block_size = block_size
        self.num_blocks = capacity_tokens // block_size
        self._watermark_blocks = int(self.num_blocks * watermark)
        self._free_blocks = self.num_blocks
        self._allocated: dict[int, int] = {}  # request_id -> exclusive blocks
        self._store = prefix_store
        # request_id -> (prefix_id, shared blocks claimed at admission)
        self._claims: dict[int, tuple[int, int]] = {}

    def blocks_for(self, num_tokens: int) -> int:
        return (num_tokens + self.block_size - 1) // self.block_size

    def _initial_blocks(self, request: Request) -> int:
        """Blocks a (re-)admission must claim.

        Fresh and recompute-restarted requests own ``prefill_target``
        tokens of KV; a swapped-in request additionally owns its decode
        progress (``context_len``), whichever is larger.
        """
        return self.blocks_for(max(request.prefill_target, request.context_len))

    # -- prefix-cache plumbing ----------------------------------------
    def _lookup_eligible(self, request: Request) -> bool:
        """Fresh admissions (and recompute restarts) look up the store;
        swap-ins carry KV progress back from host memory and do not."""
        return (
            self._store is not None
            and request.prefix_id is not None
            and request.prefill_done == 0
            and request.decode_steps == 0
        )

    def _cached_tokens(self, request: Request) -> int:
        """Usable cached tokens a lookup would yield now (0 = miss)."""
        if not self._lookup_eligible(request):
            return 0
        return self._store.usable_tokens(
            request.prefix_id, request.prefix_len, request.prefill_target
        )

    def _exclude_id(self, request: Request) -> int | None:
        """Entry an ongoing admission must not evict (its own target)."""
        return request.prefix_id if self._lookup_eligible(request) else None

    def _evictable(self, exclude: int | None = None) -> int:
        if self._store is None:
            return 0
        return self._store.evictable_blocks(exclude=exclude)

    @property
    def prefix_stats(self) -> PrefixCacheStats | None:
        return self._store.stats if self._store is not None else None

    @property
    def shared_block_count(self) -> int:
        return self._store.shared_blocks if self._store is not None else 0

    # -- MemoryManager ------------------------------------------------
    def can_admit(self, request: Request) -> bool:
        needed = (
            self._initial_blocks(request)
            - self._cached_tokens(request) // self.block_size
        )
        evictable = self._evictable(exclude=self._exclude_id(request))
        return self._free_blocks + evictable - needed >= self._watermark_blocks

    def admit(self, request: Request) -> None:
        if request.request_id in self._allocated:
            raise ValueError(f"request {request.request_id} already admitted")
        cached = 0
        if self._lookup_eligible(request):
            cached = self._store.claim(
                request.prefix_id,
                request.prefix_len,
                request.prefill_target,
                owner=request.request_id,
            )
        needed = self._initial_blocks(request) - cached // self.block_size
        if needed > self._free_blocks and self._store is not None:
            self._free_blocks += self._store.evict_for(
                needed - self._free_blocks, exclude=request.prefix_id
            )
        if needed > self._free_blocks:
            if cached:
                self._store.release(request.prefix_id, owner=request.request_id)
            raise MemoryError(
                f"cannot admit request {request.request_id}: needs {needed} "
                f"blocks, {self._free_blocks} free"
            )
        self._free_blocks -= needed
        self._allocated[request.request_id] = needed
        if cached:
            self._claims[request.request_id] = (request.prefix_id, cached // self.block_size)
            # The cached span is already resident: chunked prefill
            # resumes at the first novel token, while ``context_len``
            # (and with it attention cost and KV occupancy) still
            # covers the full history.
            request.prefill_done = cached

    def can_append_token(self, request: Request) -> bool:
        if request.request_id not in self._allocated:
            raise ValueError(f"request {request.request_id} holds no allocation")
        if not self._needs_new_block(request):
            return True
        # Shortfall form so a capacity_loss deficit (negative free) is
        # paid down before the append, not papered over.
        return self._free_blocks + self._evictable() >= 1

    def append_token(self, request: Request) -> None:
        if request.request_id not in self._allocated:
            raise ValueError(f"request {request.request_id} holds no allocation")
        if not self._needs_new_block(request):
            return
        if self._free_blocks < 1 and self._store is not None:
            self._free_blocks += self._store.evict_for(1 - self._free_blocks)
        if self._free_blocks < 1:
            raise MemoryError("out of KV blocks")
        self._free_blocks -= 1
        self._allocated[request.request_id] += 1

    def free(self, request: Request) -> None:
        held = self._allocated.pop(request.request_id, None)
        if held is None:
            return  # freeing a request that holds nothing is a no-op
        self._free_blocks += held
        if self._store is None:
            return
        claim = self._claims.pop(request.request_id, None)
        if claim is not None:
            self._store.release(claim[0], owner=request.request_id)
        # A *finished* request publishes its history back to the store;
        # eviction/swap-out frees pass through untouched (their KV is
        # either discarded or parked on the host, not shareable).
        if request.phase is RequestPhase.FINISHED and request.prefix_id is not None:
            publish = (
                request.context_len
                if request.prefix_publish_len is None
                else min(request.prefix_publish_len, request.context_len)
            )
            absorbed = self._store.register(
                request.prefix_id, request.prefix_len, publish
            )
            # Published blocks move from the just-freed exclusive pool
            # into the store (always covered: the request's held blocks
            # spanned its full context).
            self._free_blocks -= absorbed

    @property
    def free_token_slots(self) -> int:
        return self._free_blocks * self.block_size

    @property
    def total_token_slots(self) -> int:
        return self.num_blocks * self.block_size

    def holds(self, request: Request) -> bool:
        return request.request_id in self._allocated

    # -- internals ----------------------------------------------------
    def _needs_new_block(self, request: Request) -> bool:
        shared = self._claims.get(request.request_id, (0, 0))[1]
        held_tokens = (
            self._allocated.get(request.request_id, 0) + shared
        ) * self.block_size
        return request.context_len + 1 > held_tokens

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    # -- capacity faults ----------------------------------------------
    def shed_capacity(self, fraction: float) -> int:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        lost = int(self.num_blocks * fraction)
        self.num_blocks -= lost
        self._free_blocks -= lost
        return lost

    def restore_capacity(self, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self.num_blocks += amount
        self._free_blocks += amount


class ReservationManager(MemoryManager):
    """Orca/FasterTransformer-style worst-case contiguous reservation.

    Each admitted request reserves ``reserve_len`` token slots up front
    (the engine cannot know the output length, so it must assume the
    maximum).  Decode growth never fails — the space was prepaid — but
    far fewer requests fit, capping batch size (§5.1).
    """

    def __init__(self, capacity_tokens: int, reserve_len: int) -> None:
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        if reserve_len <= 0:
            raise ValueError("reserve_len must be positive")
        self.capacity_tokens = capacity_tokens
        self.reserve_len = reserve_len
        self._free_tokens = capacity_tokens
        self._allocated: dict[int, int] = {}

    def _reservation_for(self, request: Request) -> int:
        # A prompt longer than the nominal reservation still needs its
        # full length reserved.
        return max(self.reserve_len, request.prefill_target + request.remaining_output)

    # -- MemoryManager ------------------------------------------------
    def can_admit(self, request: Request) -> bool:
        return self._free_tokens >= self._reservation_for(request)

    def admit(self, request: Request) -> None:
        if request.request_id in self._allocated:
            raise ValueError(f"request {request.request_id} already admitted")
        needed = self._reservation_for(request)
        if needed > self._free_tokens:
            raise MemoryError(
                f"cannot admit request {request.request_id}: needs {needed} "
                f"token slots, {self._free_tokens} free"
            )
        self._free_tokens -= needed
        self._allocated[request.request_id] = needed

    def can_append_token(self, request: Request) -> bool:
        return request.request_id in self._allocated

    def append_token(self, request: Request) -> None:
        if request.request_id not in self._allocated:
            raise ValueError(f"request {request.request_id} holds no allocation")
        # Growth is prepaid by the reservation.

    def free(self, request: Request) -> None:
        held = self._allocated.pop(request.request_id, 0)
        self._free_tokens += held

    @property
    def free_token_slots(self) -> int:
        return self._free_tokens

    @property
    def total_token_slots(self) -> int:
        return self.capacity_tokens

    def holds(self, request: Request) -> bool:
        return request.request_id in self._allocated

    # -- capacity faults ----------------------------------------------
    def shed_capacity(self, fraction: float) -> int:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        lost = int(self.capacity_tokens * fraction)
        self.capacity_tokens -= lost
        self._free_tokens -= lost
        return lost

    def restore_capacity(self, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self.capacity_tokens += amount
        self._free_tokens += amount
