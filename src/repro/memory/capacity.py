"""KV-cache capacity planning for a deployment.

Answers the question every serving system asks at startup: after
loading weight shards and reserving activation workspace, how many
tokens of KV cache fit on each GPU?
"""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig

# Fraction of HBM the serving system lets itself use (vLLM's
# ``gpu_memory_utilization`` default).
DEFAULT_GPU_MEMORY_UTILIZATION = 0.90

# Workspace reserved for activations, set aside per GPU.  Orca-style
# engines that run huge multi-prompt batches need far more than paged
# engines (§5.1 discusses Orca's large activation footprint).
PAGED_ACTIVATION_RESERVE_BYTES = 2 << 30
RESERVATION_ACTIVATION_RESERVE_BYTES = 8 << 30


def kv_token_capacity(
    model: ModelConfig,
    gpu: GPUSpec,
    parallel: ParallelConfig,
    gpu_memory_utilization: float = DEFAULT_GPU_MEMORY_UTILIZATION,
    activation_reserve_bytes: int = PAGED_ACTIVATION_RESERVE_BYTES,
) -> int:
    """Number of KV-cache token slots one replica can hold.

    The binding constraint is per-GPU: usable HBM minus the weight
    shard minus activation workspace, divided by the per-GPU KV bytes
    one token costs.  Every GPU of a stage holds the same share, and
    every stage must hold KV for every token it serves, so the per-GPU
    number is also the replica-wide number of token slots.
    """
    if not 0.0 < gpu_memory_utilization <= 1.0:
        raise ValueError("gpu_memory_utilization must be in (0, 1]")
    usable = gpu.memory_capacity * gpu_memory_utilization
    weights = parallel.stage_weight_bytes_per_gpu(model)
    free_bytes = usable - weights - activation_reserve_bytes
    if free_bytes <= 0:
        raise ValueError(
            f"{model.name} does not fit on {gpu.name} with {parallel.label}: "
            f"weights need {weights / (1 << 30):.1f} GiB of "
            f"{usable / (1 << 30):.1f} GiB usable"
        )
    per_token = parallel.kv_bytes_per_token_per_gpu(model)
    return int(free_bytes / per_token)
