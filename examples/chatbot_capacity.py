#!/usr/bin/env python
"""Capacity planning for an interactive chatbot.

The scenario from the paper's introduction: a chatbot must keep every
token stream fluid (strict P99 TBT SLO) while serving as many users as
possible per GPU.  This example searches the maximum sustainable
queries-per-second for each scheduler on Yi-34B (2×A100, TP2) over the
openchat_sharegpt4 workload and reports the cost implication.

Run:  python examples/chatbot_capacity.py          (takes ~a minute)
"""

from __future__ import annotations

from repro.experiments.capacity_runner import measure_capacity, serving_config_for
from repro.experiments.common import Scale, yi_deployment
from repro.metrics.slo import derived_slo
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4

SCALE = Scale(num_requests=96, capacity_rel_tol=0.2, capacity_max_probes=9)


def main() -> None:
    deployment = yi_deployment()
    slo = derived_slo(deployment.execution_model(), strict=True)
    print(f"deployment: {deployment.label}")
    print(f"SLO: P99 TBT <= {slo.p99_tbt * 1e3:.0f} ms "
          f"(5x the reference decode latency), "
          f"median queueing delay <= {slo.max_median_scheduling_delay:.0f}s\n")

    capacities = {}
    for kind in (SchedulerKind.ORCA, SchedulerKind.VLLM, SchedulerKind.SARATHI):
        config = serving_config_for(deployment, kind, strict=True)
        result = measure_capacity(
            deployment, kind, SHAREGPT4, slo, SCALE, config=config, qps_hint=1.0
        )
        capacities[kind.value] = result.capacity_qps
        print(f"{kind.value:10s} capacity: {result.capacity_qps:5.2f} qps "
              f"({result.num_probes} probes)")

    baseline = capacities["vllm"]
    sarathi = capacities["sarathi"]
    if baseline > 0:
        gain = sarathi / baseline
        print(
            f"\nSarathi-Serve sustains {gain:.1f}x the load of vLLM under "
            f"this SLO — the same user base needs ~{100 / gain:.0f}% of the "
            "GPUs (paper reports up to 3.7x for Yi-34B)."
        )


if __name__ == "__main__":
    main()
