#!/usr/bin/env python
"""Serving a 180B model across two commodity-network nodes (§5.3).

Falcon-180B does not fit in one node, and 8-way tensor parallelism
over 100G Ethernet pays per-layer allreduces on the critical path.
This example (a) compares decode latency of cross-node TP8 vs
TP4-within-node + PP2-across-nodes, and (b) runs a trace through the
pipeline under Orca-style scheduling vs Sarathi-Serve to show how
uniform batches shrink pipeline bubbles.

Run:  python examples/pipeline_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ServingConfig, simulate
from repro.experiments.common import falcon_deployment, falcon_tp8_cross_node_deployment
from repro.experiments.fig13_tp_vs_pp import run_decode_latency
from repro.metrics.timeline import pipeline_bubble_time, stage_utilization
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests


def main() -> None:
    print("== (a) parallel layout: decode-only TBT ==")
    for point in run_decode_latency(batch_sizes=(16, 32, 64)):
        print(f"  {point.layout:16s} bs={point.batch_size:<3d} "
              f"TBT {point.tbt * 1e3:6.1f} ms")
    print("  cross-node TP pays 80 layers of Ethernet allreduces per token;")
    print("  the hybrid layout pays one activation hop per micro-batch.\n")

    print("== (b) pipeline bubbles: Orca vs Sarathi-Serve ==")
    deployment = falcon_deployment()
    trace = generate_requests(SHAREGPT4, num_requests=96, qps=1.0, seed=2)
    for kind in (SchedulerKind.ORCA, SchedulerKind.SARATHI):
        config = ServingConfig(scheduler=kind, token_budget=512)
        result, metrics = simulate(deployment, config, trace)
        durations = [r.duration for r in result.records if r.stage == 0]
        cv = float(np.std(durations) / np.mean(durations))
        num_bubbles, bubble_time = pipeline_bubble_time(result.records, 1)
        span = stage_utilization(result.records, 1).span
        print(
            f"  {kind.value:8s} micro-batch time CV {cv:4.2f} | "
            f"stage-2 bubbles {num_bubbles:5d} "
            f"({bubble_time:6.1f}s, {bubble_time / span:5.1%} of span) | "
            f"P99 TBT {metrics.p99_tbt:6.3f}s"
        )
    print(
        "\nOrca's micro-batches swing between multi-second prefills and "
        "sub-100ms decodes, starving the second stage; Sarathi's "
        "budget-bounded hybrid batches keep the pipe full."
    )


if __name__ == "__main__":
    main()
