#!/usr/bin/env python
"""Quickstart: serve a synthetic chatbot trace with Sarathi-Serve.

Builds a Mistral-7B-on-A100 deployment, generates 100 requests with
openchat_sharegpt4 length statistics arriving at 1.5 queries/second,
runs them through the stall-free scheduler, and prints the latency
summary next to a vLLM baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Deployment, SchedulerKind, ServingConfig, simulate
from repro.hardware import A100_80G
from repro.models import MISTRAL_7B
from repro.workload import SHAREGPT4, generate_requests


def main() -> None:
    deployment = Deployment(model=MISTRAL_7B, gpu=A100_80G)
    trace = generate_requests(SHAREGPT4, num_requests=100, qps=1.5, seed=0)
    print(f"deployment: {deployment.label}")
    print(f"trace: {len(trace)} requests, "
          f"median prompt {sorted(r.prompt_len for r in trace)[50]} tokens\n")

    header = f"{'scheduler':10s} {'P99 TBT':>9s} {'max TBT':>9s} {'med TTFT':>9s} {'tok/s':>8s}"
    print(header)
    print("-" * len(header))
    for kind in (SchedulerKind.SARATHI, SchedulerKind.VLLM):
        config = ServingConfig(scheduler=kind, token_budget=512)
        _, metrics = simulate(deployment, config, trace)
        print(
            f"{kind.value:10s} {metrics.p99_tbt:8.3f}s {metrics.max_tbt:8.3f}s "
            f"{metrics.median_ttft:8.3f}s {metrics.throughput_tokens_per_s:8.0f}"
        )

    print(
        "\nSarathi-Serve's stall-free batching keeps the TBT tail near the "
        "decode-iteration latency; vLLM's eager prefills stall ongoing "
        "decodes for up to several hundred milliseconds even at this "
        "moderate load."
    )


if __name__ == "__main__":
    main()
