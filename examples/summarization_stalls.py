#!/usr/bin/env python
"""Document summarization: watching generation stalls happen.

The arxiv_summarization workload (median prompt ≈ 7k tokens) is the
paper's worst case for prefill-prioritizing schedulers: every newly
admitted document freezes all ongoing summaries for the full prefill.
This example replays the same trace under vLLM and Sarathi-Serve on
Yi-34B (TP2) and prints each request's worst inter-token gap plus a
token-timeline sketch of the most-stalled request (the view of
Fig. 1a).

Run:  python examples/summarization_stalls.py
"""

from __future__ import annotations

from repro.api import ServingConfig, simulate
from repro.experiments.common import yi_deployment
from repro.metrics.timeline import generation_stalls
from repro.types import Request, SchedulerKind
from repro.workload.datasets import ARXIV_SUMMARIZATION, generate_requests

STALL_THRESHOLD = 0.5  # seconds


def sketch_timeline(request: Request, bucket: float = 1.0, width: int = 60) -> str:
    """ASCII density sketch: one column per ``bucket`` seconds, darker
    means more tokens emitted; gaps show up as spaces."""
    if not request.token_times:
        return "(no tokens)"
    start = request.token_times[0]
    span = request.token_times[-1] - start
    buckets = int(span / bucket) + 1
    counts = [0] * buckets
    for t in request.token_times:
        counts[int((t - start) / bucket)] += 1
    shades = " .:*#"
    cells = min(buckets, width)
    step = buckets / cells
    out = []
    for i in range(cells):
        chunk = counts[int(i * step) : int((i + 1) * step) + 1]
        density = max(chunk) if chunk else 0
        out.append(shades[min(len(shades) - 1, density // 3 + (1 if density else 0))])
    return "".join(out)


def main() -> None:
    deployment = yi_deployment()
    trace = generate_requests(ARXIV_SUMMARIZATION, num_requests=96, qps=0.45, seed=1)
    print(f"deployment: {deployment.label}")
    print("workload: arxiv_summarization, 96 requests @ 0.45 qps\n")

    for kind in (SchedulerKind.VLLM, SchedulerKind.SARATHI):
        config = ServingConfig(scheduler=kind, token_budget=512)
        result, metrics = simulate(deployment, config, trace)
        stalls = []
        worst_request = None
        worst_gap = 0.0
        for request in result.finished_requests:
            gaps = generation_stalls(request, STALL_THRESHOLD)
            stalls.extend(gaps)
            if gaps and max(gaps) > worst_gap:
                worst_gap = max(gaps)
                worst_request = request
        print(f"== {kind.value} ==")
        print(f"  P99 TBT {metrics.p99_tbt:.3f}s | stalls(>{STALL_THRESHOLD}s): "
              f"{len(stalls)} | worst stall {worst_gap:.2f}s")
        if worst_request is not None:
            print(f"  most-stalled request (1 col ≈ 1s, blank = stalled):")
            print(f"  [{sketch_timeline(worst_request)}]")
        else:
            print("  no generation stalls — every gap stayed under the threshold")
        print()

    print(
        "vLLM freezes all ongoing summaries whenever a new 7k-token paper "
        "is prefilled; Sarathi-Serve slips the same prefill through in "
        "512-token chunks riding along with the decodes."
    )


if __name__ == "__main__":
    main()
