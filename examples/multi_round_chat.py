#!/usr/bin/env python
"""Closed-loop multi-round chat across a small fleet.

The sharegpt workload is conversational: each round's prompt carries
the whole history, and the next round only arrives after the user has
read the response.  This example drives that closed loop through the
engine's followup hook, comparing Sarathi-Serve against vLLM on
per-round responsiveness, then shows how a 2-replica fleet with
least-outstanding-tokens routing absorbs the same community of users.

Run:  python examples/multi_round_chat.py
"""

from __future__ import annotations

from repro.api import ServingConfig
from repro.cluster import LeastTokensRouter, simulate_cluster
from repro.experiments.common import mistral_deployment
from repro.types import SchedulerKind
from repro.workload.conversation import ConversationSpec, simulate_conversations
from repro.workload.datasets import generate_requests, SHAREGPT4


def main() -> None:
    deployment = mistral_deployment()
    spec = ConversationSpec(
        num_conversations=60,
        mean_rounds=4.0,
        mean_think_time=8.0,
        arrival_qps=0.8,
    )
    print(f"deployment: {deployment.label}")
    print(f"workload: {spec.num_conversations} conversations, "
          f"~{spec.mean_rounds:.0f} rounds each, "
          f"{spec.mean_think_time:.0f}s think time\n")

    print("== single replica, closed-loop conversations ==")
    for kind in (SchedulerKind.SARATHI, SchedulerKind.VLLM):
        config = ServingConfig(scheduler=kind, token_budget=512)
        result, metrics = simulate_conversations(deployment, config, spec, seed=11)
        print(
            f"  {kind.value:8s} rounds served {metrics.num_requests:4d} | "
            f"median TTFT {metrics.median_ttft:6.3f}s | "
            f"P99 TBT {metrics.p99_tbt:6.3f}s | max TBT {metrics.max_tbt:6.3f}s"
        )
    print(
        "  every later round re-prefills the whole history, so prompts grow "
        "round over round — exactly the long-prefill regime where vLLM's "
        "eager scheduling stalls other users' streams.\n"
    )

    print("== same load on a 2-replica fleet (least-outstanding-tokens) ==")
    trace = generate_requests(SHAREGPT4, num_requests=150, qps=4.0, seed=11)
    for replicas in (1, 2):
        _, metrics = simulate_cluster(
            deployment,
            ServingConfig(scheduler=SchedulerKind.SARATHI, token_budget=512),
            trace,
            num_replicas=replicas,
            router=LeastTokensRouter(replicas),
        )
        print(
            f"  {replicas} replica(s): median TTFT {metrics.median_ttft:6.2f}s | "
            f"P99 sched delay {metrics.p99_scheduling_delay:6.2f}s | "
            f"P99 TBT {metrics.p99_tbt:6.3f}s"
        )


if __name__ == "__main__":
    main()
