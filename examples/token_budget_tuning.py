#!/usr/bin/env python
"""Choosing a token budget for a deployment (§4.3 in practice).

The token budget is Sarathi-Serve's single knob: smaller budgets bound
iteration latency tighter (better TBT) but chunk prefills more
aggressively (more KV re-reads and fixed overheads, worse prefill
efficiency).  This example runs the one-time profiling pass the paper
describes for LLaMA2-70B on 8×A40 (TP4-PP2), prints the profile, picks
budgets for a strict and a relaxed SLO, and shows the resulting chunk
overheads.

Run:  python examples/token_budget_tuning.py
"""

from __future__ import annotations

from repro.experiments.common import llama70_deployment
from repro.perf.profiler import (
    compute_token_budget,
    derive_slo,
    profile_token_budgets,
    reference_decode_time,
)


def main() -> None:
    deployment = llama70_deployment()
    exec_model = deployment.execution_model()
    reference = reference_decode_time(exec_model)
    print(f"deployment: {deployment.label}")
    print(f"reference decode TBT (bs=32, 4k context): {reference * 1e3:.1f} ms\n")

    strict = derive_slo(exec_model, strict=True)
    relaxed = derive_slo(exec_model, strict=False)

    print("hybrid-batch latency profile (one budget-filled iteration):")
    print(f"{'budget':>8s} {'iter time':>10s} {'strict ok':>10s} {'relaxed ok':>11s}")
    for profile in profile_token_budgets(exec_model, strict):
        if profile.token_budget % 512 and profile.token_budget > 1024:
            continue
        print(
            f"{profile.token_budget:8d} {profile.iteration_time * 1e3:8.1f}ms "
            f"{'yes' if profile.iteration_time <= strict else 'no':>10s} "
            f"{'yes' if profile.iteration_time <= relaxed else 'no':>11s}"
        )

    strict_budget = compute_token_budget(exec_model, strict)
    relaxed_budget = compute_token_budget(exec_model, relaxed)
    print(f"\nchosen budgets: strict SLO ({strict * 1e3:.0f} ms) -> {strict_budget} "
          f"tokens; relaxed SLO ({relaxed * 1e3:.0f} ms) -> {relaxed_budget} tokens")
    print("(the paper ships 512 strict / 1536-2048 relaxed)\n")

    print("prefill overhead of chunking a 8192-token prompt:")
    unchunked = exec_model.full_prefill_time(8192).total
    for budget in (strict_budget, relaxed_budget):
        chunked = exec_model.chunked_prefill_time(8192, budget).total
        print(
            f"  chunk {budget:5d}: {chunked:.2f}s vs {unchunked:.2f}s unchunked "
            f"(+{(chunked / unchunked - 1) * 100:.1f}%)"
        )


if __name__ == "__main__":
    main()
