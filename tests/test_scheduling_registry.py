"""Unit tests for the scheduler registry and the enum compatibility shim.

``SchedulerKind`` is now a thin alias layer over the string-keyed
registry; these tests pin the resolution rules (names, aliases, enums,
did-you-mean errors), the registration guard rails, and — the load
bearing one — that building a scheduler through the enum shim and
through its registry name produces bit-identical simulations.
"""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_scheduler, simulate
from repro.scheduling.registry import (
    SchedulerSpec,
    list_specs,
    register,
    registered_names,
    resolve,
    scheduler_name,
    unregister,
)
from repro.types import SchedulerKind
from tests.conftest import make_request

BUILTIN_NAMES = (
    "faster_transformer",
    "orca",
    "vllm",
    "sarathi",
    "sarathi_dynamic",
    "chunked_prefills_only",
    "hybrid_batching_only",
)
THEORY_NAMES = ("srpt_oracle", "srpt_predicted", "fcfs_aging")


class TestResolution:
    def test_all_builtins_registered_in_order(self):
        names = registered_names()
        assert names[: len(BUILTIN_NAMES)] == list(BUILTIN_NAMES)
        for name in THEORY_NAMES:
            assert name in names

    def test_resolve_by_enum_and_by_string_agree(self):
        for kind in SchedulerKind:
            assert resolve(kind) is resolve(kind.value)

    def test_scheduler_name_normalizes(self):
        assert scheduler_name(SchedulerKind.SARATHI) == "sarathi"
        assert scheduler_name("srpt_oracle") == "srpt_oracle"

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(ValueError, match="did you mean 'sarathi_dynamic'"):
            resolve("sarathi_dyn")

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="registered: faster_transformer"):
            resolve("no_such_policy")

    def test_list_specs_matches_names(self):
        assert [spec.name for spec in list_specs()] == registered_names()


class TestRegistrationGuards:
    def _spec(self, name: str) -> SchedulerSpec:
        return SchedulerSpec(
            name=name,
            build=lambda ctx: (_ for _ in ()).throw(NotImplementedError),
            description="guard-rail test spec",
        )

    def test_duplicate_name_rejected_without_replace(self):
        register(self._spec("guard_test"))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(self._spec("guard_test"))
            register(self._spec("guard_test"), replace=True)
        finally:
            unregister("guard_test")
        assert "guard_test" not in registered_names()

    def test_builtin_names_are_protected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(self._spec("sarathi"))

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister("never_registered")

    def test_invalid_memory_family_rejected(self):
        with pytest.raises(ValueError, match="unknown memory family"):
            SchedulerSpec(
                name="bad_family",
                build=lambda ctx: None,
                memory_family="slab",
            )


class TestEnumShimDifferential:
    @pytest.mark.parametrize("kind", list(SchedulerKind))
    def test_enum_and_string_builds_are_bit_identical(self, tiny_deployment, kind):
        trace = [
            make_request(
                prompt_len=48 + 16 * (i % 5), output_len=6, arrival_time=0.15 * i
            )
            for i in range(12)
        ]
        by_enum, enum_metrics = simulate(
            tiny_deployment, ServingConfig(scheduler=kind, token_budget=128), trace
        )
        by_name, name_metrics = simulate(
            tiny_deployment,
            ServingConfig(scheduler=kind.value, token_budget=128),
            trace,
        )
        assert enum_metrics == name_metrics
        for a, b in zip(by_enum.requests, by_name.requests, strict=True):
            assert a.token_times == b.token_times
            assert a.finished_at == b.finished_at

    def test_enum_valued_string_normalizes_to_enum(self):
        # ServingConfig keeps `config.scheduler is SchedulerKind.X`
        # working for enum-valued strings (late-registered plug-in
        # names stay as strings until build time).
        config = ServingConfig(scheduler="sarathi")
        assert config.scheduler is SchedulerKind.SARATHI
        assert ServingConfig(scheduler="srpt_oracle").scheduler == "srpt_oracle"

    def test_same_class_from_both_paths(self, tiny_deployment):
        for kind in SchedulerKind:
            a = build_scheduler(tiny_deployment, ServingConfig(scheduler=kind))
            b = build_scheduler(tiny_deployment, ServingConfig(scheduler=kind.value))
            assert type(a) is type(b)
