"""Tests for GPU and interconnect specifications."""

from __future__ import annotations

import pytest

from repro.hardware.catalog import (
    A40_48G,
    A100_80G,
    ETHERNET_100G,
    H100_80G,
    NVLINK,
    PCIE_4,
    get_gpu,
    get_link,
)
from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import LinkSpec


class TestGPUSpec:
    def test_ridge_intensity(self):
        # A100: 312 TFLOPs / 2 TB/s = 156 FLOPs/byte.
        assert A100_80G.ridge_intensity == pytest.approx(156.0)

    def test_math_time(self):
        assert A100_80G.math_time(312e12) == pytest.approx(1.0)
        assert A100_80G.math_time(312e12, efficiency=0.5) == pytest.approx(2.0)

    def test_mem_time(self):
        assert A100_80G.mem_time(2.0e12) == pytest.approx(1.0)
        assert A100_80G.mem_time(1.0e12, efficiency=0.5) == pytest.approx(1.0)

    def test_a40_slower_than_a100(self):
        assert A40_48G.peak_flops < A100_80G.peak_flops
        assert A40_48G.memory_bandwidth < A100_80G.memory_bandwidth

    @pytest.mark.parametrize("flops,bw,cap", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_invalid_spec_rejected(self, flops, bw, cap):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", peak_flops=flops, memory_bandwidth=bw, memory_capacity=cap)

    def test_catalog_lookup(self):
        assert get_gpu("a100-80gb") is A100_80G
        assert get_gpu("H100-80GB") is H100_80G
        with pytest.raises(KeyError):
            get_gpu("tpu-v5")


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        link = LinkSpec(name="t", bandwidth=1e9, latency=1e-5)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_allreduce_time_single_rank_is_free(self):
        assert NVLINK.allreduce_time(1 << 20, world_size=1) == 0.0

    def test_allreduce_volume_scaling(self):
        # Ring allreduce moves 2(n-1)/n of the buffer per rank.
        size = 8 << 20
        t2 = NVLINK.allreduce_time(size, 2)
        t8 = NVLINK.allreduce_time(size, 8)
        # More ranks -> more volume (1.0x -> 1.75x) and more latency steps.
        assert t8 > t2

    def test_ethernet_much_slower_than_nvlink(self):
        size = 1 << 20
        assert ETHERNET_100G.allreduce_time(size, 4) > 5 * NVLINK.allreduce_time(size, 4)

    def test_invalid_link_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth=0, latency=0)
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth=1, latency=-1)

    def test_catalog_lookup(self):
        assert get_link("nvlink") is NVLINK
        assert get_link("PCIe-4.0") is PCIE_4
        with pytest.raises(KeyError):
            get_link("infiniband")
