"""Tests for swap re-admission sizing in the paged allocator."""

from __future__ import annotations

from repro.memory.block_manager import PagedBlockManager

from tests.conftest import make_request


class TestInitialBlocksSizing:
    def test_fresh_request_uses_prefill_target(self):
        mgr = PagedBlockManager(1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=100, output_len=50)
        mgr.admit(r)
        assert mgr._allocated[r.request_id] == mgr.blocks_for(100)

    def test_swapped_request_readmits_full_context(self):
        """A request swapped out mid-decode owns prompt + decoded KV;
        re-admission must claim blocks for the whole context."""
        mgr = PagedBlockManager(1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=100, output_len=50)
        mgr.admit(r)
        r.record_prefill(100, now=0.0)
        for i in range(30):
            mgr.append_token(r)
            r.record_decode(now=float(i))
        context = r.context_len
        assert context == 130
        blocks_held = mgr._allocated[r.request_id]
        # Swap out (state preserved) and back in.
        mgr.free(r)
        mgr.admit(r)
        assert mgr._allocated[r.request_id] == mgr.blocks_for(context)
        assert mgr._allocated[r.request_id] == blocks_held

    def test_can_admit_accounts_for_context(self):
        mgr = PagedBlockManager(160, block_size=16, watermark=0.0)
        r = make_request(prompt_len=100, output_len=80)
        mgr.admit(r)
        r.record_prefill(100, now=0.0)
        for i in range(58):
            mgr.append_token(r)
            r.record_decode(now=float(i))
        mgr.free(r)
        # Context is now 158 tokens -> 10 blocks -> exactly fits.
        assert mgr.can_admit(r)
        mgr.admit(r)
        assert mgr.free_blocks == 0

    def test_decode_growth_continues_after_readmission(self):
        mgr = PagedBlockManager(1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=100, output_len=40)
        mgr.admit(r)
        r.record_prefill(100, now=0.0)
        for i in range(10):
            mgr.append_token(r)
            r.record_decode(now=float(i))
        mgr.free(r)
        mgr.admit(r)  # swap back in
        # Growth resumes against the context-sized allocation.
        for i in range(10, 39):
            assert mgr.can_append_token(r)
            mgr.append_token(r)
            r.record_decode(now=float(i))
        assert r.is_finished
