"""Property-based tests (hypothesis) on core invariants.

These cover the data structures and conservation laws everything else
rests on: block-accounting in the allocators, token conservation in
the schedulers, monotonicity of the perf model, and chunking algebra.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import get_next_chunk_size, num_chunks
from repro.core.sarathi import SarathiScheduler
from repro.hardware.catalog import A100_80G
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.models.catalog import TINY_1B
from repro.perf.iteration import ExecutionModel
from repro.perf.roofline import tile_quantized
from repro.types import Request, TokenWork

lengths = st.integers(min_value=1, max_value=8192)
small_lengths = st.integers(min_value=1, max_value=512)


# ----------------------------------------------------------------------
# Chunking algebra
# ----------------------------------------------------------------------
@given(prompt=lengths, chunk=st.integers(min_value=1, max_value=4096))
def test_num_chunks_covers_prompt_exactly(prompt, chunk):
    n = num_chunks(prompt, chunk)
    assert (n - 1) * chunk < prompt <= n * chunk


@given(
    prompt=lengths,
    budget=st.integers(min_value=1, max_value=4096),
    used=st.integers(min_value=0, max_value=4096),
)
def test_chunk_size_within_bounds(prompt, budget, used):
    request = Request(prompt_len=prompt, output_len=1)
    chunk = get_next_chunk_size(request, budget, used)
    assert 0 <= chunk <= prompt
    assert chunk <= max(budget - used, 0)


@given(
    prompt=lengths,
    budget=st.integers(min_value=1, max_value=2048),
)
def test_repeated_chunking_terminates_and_covers(prompt, budget):
    """Applying the chunk policy repeatedly prefills the whole prompt."""
    request = Request(prompt_len=prompt, output_len=1)
    steps = 0
    while not request.is_prefill_complete:
        chunk = get_next_chunk_size(request, budget, tokens_used=0)
        assert chunk > 0
        request.record_prefill(chunk, now=float(steps))
        steps += 1
        assert steps <= num_chunks(prompt, budget)
    assert request.prefill_done == prompt


@given(n=st.integers(min_value=0, max_value=100_000), tile=st.sampled_from([16, 64, 128, 256]))
def test_tile_quantized_properties(n, tile):
    q = tile_quantized(n, tile)
    assert q >= n
    # Never pads more than one effective tile.
    assert q - n < tile
    if n % tile == 0:
        assert q == n


# ----------------------------------------------------------------------
# Paged allocator conservation
# ----------------------------------------------------------------------
@given(
    prompts=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=30),
    data=st.data(),
)
@settings(max_examples=50)
def test_paged_blocks_conserved(prompts, data):
    """free + held == total, across arbitrary admit/grow/free sequences."""
    mgr = PagedBlockManager(capacity_tokens=4096, block_size=16, watermark=0.0)
    held: list[Request] = []
    for prompt in prompts:
        r = Request(prompt_len=prompt, output_len=50)
        if mgr.can_admit(r):
            mgr.admit(r)
            r.record_prefill(prompt, now=0.0)
            held.append(r)
        elif held and data.draw(st.booleans()):
            victim = held.pop(data.draw(st.integers(0, len(held) - 1)))
            mgr.free(victim)
    # Grow a few of the held requests.
    for r in held:
        for _ in range(data.draw(st.integers(min_value=0, max_value=20))):
            if mgr.can_append_token(r):
                mgr.append_token(r)
                r.record_decode(now=1.0)
            else:
                break
    total_held = sum(mgr._allocated.values())
    assert mgr.free_blocks + total_held == mgr.num_blocks
    # Every held request has enough blocks for its context.
    for r in held:
        if mgr.holds(r):
            assert mgr._allocated[r.request_id] * 16 >= r.context_len


@given(
    prompts=st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=20)
)
def test_reservation_tokens_conserved(prompts):
    mgr = ReservationManager(capacity_tokens=16384, reserve_len=1024)
    admitted = []
    for prompt in prompts:
        r = Request(prompt_len=prompt, output_len=10)
        if mgr.can_admit(r):
            mgr.admit(r)
            admitted.append(r)
    held = sum(mgr._allocated.values())
    assert mgr.free_token_slots + held == 16384
    for r in admitted:
        mgr.free(r)
    assert mgr.free_token_slots == 16384


# ----------------------------------------------------------------------
# Request lifecycle invariants
# ----------------------------------------------------------------------
@given(
    prompt=small_lengths,
    output=st.integers(min_value=1, max_value=50),
    chunk=st.integers(min_value=1, max_value=256),
)
def test_request_emits_exactly_output_len_tokens(prompt, output, chunk):
    r = Request(prompt_len=prompt, output_len=output)
    now = 0.0
    while not r.is_prefill_complete:
        now += 1.0
        r.record_prefill(min(chunk, r.remaining_prefill), now=now)
    while not r.is_finished:
        now += 1.0
        r.record_decode(now=now)
    assert r.num_emitted == output
    assert len(r.token_times) == output
    assert r.token_times == sorted(r.token_times)
    assert r.context_len == prompt + output - 1


@given(
    prompt=small_lengths,
    output=st.integers(min_value=2, max_value=30),
    preempt_after=st.integers(min_value=0, max_value=10),
)
def test_preemption_roundtrip_preserves_emission_count(prompt, output, preempt_after):
    r = Request(prompt_len=prompt, output_len=output)
    r.record_prefill(prompt, now=0.0)
    steps = min(preempt_after, output - 1 - 1)
    now = 1.0
    for _ in range(max(steps, 0)):
        r.record_decode(now=now)
        now += 1.0
    emitted_before = r.num_emitted
    r.restart_after_preemption()
    assert r.num_emitted == emitted_before
    r.record_prefill(r.prefill_target, now=now)
    assert r.num_emitted == emitted_before  # re-prefill emits nothing new
    while not r.is_finished:
        now += 1.0
        r.record_decode(now=now)
    assert r.num_emitted == output


# ----------------------------------------------------------------------
# Perf model monotonicity
# ----------------------------------------------------------------------
@given(n=st.integers(min_value=1, max_value=4096))
@settings(max_examples=30)
def test_iteration_time_positive_and_monotone_in_tokens(n):
    exec_model = ExecutionModel(TINY_1B, A100_80G)
    t_n = exec_model.iteration_time([TokenWork.prefill_chunk(n)]).total
    t_2n = exec_model.iteration_time([TokenWork.prefill_chunk(2 * n)]).total
    assert t_n > 0
    assert t_2n >= t_n


@given(bs=st.integers(min_value=1, max_value=128), ctx=st.integers(min_value=1, max_value=4096))
@settings(max_examples=30)
def test_decode_time_monotone_in_batch_and_context(bs, ctx):
    exec_model = ExecutionModel(TINY_1B, A100_80G)
    base = exec_model.decode_iteration_time(bs, ctx).total
    bigger_batch = exec_model.decode_iteration_time(bs + 1, ctx).total
    longer_ctx = exec_model.decode_iteration_time(bs, ctx + 512).total
    assert bigger_batch >= base
    assert longer_ctx >= base


# ----------------------------------------------------------------------
# Sarathi scheduler invariants under random workloads
# ----------------------------------------------------------------------
@given(
    specs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=600),   # prompt
            st.integers(min_value=1, max_value=20),    # output
        ),
        min_size=1,
        max_size=15,
    ),
    budget=st.sampled_from([64, 256, 512]),
)
@settings(max_examples=40, deadline=None)
def test_sarathi_budget_and_completion_invariants(specs, budget):
    memory = PagedBlockManager(capacity_tokens=65536, block_size=16, watermark=0.0)
    scheduler = SarathiScheduler(memory, token_budget=budget, max_batch_size=16)
    requests = [Request(prompt_len=p, output_len=o) for p, o in specs]
    for r in requests:
        scheduler.add_request(r, now=0.0)
    now = 0.0
    for _ in range(20_000):
        batch = scheduler.schedule(now)
        if batch is None:
            if not scheduler.has_work:
                break
            now += 0.01
            continue
        assert batch.num_tokens <= budget
        assert batch.size <= 16
        now += 0.01
        scheduler.on_batch_complete(batch, now)
    assert all(r.is_finished for r in requests)
    # All memory returned.
    assert memory.free_blocks == memory.num_blocks
