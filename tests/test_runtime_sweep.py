"""Tests for the parallel sweep engine (``repro.runtime``) and the
warm-started grid runner.

The contract under test is the tentpole guarantee: a sweep's output is
a pure function of its spec list — the same tables come back serial,
parallel, cold or disk-warmed.  The fig10-shaped smoke grid is run
both ways and compared exactly.
"""

from __future__ import annotations

import pytest

from repro.api import Deployment
from repro.experiments.capacity_runner import (
    CapacityCellSpec,
    plan_waves,
    run_capacity_cells,
    serving_config_for,
    token_budget_for,
)
from repro.experiments.common import Scale
from repro.hardware.catalog import A100_80G
from repro.metrics.capacity import CapacityResult
from repro.metrics.slo import SLOSpec
from repro.metrics.summary import RunMetrics
from repro.models.catalog import TINY_1B
from repro.runtime import (
    CACHE_DIR_ENV,
    JOBS_ENV,
    MAX_RETRIES_ENV,
    RESUME_ENV,
    RUN_DIR_ENV,
    TASK_TIMEOUT_ENV,
    ChaosConfig,
    cache_dir_from_env,
    chaos_from_env,
    clear_process_models,
    jobs_from_env,
    map_tasks,
    max_retries_from_env,
    resume_from_env,
    run_dir_from_env,
    sweep_env,
    task_timeout_from_env,
)
from repro.telemetry import (
    capacity_probe_rows,
    sweep_cell_rows,
    sweep_failure_rows,
    sweep_run_rows,
)
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4

TINY = Scale(num_requests=12, capacity_rel_tol=0.5, capacity_max_probes=3)


def square(x: int) -> int:  # module-level: picklable for worker processes
    return x * x


def fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("two is right out")
    return x


@pytest.fixture(autouse=True)
def _fresh_process_models():
    clear_process_models()
    yield
    clear_process_models()


@pytest.fixture(scope="module")
def serial_outcomes():
    """The smoke grid run once serially — the golden reference."""
    clear_process_models()
    outcomes = run_capacity_cells(tiny_grid_specs(), jobs=1)
    clear_process_models()
    return outcomes


def tiny_grid_specs(scale: Scale = TINY) -> list[CapacityCellSpec]:
    deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    return [
        CapacityCellSpec(
            deployment=deployment,
            scheduler=scheduler,
            dataset=SHAREGPT4,
            scale=scale,
            strict=strict,
            qps_hint=1.0,
        )
        for strict in (True, False)
        for scheduler in (SchedulerKind.VLLM, SchedulerKind.SARATHI)
    ]


class TestMapTasks:
    def test_serial_preserves_order(self):
        report = map_tasks(square, [3, 1, 2], jobs=1)
        assert report.values == [9, 1, 4]
        assert [o.index for o in report.outcomes] == [0, 1, 2]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        serial = map_tasks(square, items, jobs=1)
        parallel = map_tasks(square, items, jobs=2)
        assert parallel.values == serial.values
        assert parallel.jobs == 2

    def test_worker_rows_shape(self):
        report = map_tasks(square, [1, 2], jobs=1)
        rows = report.worker_rows()
        assert [r["task_index"] for r in rows] == [0, 1]
        assert all(r["jobs"] == 1 for r in rows)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            map_tasks(square, [1], jobs=0)


class TestEnvKnobs:
    def test_jobs_default_and_parse(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert jobs_from_env() == 1
        monkeypatch.setenv(JOBS_ENV, "4")
        assert jobs_from_env() == 4

    @pytest.mark.parametrize("value", ["zero", "0", "-2"])
    def test_jobs_rejects_garbage(self, monkeypatch, value):
        monkeypatch.setenv(JOBS_ENV, value)
        with pytest.raises(ValueError, match=JOBS_ENV):
            jobs_from_env()

    def test_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert cache_dir_from_env() is None
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert cache_dir_from_env() == tmp_path

    def test_sweep_env_sets_and_restores(self, monkeypatch, tmp_path):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, "original")
        with sweep_env(jobs=3, cache_dir=tmp_path):
            assert jobs_from_env() == 3
            assert cache_dir_from_env() == tmp_path
        assert jobs_from_env() == 1
        assert cache_dir_from_env() is not None
        assert cache_dir_from_env().name == "original"

    def test_run_dir_and_resume(self, monkeypatch, tmp_path):
        monkeypatch.delenv(RUN_DIR_ENV, raising=False)
        monkeypatch.delenv(RESUME_ENV, raising=False)
        assert run_dir_from_env() is None
        assert resume_from_env() is False
        monkeypatch.setenv(RUN_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(RESUME_ENV, "1")
        assert run_dir_from_env() == tmp_path
        assert resume_from_env() is True
        monkeypatch.setenv(RESUME_ENV, "0")
        assert resume_from_env() is False

    def test_task_timeout_and_retries(self, monkeypatch):
        monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
        assert task_timeout_from_env() is None
        assert max_retries_from_env() == 2
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        assert task_timeout_from_env() == 2.5
        assert max_retries_from_env() == 5
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "-1")
        with pytest.raises(ValueError, match=TASK_TIMEOUT_ENV):
            task_timeout_from_env()
        monkeypatch.setenv(MAX_RETRIES_ENV, "-1")
        with pytest.raises(ValueError, match=MAX_RETRIES_ENV):
            max_retries_from_env()

    def test_sweep_env_pins_fault_knobs(self, monkeypatch, tmp_path):
        for env in (RUN_DIR_ENV, RESUME_ENV, TASK_TIMEOUT_ENV, MAX_RETRIES_ENV):
            monkeypatch.delenv(env, raising=False)
        chaos = ChaosConfig(seed=7, kill_rate=0.25, hang_rate=0.1)
        with sweep_env(
            run_dir=tmp_path, resume=True, task_timeout=3.0,
            max_retries=1, chaos=chaos,
        ):
            assert run_dir_from_env() == tmp_path
            assert resume_from_env() is True
            assert task_timeout_from_env() == 3.0
            assert max_retries_from_env() == 1
            # The chaos plan round-trips through its env spec exactly.
            assert chaos_from_env() == chaos
        assert run_dir_from_env() is None
        assert resume_from_env() is False


class TestWavePlanning:
    def test_one_anchor_per_group(self):
        specs = tiny_grid_specs()
        anchors, followers = plan_waves(specs)
        # All four cells share (deployment, dataset) → one anchor.
        assert [index for index, _ in anchors] == [0]
        assert followers == [1, 2, 3]

    def test_distinct_groups_get_distinct_anchors(self):
        specs = tiny_grid_specs()
        specs = [
            spec if i < 2 else CapacityCellSpec(
                deployment=spec.deployment,
                scheduler=spec.scheduler,
                dataset=spec.dataset,
                scale=spec.scale,
                strict=spec.strict,
                group=("other",),
            )
            for i, spec in enumerate(specs)
        ]
        anchors, followers = plan_waves(specs)
        assert [index for index, _ in anchors] == [0, 2]
        assert followers == [1, 3]

    def test_spec_validation(self):
        deployment = Deployment(model=TINY_1B, gpu=A100_80G)
        with pytest.raises(ValueError, match="strict"):
            CapacityCellSpec(
                deployment=deployment,
                scheduler=SchedulerKind.VLLM,
                dataset=SHAREGPT4,
                scale=TINY,
            )
        with pytest.raises(ValueError, match="qps_hint"):
            CapacityCellSpec(
                deployment=deployment,
                scheduler=SchedulerKind.VLLM,
                dataset=SHAREGPT4,
                scale=TINY,
                strict=True,
                qps_hint=0.0,
            )


class TestGridBitIdentity:
    """The golden test: the smoke grid, serial vs parallel vs warm."""

    def test_parallel_and_warm_runs_identical(self, tmp_path, serial_outcomes):
        specs = tiny_grid_specs()
        serial = serial_outcomes

        parallel = run_capacity_cells(specs, jobs=2)
        assert [o.cell for o in parallel] == [o.cell for o in serial]

        # Cold disk-cached run, then a fully-warm rerun: same cells.
        clear_process_models()
        cold = run_capacity_cells(specs, jobs=1, cache_dir=tmp_path)
        assert [o.cell for o in cold] == [o.cell for o in serial]
        clear_process_models()
        warm = run_capacity_cells(specs, jobs=1, cache_dir=tmp_path)
        assert [o.cell for o in warm] == [o.cell for o in serial]
        assert warm[0].cache_source == "disk"
        assert warm[0].loaded_entries > 0
        # The warm run recomputed nothing, so it persisted nothing.
        assert all(o.merged_entries == 0 for o in warm)

    def test_warm_start_hints_flow_from_anchor(self, serial_outcomes):
        specs = tiny_grid_specs()
        outcomes = serial_outcomes
        anchor, followers = outcomes[0], outcomes[1:]
        assert not anchor.hinted
        assert anchor.qps_hint == specs[0].qps_hint
        if anchor.cell.capacity_qps > 0:
            for follower in followers:
                assert follower.hinted
                assert follower.qps_hint == anchor.cell.capacity_qps


class TestServingConfigValidation:
    def test_explicit_zero_budget_raises(self):
        deployment = Deployment(model=TINY_1B, gpu=A100_80G)
        with pytest.raises(ValueError, match="token_budget"):
            serving_config_for(
                deployment, SchedulerKind.SARATHI, strict=True, token_budget=0
            )

    def test_none_budget_uses_regime_default(self):
        deployment = Deployment(model=TINY_1B, gpu=A100_80G)
        config = serving_config_for(deployment, SchedulerKind.SARATHI, strict=True)
        assert config.token_budget == token_budget_for(deployment, strict=True)

    def test_explicit_budget_respected(self):
        deployment = Deployment(model=TINY_1B, gpu=A100_80G)
        config = serving_config_for(
            deployment, SchedulerKind.SARATHI, strict=True, token_budget=96
        )
        assert config.token_budget == 96


def fake_metrics(p99_tbt: float) -> RunMetrics:
    return RunMetrics(
        num_requests=4,
        makespan=10.0,
        median_ttft=0.5,
        p90_ttft=0.8,
        p99_ttft=0.9,
        median_tbt=0.05,
        p99_tbt=p99_tbt,
        max_tbt=p99_tbt * 1.5,
        median_scheduling_delay=0.01,
        p99_scheduling_delay=0.05,
        output_tokens=64,
        total_tokens=256,
        num_preemptions=1,
        throughput_rps=0.4,
        throughput_tokens_per_s=25.0,
        mean_bubble_fraction=0.0,
    )


class TestSweepTelemetry:
    def test_probe_rows_phases_and_labels(self):
        result = CapacityResult(
            capacity_qps=1.0,
            slo=SLOSpec(name="strict", p99_tbt=0.1),
            probes=[
                (0.5, fake_metrics(0.05), True),
                (1.0, fake_metrics(0.08), True),
                (2.0, fake_metrics(0.30), False),
            ],
            qps_hint=2.0,
            num_bracket_probes=2,
            num_bisect_probes=1,
        )
        rows = capacity_probe_rows(result, deployment="tiny", scheduler="vllm")
        assert len(rows) == 3
        assert [r["phase"] for r in rows] == ["bracket", "bracket", "bisect"]
        assert [r["probe_index"] for r in rows] == [0, 1, 2]
        assert all(r["deployment"] == "tiny" for r in rows)
        assert rows[2]["meets_slo"] is False
        assert rows[0]["qps_hint"] == 2.0
        assert rows[0]["p99_tbt"] == 0.05

    def test_cell_rows_cover_the_grid(self, serial_outcomes):
        outcomes = serial_outcomes
        rows = sweep_cell_rows(outcomes)
        assert len(rows) == len(outcomes)
        assert rows[0]["cache_source"] == "cold"
        assert {row["scheduler"] for row in rows} == {"vllm", "sarathi"}
        assert all("cell_seconds" in row and "worker_pid" in row for row in rows)
        # Probe accounting is consistent with the cell's probe count.
        for row in rows:
            assert row["num_bracket_probes"] + row["num_bisect_probes"] == row[
                "num_probes"
            ]
        probe_rows = [r for o in outcomes for r in o.probe_rows]
        assert sum(row["num_probes"] for row in rows) == len(probe_rows)

    def test_run_rows_count_ledger_hits(self, tmp_path):
        """The resume acceptance check: ledger hits show up in telemetry."""
        first = map_tasks(square, list(range(4)), jobs=1, run_dir=tmp_path)
        resumed = map_tasks(
            square, list(range(4)), jobs=1, run_dir=tmp_path, resume=True
        )
        rows = sweep_run_rows([first, resumed], figure="smoke")
        assert [row["wave"] for row in rows] == [0, 1]
        assert all(row["figure"] == "smoke" for row in rows)
        assert rows[0]["num_resumed"] == 0
        assert rows[1]["num_resumed"] == 4  # every cell was a ledger hit
        assert rows[1]["num_completed"] == 4
        assert rows[0]["fingerprint"] == rows[1]["fingerprint"]
        assert not rows[1]["interrupted"]

    def test_failure_rows_flatten_quarantines(self):
        report = map_tasks(fail_on_two, [1, 2, 3], jobs=1, strict=False)
        rows = sweep_failure_rows([report], figure="smoke")
        assert len(rows) == 1
        assert rows[0]["task_index"] == 1
        assert rows[0]["kind"] == "exception"
        assert rows[0]["wave"] == 0
        assert rows[0]["figure"] == "smoke"
