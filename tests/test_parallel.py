"""Tests for parallelism configuration and communication models."""

from __future__ import annotations

import pytest

from repro.hardware.catalog import ETHERNET_100G, NVLINK
from repro.models.catalog import FALCON_180B, MISTRAL_7B, YI_34B
from repro.parallel.comm import allreduce_bytes_per_layer, pp_send_time, tp_comm_time
from repro.parallel.config import ParallelConfig


class TestParallelConfig:
    def test_defaults_single_gpu(self):
        p = ParallelConfig()
        assert p.world_size == 1
        assert p.label == "TP1-PP1"

    def test_world_size(self):
        p = ParallelConfig(tensor_parallel=4, pipeline_parallel=2)
        assert p.world_size == 8
        assert p.label == "TP4-PP2"

    @pytest.mark.parametrize("tp,pp", [(0, 1), (1, 0), (-1, 1)])
    def test_invalid_degrees_rejected(self, tp, pp):
        with pytest.raises(ValueError):
            ParallelConfig(tensor_parallel=tp, pipeline_parallel=pp)

    def test_layers_per_stage_even_split(self):
        p = ParallelConfig(pipeline_parallel=2)
        assert p.layers_per_stage(MISTRAL_7B) == 16

    def test_layers_per_stage_ceil_split(self):
        p = ParallelConfig(pipeline_parallel=3)
        # 32 layers over 3 stages -> ceil = 11.
        assert p.layers_per_stage(MISTRAL_7B) == 11

    def test_stage_weight_bytes_shrink_with_tp(self):
        tp1 = ParallelConfig().stage_weight_bytes_per_gpu(YI_34B)
        tp2 = ParallelConfig(tensor_parallel=2).stage_weight_bytes_per_gpu(YI_34B)
        assert tp2 == pytest.approx(tp1 / 2, rel=0.01)

    def test_stage_weight_bytes_shrink_with_pp(self):
        pp1 = ParallelConfig().stage_weight_bytes_per_gpu(YI_34B)
        pp2 = ParallelConfig(pipeline_parallel=2).stage_weight_bytes_per_gpu(YI_34B)
        assert pp2 < pp1

    def test_kv_bytes_per_token_per_gpu(self):
        p = ParallelConfig(tensor_parallel=2, pipeline_parallel=2)
        expected = (
            p.layers_per_stage(YI_34B) * YI_34B.kv_bytes_per_token_per_layer / 2
        )
        assert p.kv_bytes_per_token_per_gpu(YI_34B) == pytest.approx(expected)


class TestTPComm:
    def test_no_comm_for_single_gpu(self):
        p = ParallelConfig()
        assert tp_comm_time(YI_34B, p, 100, 60) == 0.0

    def test_no_comm_for_empty_batch(self):
        p = ParallelConfig(tensor_parallel=2)
        assert tp_comm_time(YI_34B, p, 0, 60) == 0.0

    def test_comm_scales_with_tokens(self):
        p = ParallelConfig(tensor_parallel=4)
        small = tp_comm_time(YI_34B, p, 10, 60)
        large = tp_comm_time(YI_34B, p, 10000, 60)
        assert large > small

    def test_allreduce_bytes_per_layer(self):
        assert allreduce_bytes_per_layer(YI_34B, 10) == 10 * 7168 * 2

    def test_falcon_fused_block_halves_reduces(self):
        p = ParallelConfig(tensor_parallel=4)
        falcon = tp_comm_time(FALCON_180B, p, 128, 40)
        # A hypothetical unfused version of the same geometry: just
        # compare against doubling the fused result.
        assert falcon > 0
        per_reduce = p.tp_link.allreduce_time(
            allreduce_bytes_per_layer(FALCON_180B, 128), 4
        )
        assert falcon == pytest.approx(40 * per_reduce)

    def test_two_reduces_per_layer_default(self):
        p = ParallelConfig(tensor_parallel=2)
        per_reduce = p.tp_link.allreduce_time(allreduce_bytes_per_layer(YI_34B, 64), 2)
        assert tp_comm_time(YI_34B, p, 64, 10) == pytest.approx(20 * per_reduce)

    def test_ethernet_tp_far_slower(self):
        fast = ParallelConfig(tensor_parallel=8, tp_link=NVLINK)
        slow = ParallelConfig(tensor_parallel=8, tp_link=ETHERNET_100G)
        assert tp_comm_time(FALCON_180B, slow, 32, 80) > 5 * tp_comm_time(
            FALCON_180B, fast, 32, 80
        )


class TestPPSend:
    def test_no_send_without_pipeline(self):
        p = ParallelConfig(tensor_parallel=4)
        assert pp_send_time(YI_34B, p, 100) == 0.0

    def test_send_scales_with_tokens(self):
        p = ParallelConfig(pipeline_parallel=2, pp_link=ETHERNET_100G)
        assert pp_send_time(YI_34B, p, 2048) > pp_send_time(YI_34B, p, 16)

    def test_send_matches_link_transfer(self):
        p = ParallelConfig(pipeline_parallel=2, pp_link=ETHERNET_100G)
        expected = ETHERNET_100G.transfer_time(128 * YI_34B.hidden_size * 2)
        assert pp_send_time(YI_34B, p, 128) == pytest.approx(expected)
