"""Tests for the figure-reproduction registry and CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.common import Scale
from repro.experiments.registry import REGISTRY, list_figures, reproduce_figure

TINY = Scale(num_requests=20, capacity_rel_tol=0.5, capacity_max_probes=4)

CHEAP_FIGURES = [e.figure_id for e in REGISTRY.values() if not e.expensive]


class TestRegistry:
    def test_every_paper_figure_present(self):
        ids = set(REGISTRY)
        for expected in (
            "fig01a", "fig01b", "fig02", "fig03", "fig04", "fig05", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13a",
            "fig13b", "fig14", "table4",
        ):
            assert expected in ids

    def test_list_figures_ordered(self):
        entries = list_figures()
        assert entries[0].figure_id == "fig01a"
        assert len(entries) == len(REGISTRY)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError, match="fig14"):
            reproduce_figure("fig99")

    @pytest.mark.parametrize("figure_id", ["fig03", "fig05", "fig09", "fig13a", "fig14"])
    def test_cheap_figures_render(self, figure_id):
        text = reproduce_figure(figure_id, TINY)
        assert text.startswith(figure_id)
        assert "\n" in text
        # Table body has at least a header, a rule and one row.
        assert len(text.splitlines()) >= 5

    def test_case_insensitive_lookup(self):
        assert reproduce_figure("FIG03", TINY).startswith("fig03")


class TestReproduceCLI:
    def test_list_mode(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out
        assert "slow" in out  # capacity figures are flagged

    def test_single_figure(self, capsys):
        assert main(["reproduce", "fig03", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "prefill tok/s" in out
