"""Tests for the memoized execution model (``repro.perf.cache``).

The load-bearing property is *bit-identity*: every quantity the cached
model returns must be exactly — not approximately — the float the
uncached model computes, across randomized batch compositions, stage
flags, repeated queries and evictions.  Everything built on top
(capacity numbers, SLO verdicts, telemetry) inherits its correctness
from this.
"""

from __future__ import annotations

import random

import pytest

from repro.api import (
    Deployment,
    ServingConfig,
    build_engine,
    execution_model_for,
    simulate,
)
from repro.hardware.catalog import A100_80G, ETHERNET_100G
from repro.models.catalog import TINY_1B, YI_34B
from repro.parallel.config import ParallelConfig
from repro.perf.cache import CachedExecutionModel, CacheStats, batch_signature
from repro.perf.iteration import ExecutionModel
from repro.telemetry.recorder import iteration_rows, request_rows
from repro.types import SchedulerKind, TokenWork
from repro.workload.datasets import SHAREGPT4, generate_requests


def random_work(rng: random.Random) -> TokenWork:
    """A random decode step or (possibly mid-prompt) prefill chunk."""
    if rng.random() < 0.5:
        return TokenWork.decode(rng.randrange(1, 8192))
    chunk = rng.randrange(1, 1024)
    return TokenWork.prefill_chunk(
        chunk,
        past_len=rng.choice([0, rng.randrange(0, 4096)]),
        is_last=rng.random() < 0.5,
    )


def random_batch(rng: random.Random) -> list[TokenWork]:
    return [random_work(rng) for _ in range(rng.randrange(1, 24))]


DEPLOYMENTS = [
    Deployment(model=TINY_1B, gpu=A100_80G),
    Deployment(
        model=YI_34B,
        gpu=A100_80G,
        parallel=ParallelConfig(
            tensor_parallel=2, pipeline_parallel=2, pp_link=ETHERNET_100G
        ),
    ),
]


class TestCacheEquivalence:
    @pytest.mark.parametrize("deployment", DEPLOYMENTS, ids=["tiny", "yi-tp2-pp2"])
    def test_randomized_batches_bit_identical(self, deployment):
        rng = random.Random(1234)
        plain = deployment.execution_model()
        cached = CachedExecutionModel(deployment.execution_model())
        for _ in range(300):
            works = random_batch(rng)
            first = rng.random() < 0.5
            last = rng.random() < 0.5
            expected = plain.stage_iteration_time(works, first, last)
            got = cached.stage_iteration_time(works, first, last)
            # Exact equality on the full breakdown, not approx.
            assert got == expected
            assert got.total == expected.total
            # And again, now served from the batch tier.
            assert cached.stage_iteration_time(works, first, last) == expected
            assert cached.pipeline_send_time(works) == plain.pipeline_send_time(works)

    def test_derived_helpers_route_through_cache(self):
        deployment = DEPLOYMENTS[0]
        plain = deployment.execution_model()
        cached = CachedExecutionModel(deployment.execution_model())
        assert cached.decode_iteration_time(8, 512) == plain.decode_iteration_time(8, 512)
        assert cached.full_prefill_time(777) == plain.full_prefill_time(777)
        assert cached.chunked_prefill_time(1000, 256) == plain.chunked_prefill_time(
            1000, 256
        )
        assert cached.cache_stats.misses > 0

    def test_empty_batch(self):
        cached = CachedExecutionModel(DEPLOYMENTS[0].execution_model())
        assert cached.stage_iteration_time([]).total == 0.0

    def test_eviction_preserves_results(self):
        deployment = DEPLOYMENTS[0]
        plain = deployment.execution_model()
        cached = CachedExecutionModel(deployment.execution_model(), max_entries=8)
        rng = random.Random(7)
        batches = [random_batch(rng) for _ in range(40)]
        for works in batches + batches:  # second pass re-misses evicted keys
            assert cached.stage_iteration_time(works) == plain.stage_iteration_time(works)
        stats = cached.cache_stats
        assert stats.evictions > 0
        assert stats.size <= 8


class TestCacheCounters:
    def test_hits_misses_and_size(self):
        cached = CachedExecutionModel(DEPLOYMENTS[0].execution_model())
        works = [TokenWork.decode(100), TokenWork.decode(200)]
        cached.stage_iteration_time(works)
        cached.stage_iteration_time(works)
        cached.stage_iteration_time(works, is_last_stage=False)  # distinct key
        stats = cached.cache_stats
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.size == 2
        assert stats.hit_rate == pytest.approx(1 / 3)
        # Component tier: 2 unique decode works, reused by later calls.
        assert stats.work_misses == 2
        assert stats.work_hits == 2

    def test_clear_resets(self):
        cached = CachedExecutionModel(DEPLOYMENTS[0].execution_model())
        cached.stage_iteration_time([TokenWork.decode(50)])
        cached.clear()
        stats = cached.cache_stats
        assert stats == CacheStats(max_entries=cached.max_entries)

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            CachedExecutionModel(DEPLOYMENTS[0].execution_model(), max_entries=0)

    def test_stats_row_shape(self):
        row = CacheStats(hits=3, misses=1, size=1).as_row()
        assert row["cache_hits"] == 3
        assert row["cache_hit_rate"] == pytest.approx(0.75)
        assert row["cache_component_evictions"] == 0

    def test_component_evictions_counted_separately(self):
        # One batch of many unique decode works: the batch tier stores a
        # single entry (no batch evictions possible), while the work
        # tier overflows max_entries and must evict.
        cached = CachedExecutionModel(DEPLOYMENTS[0].execution_model(), max_entries=8)
        works = [TokenWork.decode(100 + i) for i in range(32)]
        cached.stage_iteration_time(works)
        stats = cached.cache_stats
        assert stats.evictions == 0  # batch tier untouched by the overflow
        assert stats.component_evictions > 0
        assert stats.size == 1

    def test_batch_evictions_do_not_count_as_component(self):
        # Many single-work batches of the *same* work: only the batch
        # tier grows past max_entries (the component tiers stay tiny).
        cached = CachedExecutionModel(DEPLOYMENTS[0].execution_model(), max_entries=4)
        for i in range(12):
            cached.stage_iteration_time([TokenWork.decode(64)], is_last_stage=i % 2 == 0)
            cached.stage_iteration_time([TokenWork.decode(64 + i % 8)])
        stats = cached.cache_stats
        assert stats.evictions > 0
        assert stats.size <= 4


class TestBatchSignature:
    def test_distinguishes_stage_flags_and_order(self):
        works = [TokenWork.decode(10), TokenWork.prefill_chunk(5)]
        base = batch_signature(works)
        assert batch_signature(works, is_last_stage=False) != base
        assert batch_signature(works, is_first_stage=False) != base
        assert batch_signature(list(reversed(works))) != base

    def test_emits_token_is_part_of_the_key(self):
        last = [TokenWork.prefill_chunk(64, past_len=64, is_last=True)]
        mid = [TokenWork.prefill_chunk(64, past_len=64, is_last=False)]
        assert batch_signature(last) != batch_signature(mid)


def _comparable_iteration_rows(result):
    """Iteration rows minus ``batch_id`` (a process-global counter that
    can never match across two separate runs)."""
    return [
        {k: v for k, v in row.items() if k != "batch_id"}
        for row in iteration_rows(result)
    ]


class TestEndToEndEquivalence:
    @pytest.mark.parametrize(
        "kind",
        [SchedulerKind.SARATHI, SchedulerKind.VLLM, SchedulerKind.SARATHI_DYNAMIC],
    )
    def test_simulation_outputs_bit_identical(self, tiny_deployment, kind):
        trace = generate_requests(SHAREGPT4, num_requests=24, qps=2.0, seed=5)
        base = ServingConfig(scheduler=kind, token_budget=256)
        on, _ = simulate(tiny_deployment, base, trace)
        off, _ = simulate(
            tiny_deployment,
            ServingConfig(scheduler=kind, token_budget=256, perf_cache=False),
            trace,
        )
        assert _comparable_iteration_rows(on) == _comparable_iteration_rows(off)
        assert request_rows(on) == request_rows(off)
        assert on.makespan == off.makespan
        assert on.cache_stats is not None
        assert off.cache_stats is None

    def test_pipeline_simulation_bit_identical(self, tiny_pp_deployment):
        trace = generate_requests(SHAREGPT4, num_requests=16, qps=1.0, seed=9)
        on, _ = simulate(tiny_pp_deployment, ServingConfig(token_budget=256), trace)
        off, _ = simulate(
            tiny_pp_deployment,
            ServingConfig(token_budget=256, perf_cache=False),
            trace,
        )
        assert _comparable_iteration_rows(on) == _comparable_iteration_rows(off)
        assert request_rows(on) == request_rows(off)


class TestThreading:
    def test_build_engine_uses_cache_by_default(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        assert isinstance(engine.exec_model, CachedExecutionModel)

    def test_build_engine_can_opt_out(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig(perf_cache=False))
        assert not isinstance(engine.exec_model, CachedExecutionModel)

    def test_execution_model_for_honours_max_entries(self, tiny_deployment):
        model = execution_model_for(
            tiny_deployment, ServingConfig(perf_cache_max_entries=17)
        )
        assert isinstance(model, CachedExecutionModel)
        assert model.max_entries == 17

    def test_shared_model_accumulates_across_runs(self, tiny_deployment):
        config = ServingConfig(token_budget=256)
        model = execution_model_for(tiny_deployment, config)
        trace = generate_requests(SHAREGPT4, num_requests=8, qps=1.0, seed=2)
        simulate(tiny_deployment, config, trace, exec_model=model)
        after_first = model.cache_stats
        result, _ = simulate(tiny_deployment, config, trace, exec_model=model)
        # Replaying the identical trace hits the warm cache only.
        assert model.cache_stats.misses == after_first.misses
        assert model.cache_stats.hits > after_first.hits
        assert result.cache_stats == model.cache_stats

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("", True),
            ("default", True),
            ("1", True),
            ("true", True),
            ("on", True),
            ("0", False),
            ("no", False),
            ("OFF", False),
        ],
    )
    def test_env_knob(self, monkeypatch, value, expected):
        from repro.experiments.common import perf_cache_from_env

        monkeypatch.setenv("REPRO_PERF_CACHE", value)
        assert perf_cache_from_env() is expected

    def test_env_knob_rejects_garbage(self, monkeypatch):
        from repro.experiments.common import perf_cache_from_env

        monkeypatch.setenv("REPRO_PERF_CACHE", "maybe")
        with pytest.raises(ValueError, match="REPRO_PERF_CACHE"):
            perf_cache_from_env()

    def test_dynamic_scheduler_shares_engine_model(self, tiny_deployment):
        engine = build_engine(
            tiny_deployment, ServingConfig(scheduler=SchedulerKind.SARATHI_DYNAMIC)
        )
        works = [TokenWork.decode(128)]
        engine.scheduler.iteration_cost(works)
        assert engine.exec_model.cache_stats.misses > 0
