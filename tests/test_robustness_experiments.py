"""Shape tests for the burstiness / preemption-policy experiments."""

from __future__ import annotations

from repro.experiments.common import Scale
from repro.experiments.robustness import (
    run_burstiness_sweep,
    run_preemption_policy_comparison,
)

TINY = Scale(num_requests=28, capacity_rel_tol=0.5, capacity_max_probes=5)


class TestBurstinessSweep:
    def test_grid_complete(self):
        points = run_burstiness_sweep(TINY, cvs=(1.0, 3.0))
        assert len(points) == 4
        assert {p.scheduler for p in points} == {"vllm", "sarathi"}

    def test_sarathi_bound_burst_independent(self):
        points = run_burstiness_sweep(TINY, cvs=(0.5, 4.0))
        sarathi = [p for p in points if p.scheduler == "sarathi"]
        assert max(p.max_tbt for p in sarathi) < 2 * min(p.max_tbt for p in sarathi)

    def test_vllm_tail_grows_with_bursts(self):
        points = run_burstiness_sweep(TINY, cvs=(0.5, 4.0))
        vllm = {p.cv: p for p in points if p.scheduler == "vllm"}
        # At smoke scale the P99 is the more stable burst signal; the
        # bench asserts the max-TBT growth at full scale.
        assert vllm[4.0].p99_tbt > 2 * vllm[0.5].p99_tbt
        assert vllm[4.0].max_tbt > 1.2 * vllm[0.5].max_tbt


class TestPreemptionPolicyComparison:
    def test_both_policies_reported(self):
        points = run_preemption_policy_comparison(TINY, kv_capacity_tokens=12288)
        assert [p.policy for p in points] == ["recompute", "swap"]

    def test_swap_redoes_less_prefill(self):
        points = {
            p.policy: p
            for p in run_preemption_policy_comparison(TINY, kv_capacity_tokens=12288)
        }
        assert points["recompute"].num_preemptions > 0
        assert points["swap"].num_swap_outs > 0
        assert (
            points["swap"].redone_prefill_tokens
            <= points["recompute"].redone_prefill_tokens
        )
