"""Regression tests for TBT measurement windowing in ``summarize``.

A finite trace's drain phase can flatter prefill-prioritizing
schedulers (the backlog degenerates into one big prefill burst followed
by stall-free decodes).  ``summarize`` therefore takes TBT samples only
from tokens emitted while load was still arriving.  These tests pin
that behaviour.
"""

from __future__ import annotations

import pytest

from repro.engine.replica import SimulationResult
from repro.metrics.summary import summarize
from repro.types import Request


def _request_with_tokens(arrival: float, times: list[float], prompt=10) -> Request:
    r = Request(prompt_len=prompt, output_len=len(times), arrival_time=arrival)
    r.first_scheduled_at = arrival
    r.record_prefill(prompt, now=times[0])
    for t in times[1:]:
        r.record_decode(now=t)
    return r


def _result(requests: list[Request]) -> SimulationResult:
    return SimulationResult(
        requests=requests,
        records=[],
        makespan=max(r.finished_at for r in requests),
        num_stages=1,
    )


class TestWindowing:
    def test_drain_phase_gaps_excluded(self):
        # Load window ends at t=10 (last arrival).  One in-window stall
        # (t=1 -> t=5) and one huge post-window gap (t=9 -> t=100).
        a = _request_with_tokens(0.0, [1.0, 5.0, 9.0, 100.0])
        b = Request(prompt_len=5, output_len=1, arrival_time=10.0)
        b.first_scheduled_at = 10.0
        b.record_prefill(5, now=11.0)
        metrics = summarize(_result([a, b]))
        # max in-window TBT is 4.0 (1->5); the 91-second drain gap is out.
        assert metrics.max_tbt == pytest.approx(4.0)

    def test_closed_loop_keeps_all_samples(self):
        # Every request arrives at t=0: no window, all samples count.
        a = _request_with_tokens(0.0, [1.0, 5.0, 9.0, 100.0])
        metrics = summarize(_result([a]))
        assert metrics.max_tbt == pytest.approx(91.0)

    def test_empty_window_falls_back_to_all(self):
        # Tokens all emitted after the last arrival: fallback keeps them.
        a = _request_with_tokens(0.0, [20.0, 21.0, 25.0])
        b = _request_with_tokens(10.0, [30.0, 32.0])
        metrics = summarize(_result([a, b]))
        assert metrics.max_tbt == pytest.approx(4.0)

    def test_single_token_outputs_yield_zero_tbt(self):
        a = _request_with_tokens(0.0, [1.0])
        metrics = summarize(_result([a]))
        assert metrics.p99_tbt == 0.0
        assert metrics.max_tbt == 0.0

    def test_no_finished_requests_rejected(self):
        r = Request(prompt_len=10, output_len=2, arrival_time=0.0)
        with pytest.raises(ValueError):
            summarize(
                SimulationResult(requests=[r], records=[], makespan=0.0, num_stages=1)
            )

    def test_ttft_not_windowed(self):
        # TTFT is once-per-request and always counted, even post-window.
        a = _request_with_tokens(0.0, [50.0, 51.0])
        b = _request_with_tokens(1.0, [2.0, 3.0])
        metrics = summarize(_result([a, b]))
        assert metrics.p99_ttft == pytest.approx(50.0, rel=0.02)
