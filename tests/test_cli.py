"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.model == "mistral-7b"
        assert args.scheduler is None  # resolved later: REPRO_SCHEDULER or sarathi
        assert args.qps == 1.0

    def test_scheduler_resolution(self, monkeypatch):
        from repro.cli import _scheduler_from

        parse = build_parser().parse_args
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert _scheduler_from(parse(["simulate"])) == "sarathi"
        # Any registry name is accepted, not just the enum kinds.
        assert (
            _scheduler_from(parse(["simulate", "--scheduler", "srpt_oracle"]))
            == "srpt_oracle"
        )
        monkeypatch.setenv("REPRO_SCHEDULER", "vllm")
        assert _scheduler_from(parse(["simulate"])) == "vllm"

    def test_unknown_scheduler_rejected_with_suggestion(self):
        from repro.cli import _scheduler_from

        args = build_parser().parse_args(["simulate", "--scheduler", "sarathi_dyn"])
        with pytest.raises(ValueError, match="did you mean"):
            _scheduler_from(args)

    def test_perf_cache_flag_tristate(self):
        parse = build_parser().parse_args
        assert parse(["simulate"]).perf_cache is None  # defer to env/default
        assert parse(["simulate", "--perf-cache"]).perf_cache is True
        assert parse(["simulate", "--no-perf-cache"]).perf_cache is False
        assert parse(["capacity", "--no-perf-cache"]).perf_cache is False


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Mistral-7B" in out
        assert "sarathi" in out

    def test_schedulers_listing(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "srpt_oracle" in out
        assert "object+vectorized" in out  # engine-support column
        assert "reservation" in out        # memory-family column

    def test_budget(self, capsys):
        assert main(["budget", "--model", "tiny-1b"]) == 0
        out = capsys.readouterr().out
        assert "token budget" in out
        assert "strict" in out and "relaxed" in out

    def test_budget_profile_flag(self, capsys):
        assert main(["budget", "--model", "tiny-1b", "--profile"]) == 0
        assert "budget profile" in capsys.readouterr().out

    def test_simulate_reports_cache_stats(self, capsys):
        base = ["simulate", "--model", "tiny-1b", "--qps", "4", "--requests", "8"]
        assert main(base) == 0
        assert "perf cache" in capsys.readouterr().out
        assert main(base + ["--no-perf-cache"]) == 0
        assert "perf cache" not in capsys.readouterr().out

    def test_simulate_small_run(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "tiny-1b",
                "--qps", "4",
                "--requests", "16",
                "--scheduler", "sarathi",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P99 TBT" in out
        assert "throughput" in out

    def test_simulate_with_parallelism(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "tiny-1b",
                "--pp", "2",
                "--cross-node-pp",
                "--qps", "4",
                "--requests", "12",
            ]
        )
        assert code == 0
        assert "TP1-PP2" in capsys.readouterr().out

    def test_capacity_smoke(self, capsys):
        code = main(
            [
                "capacity",
                "--model", "tiny-1b",
                "--requests", "16",
                "--probes", "4",
                "--qps-hint", "4",
            ]
        )
        assert code == 0
        assert "capacity:" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError):
            main(["budget", "--model", "gpt-99"])


class TestCompareCommand:
    def test_compare_prints_markdown(self, capsys):
        code = main(
            [
                "compare",
                "--model", "tiny-1b",
                "--qps", "4",
                "--requests", "12",
                "--token-budget", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "| scheduler |" in out
        assert "sarathi" in out and "faster_transformer" in out
