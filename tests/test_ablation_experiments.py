"""Smoke/shape tests for the design-choice ablation experiments."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_allocator_comparison,
    run_budget_sweep,
    run_dynamic_budget_comparison,
    run_tile_quantization,
)
from repro.experiments.common import Scale
from repro.experiments.disagg_comparison import run_disagg_comparison

TINY = Scale(num_requests=24, capacity_rel_tol=0.5, capacity_max_probes=5)


class TestBudgetSweep:
    def test_tbt_monotone_ttft_antitone(self):
        points = run_budget_sweep(TINY, budgets=(128, 512, 2048))
        tbts = [p.p99_tbt for p in points]
        assert tbts == sorted(tbts)
        assert points[-1].median_ttft <= points[0].median_ttft * 1.2

    def test_budget_column_matches_request(self):
        points = run_budget_sweep(TINY, budgets=(256, 1024))
        assert [p.token_budget for p in points] == [256, 1024]


class TestTileQuantization:
    def test_boundary_step_cost(self):
        points = {p.chunk: p for p in run_tile_quantization(boundary=256)}
        assert points[257].with_tiles > 1.1 * points[256].with_tiles
        assert points[257].without_tiles == pytest.approx(
            points[256].without_tiles, rel=0.05
        )

    def test_aligned_chunks_identical_either_way(self):
        points = {p.chunk: p for p in run_tile_quantization(boundary=256)}
        assert points[256].with_tiles == pytest.approx(
            points[256].without_tiles, rel=0.02
        )


class TestAllocatorComparison:
    def test_reservation_queues_more(self):
        points = {p.allocator: p for p in run_allocator_comparison(TINY)}
        assert set(points) == {"paged", "reservation"}
        assert (
            points["paged"].p99_scheduling_delay
            <= points["reservation"].p99_scheduling_delay
        )


class TestDynamicBudget:
    def test_dynamic_uses_headroom(self):
        points = {p.variant: p for p in run_dynamic_budget_comparison(TINY)}
        assert points["dynamic"].mean_budget > points["static-512"].mean_budget
        assert points["dynamic"].median_ttft <= points["static-512"].median_ttft * 1.1


class TestDisaggComparison:
    def test_three_systems_reported(self):
        points = run_disagg_comparison(TINY)
        names = [p.system for p in points]
        assert names[0] == "sarathi-2-replicas"
        assert any("NVLink" in n for n in names)
        assert any("Ethernet" in n for n in names)

    def test_disagg_decode_interference_free(self):
        points = {p.system: p for p in run_disagg_comparison(TINY)}
        sarathi = points["sarathi-2-replicas"]
        disagg = points["disagg-1P1D-NVLink"]
        assert disagg.p99_tbt < sarathi.p99_tbt
        assert disagg.num_migrations > 0

    def test_ethernet_migration_costs_more(self):
        points = {p.system: p for p in run_disagg_comparison(TINY)}
        assert (
            points["disagg-1P1D-Ethernet-100G"].total_migration_time
            > 3 * points["disagg-1P1D-NVLink"].total_migration_time
        )
