"""Behavioural tests for the baseline policies (Algorithms 1 and 2)."""

from __future__ import annotations

import pytest

from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.scheduling.faster_transformer import FasterTransformerScheduler
from repro.scheduling.orca import OrcaScheduler
from repro.scheduling.vllm import VLLMScheduler

from tests.conftest import make_request


def drain(scheduler, step=0.1, max_iters=10_000):
    """Run schedule/complete rounds until the scheduler has no work."""
    now = 0.0
    batches = []
    for _ in range(max_iters):
        batch = scheduler.schedule(now)
        if batch is None:
            if not scheduler.has_work:
                break
            now += step
            continue
        batches.append(batch)
        now += step
        scheduler.on_batch_complete(batch, now)
    return batches


class TestFasterTransformer:
    def _scheduler(self, max_batch_size=4):
        memory = ReservationManager(capacity_tokens=16384, reserve_len=512)
        return FasterTransformerScheduler(memory, max_batch_size=max_batch_size)

    def test_prefills_whole_batch_first(self):
        s = self._scheduler()
        for _ in range(3):
            s.add_request(make_request(prompt_len=64, output_len=4), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_seqs == 3
        assert batch.num_decode_seqs == 0

    def test_no_admission_while_decodes_remain(self):
        """Line 3 of Algorithm 1: new requests wait for a full drain."""
        s = self._scheduler(max_batch_size=2)
        s.add_request(make_request(prompt_len=32, output_len=3), now=0.0)
        s.add_request(make_request(prompt_len=32, output_len=3), now=0.0)
        first = s.schedule(now=0.0)
        s.on_batch_complete(first, now=0.1)
        # A new request arrives mid-decode.
        late = make_request(prompt_len=32, output_len=2, arrival_time=0.1)
        s.add_request(late, now=0.1)
        batch = s.schedule(now=0.2)
        assert all(not item.work.is_prefill for item in batch.items)
        assert late.request_id not in {i.request.request_id for i in batch.items}

    def test_batch_shrinks_as_requests_finish(self):
        s = self._scheduler()
        s.add_request(make_request(prompt_len=32, output_len=2), now=0.0)
        s.add_request(make_request(prompt_len=32, output_len=6), now=0.0)
        batches = drain(s)
        sizes = [b.size for b in batches]
        # After the short request drains, batch size drops to 1.
        assert sizes[-1] == 1
        assert max(sizes) == 2

    def test_all_requests_complete(self):
        s = self._scheduler()
        requests = [make_request(prompt_len=32, output_len=3) for _ in range(6)]
        for r in requests:
            s.add_request(r, now=0.0)
        drain(s)
        assert all(r.is_finished for r in requests)


class TestOrca:
    def _scheduler(self, max_batch_size=8, reserve_len=512):
        memory = ReservationManager(capacity_tokens=16384, reserve_len=reserve_len)
        return OrcaScheduler(memory, max_batch_size=max_batch_size)

    def test_eager_admission_into_hybrid_batch(self):
        s = self._scheduler()
        running = make_request(prompt_len=32, output_len=10)
        s.add_request(running, now=0.0)
        first = s.schedule(now=0.0)
        s.on_batch_complete(first, now=0.1)
        # New arrival joins the SAME iteration as the ongoing decode.
        new = make_request(prompt_len=256, output_len=4, arrival_time=0.1)
        s.add_request(new, now=0.1)
        batch = s.schedule(now=0.2)
        assert batch.is_hybrid
        assert batch.num_prefill_tokens == 256  # full prompt, no chunking
        assert batch.num_decode_seqs == 1

    def test_full_prompt_in_single_iteration(self):
        s = self._scheduler()
        r = make_request(prompt_len=4096, output_len=2)
        s.add_request(r, now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_tokens == 4096

    def test_memory_caps_admission(self):
        s = self._scheduler(reserve_len=4096)
        for _ in range(8):
            s.add_request(make_request(prompt_len=64, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        # 16384 / 4096 = 4 reservations fit.
        assert batch.size == 4

    def test_batch_size_cap(self):
        s = self._scheduler(max_batch_size=3, reserve_len=128)
        for _ in range(10):
            s.add_request(make_request(prompt_len=32, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.size == 3

    def test_all_requests_complete(self):
        s = self._scheduler()
        requests = [make_request(prompt_len=64, output_len=4) for _ in range(10)]
        for r in requests:
            s.add_request(r, now=0.0)
        drain(s)
        assert all(r.is_finished for r in requests)


class TestVLLM:
    def _scheduler(self, capacity=65536, max_batch_size=8, max_batched_tokens=4096):
        memory = PagedBlockManager(capacity, block_size=16, watermark=0.0)
        return VLLMScheduler(
            memory, max_batch_size=max_batch_size, max_batched_tokens=max_batched_tokens
        )

    def test_invalid_token_cap_rejected(self):
        with pytest.raises(ValueError):
            self._scheduler(max_batched_tokens=0)

    def test_prefill_only_batches(self):
        """Algorithm 2: prefills never mix with decodes."""
        s = self._scheduler()
        s.add_request(make_request(prompt_len=128, output_len=8), now=0.0)
        first = s.schedule(now=0.0)
        assert first.num_decode_seqs == 0
        s.on_batch_complete(first, now=0.1)
        s.add_request(make_request(prompt_len=256, output_len=4), now=0.1)
        second = s.schedule(now=0.1)
        # New prefill takes priority over the running decode...
        assert second.num_prefill_seqs == 1
        assert second.num_decode_seqs == 0

    def test_generation_stall_structure(self):
        """Eagerly scheduled prefills delay ongoing decodes."""
        s = self._scheduler()
        running = make_request(prompt_len=64, output_len=10)
        s.add_request(running, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        # Two new requests arrive; both prefills run before any decode.
        for _ in range(2):
            s.add_request(make_request(prompt_len=512, output_len=4), now=0.1)
        batch = s.schedule(now=0.1)
        assert batch.num_prefill_seqs == 2
        s.on_batch_complete(batch, now=0.5)
        decode_batch = s.schedule(now=0.5)
        assert decode_batch.num_decode_seqs == 3  # now everyone decodes

    def test_max_batched_tokens_caps_prefill_batch(self):
        s = self._scheduler(max_batched_tokens=1000)
        for _ in range(4):
            s.add_request(make_request(prompt_len=600, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_seqs == 1  # 600 + 600 > 1000

    def test_single_oversized_prompt_still_admitted(self):
        s = self._scheduler(max_batched_tokens=1000)
        s.add_request(make_request(prompt_len=5000, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch is not None
        assert batch.num_prefill_tokens == 5000

    def test_preemption_recompute_roundtrip(self):
        # Tight memory: two decoding requests, growth forces eviction.
        s = self._scheduler(capacity=160, max_batched_tokens=4096)
        early = make_request(prompt_len=64, output_len=40, arrival_time=0.0)
        late = make_request(prompt_len=80, output_len=40, arrival_time=0.1)
        s.add_request(early, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        s.add_request(late, now=0.1)
        s.on_batch_complete(s.schedule(now=0.1), now=0.2)
        # Decode until memory pressure triggers a preemption.
        now = 0.2
        for _ in range(200):
            batch = s.schedule(now)
            if batch is None:
                break
            now += 0.1
            s.on_batch_complete(batch, now)
            if s.num_preemptions:
                break
        assert s.num_preemptions >= 1
        assert late.num_restarts >= 1

    def test_all_requests_complete_under_pressure(self):
        s = self._scheduler(capacity=320)
        requests = [
            make_request(prompt_len=64, output_len=30, arrival_time=0.0)
            for _ in range(4)
        ]
        for r in requests:
            s.add_request(r, now=0.0)
        drain(s)
        assert all(r.is_finished for r in requests)
