"""Tests for stats, summaries, SLOs, timelines and capacity search."""

from __future__ import annotations

import pytest

from repro.api import Deployment, ServingConfig, simulate
from repro.metrics.capacity import find_capacity
from repro.metrics.slo import PAPER_SLOS, SLOSpec, derived_slo, paper_slo
from repro.metrics.stats import mean, median, p90, p99, percentile
from repro.metrics.summary import RunMetrics
from repro.metrics.timeline import (
    IterationRecord,
    generation_stalls,
    longest_stall,
    stage_utilization,
)
from repro.perf.iteration import ExecutionModel
from repro.perf.profiler import derive_slo
from repro.hardware.catalog import A100_80G
from repro.models.catalog import TINY_1B
from repro.types import IterationTime, Request

from tests.conftest import make_request


class TestStats:
    def test_percentiles(self):
        values = list(map(float, range(1, 101)))
        assert median(values) == pytest.approx(50.5)
        assert p90(values) == pytest.approx(90.1)
        assert p99(values) == pytest.approx(99.01)
        assert mean(values) == pytest.approx(50.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            mean([])

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSLO:
    def test_paper_table3_values(self):
        assert paper_slo("mistral-7b", strict=True).p99_tbt == 0.1
        assert paper_slo("mistral-7b", strict=False).p99_tbt == 0.5
        assert paper_slo("Falcon-180B", strict=True).p99_tbt == 1.0

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            paper_slo("gpt-4", strict=True)

    def test_all_paper_models_present(self):
        assert set(PAPER_SLOS) == {
            "mistral-7b",
            "yi-34b",
            "llama2-70b",
            "falcon-180b",
        }

    def test_derived_strict_is_5x_relaxed_is_25x(self):
        exec_model = ExecutionModel(TINY_1B, A100_80G)
        strict = derived_slo(exec_model, strict=True)
        relaxed = derived_slo(exec_model, strict=False)
        assert relaxed.p99_tbt == pytest.approx(5 * strict.p99_tbt)
        assert strict.name == "strict"
        assert relaxed.name == "relaxed"

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="bad", p99_tbt=0.0)


def _record(stage, start, end, prefill=0, decode=0):
    return IterationRecord(
        stage=stage,
        start=start,
        end=end,
        batch_id=0,
        num_prefill_tokens=prefill,
        num_decode_tokens=decode,
        num_prefill_seqs=1 if prefill else 0,
        num_decode_seqs=decode,
        breakdown=IterationTime(end - start, 0, 0, 0, 0),
    )


class TestTimeline:
    def test_stage_utilization_no_gaps(self):
        records = [_record(0, 0.0, 1.0), _record(0, 1.0, 2.0)]
        util = stage_utilization(records, 0)
        assert util.utilization == pytest.approx(1.0)
        assert util.num_bubbles == 0

    def test_stage_utilization_counts_bubbles(self):
        records = [_record(0, 0.0, 1.0), _record(0, 1.5, 2.0), _record(0, 3.0, 3.5)]
        util = stage_utilization(records, 0)
        assert util.num_bubbles == 2
        assert util.bubble_time == pytest.approx(1.5)
        assert util.bubble_fraction == pytest.approx(1.5 / 3.5)

    def test_stage_utilization_empty(self):
        util = stage_utilization([], 0)
        assert util.utilization == 0.0
        assert util.span == 0.0

    def test_stage_filtering(self):
        records = [_record(0, 0.0, 1.0), _record(1, 5.0, 6.0)]
        assert stage_utilization(records, 1).busy_time == pytest.approx(1.0)

    def test_generation_stalls(self):
        r = make_request(prompt_len=10, output_len=5)
        r.record_prefill(10, now=1.0)
        for t in (1.1, 3.1, 3.2, 3.3):
            r.record_decode(now=t)
        stalls = generation_stalls(r, threshold=0.5)
        assert stalls == pytest.approx([2.0])

    def test_longest_stall(self):
        a = make_request(prompt_len=10, output_len=3)
        a.record_prefill(10, now=0.0)
        a.record_decode(now=0.1)
        a.record_decode(now=5.0)
        b = make_request(prompt_len=10, output_len=2)
        b.record_prefill(10, now=0.0)
        b.record_decode(now=0.2)
        assert longest_stall([a, b]) == pytest.approx(4.9)


class TestRunMetrics:
    def test_summarize_end_to_end(self, tiny_deployment):
        trace = [
            make_request(prompt_len=100, output_len=8, arrival_time=0.05 * i)
            for i in range(10)
        ]
        _, metrics = simulate(tiny_deployment, ServingConfig(), trace)
        assert metrics.num_requests == 10
        assert metrics.median_ttft > 0
        assert metrics.p99_tbt >= metrics.median_tbt
        assert metrics.max_tbt >= metrics.p99_tbt
        assert metrics.output_tokens == 80
        assert metrics.throughput_rps > 0
        assert metrics.throughput_tokens_per_s > 0

    def test_meets_slo(self):
        metrics_kwargs = dict(
            num_requests=1,
            makespan=1.0,
            median_ttft=0.1,
            p90_ttft=0.1,
            p99_ttft=0.1,
            median_tbt=0.02,
            p99_tbt=0.05,
            max_tbt=0.06,
            median_scheduling_delay=0.5,
            p99_scheduling_delay=1.0,
            output_tokens=10,
            total_tokens=20,
            num_preemptions=0,
            throughput_rps=1.0,
            throughput_tokens_per_s=20.0,
            mean_bubble_fraction=0.0,
        )
        metrics = RunMetrics(**metrics_kwargs)
        assert metrics.meets(SLOSpec(name="ok", p99_tbt=0.1))
        assert not metrics.meets(SLOSpec(name="tight", p99_tbt=0.01))
        # Sustainability: scheduling delay also gates the SLO.
        delayed = RunMetrics(**{**metrics_kwargs, "median_scheduling_delay": 5.0})
        assert not delayed.meets(SLOSpec(name="ok", p99_tbt=0.1))


def _fake_run_metrics(p99_tbt: float, delay: float = 0.0) -> RunMetrics:
    return RunMetrics(
        num_requests=10,
        makespan=10.0,
        median_ttft=0.1,
        p90_ttft=0.2,
        p99_ttft=0.3,
        median_tbt=p99_tbt / 2,
        p99_tbt=p99_tbt,
        max_tbt=p99_tbt * 2,
        median_scheduling_delay=delay,
        p99_scheduling_delay=delay,
        output_tokens=100,
        total_tokens=200,
        num_preemptions=0,
        throughput_rps=1.0,
        throughput_tokens_per_s=20.0,
        mean_bubble_fraction=0.0,
    )


class TestCapacitySearch:
    def test_finds_known_threshold(self):
        # P99 TBT rises linearly with load; SLO of 1.0 crossed at qps=2.
        result = find_capacity(
            lambda qps: _fake_run_metrics(qps / 2.0),
            SLOSpec(name="t", p99_tbt=1.0),
            qps_lo=0.1,
            qps_hi=1.0,
            rel_tol=0.02,
            max_probes=40,
        )
        assert result.capacity_qps == pytest.approx(2.0, rel=0.05)

    def test_zero_capacity_when_always_violating(self):
        result = find_capacity(
            lambda qps: _fake_run_metrics(10.0),
            SLOSpec(name="t", p99_tbt=1.0),
        )
        assert result.capacity_qps == 0.0

    def test_expands_above_initial_hi(self):
        result = find_capacity(
            lambda qps: _fake_run_metrics(qps / 100.0),
            SLOSpec(name="t", p99_tbt=1.0),
            qps_lo=0.1,
            qps_hi=1.0,
            rel_tol=0.05,
            max_probes=40,
        )
        assert result.capacity_qps > 50

    def test_scheduling_delay_binds_capacity(self):
        # TBT is always fine but delay explodes past qps=3.
        def run(qps):
            return _fake_run_metrics(0.01, delay=0.0 if qps <= 3 else 100.0)

        result = find_capacity(
            run, SLOSpec(name="t", p99_tbt=1.0), rel_tol=0.05, max_probes=40
        )
        assert result.capacity_qps == pytest.approx(3.0, rel=0.1)

    def test_probe_budget_respected(self):
        result = find_capacity(
            lambda qps: _fake_run_metrics(qps),
            SLOSpec(name="t", p99_tbt=1.0),
            max_probes=5,
        )
        assert result.num_probes <= 6  # bracket may finish the probe in flight

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            find_capacity(
                lambda qps: _fake_run_metrics(qps),
                SLOSpec(name="t", p99_tbt=1.0),
                qps_lo=0.0,
            )


class TestGoodput:
    def _finished_request(self, ttft_gap=0.5, tbt_gaps=(0.05, 0.05)):
        r = make_request(prompt_len=10, output_len=1 + len(tbt_gaps))
        r.record_prefill(10, now=ttft_gap)
        t = ttft_gap
        for gap in tbt_gaps:
            t += gap
            r.record_decode(now=t)
        return r

    def _result(self, requests):
        from repro.engine.replica import SimulationResult

        return SimulationResult(
            requests=requests,
            records=[],
            makespan=max(r.finished_at for r in requests),
            num_stages=1,
        )

    def test_request_meets_slo(self):
        from repro.metrics.goodput import RequestSLO, request_meets_slo

        slo = RequestSLO(ttft_deadline=1.0, tbt_deadline=0.1)
        assert request_meets_slo(self._finished_request(), slo)
        assert not request_meets_slo(self._finished_request(ttft_gap=2.0), slo)
        assert not request_meets_slo(
            self._finished_request(tbt_gaps=(0.05, 0.5)), slo
        )

    def test_unfinished_request_fails(self):
        from repro.metrics.goodput import RequestSLO, request_meets_slo

        r = make_request(prompt_len=10, output_len=5)
        assert not request_meets_slo(r, RequestSLO(1.0, 0.1))

    def test_invalid_deadlines_rejected(self):
        from repro.metrics.goodput import RequestSLO

        with pytest.raises(ValueError):
            RequestSLO(ttft_deadline=0.0, tbt_deadline=0.1)

    def test_goodput_report(self):
        from repro.metrics.goodput import GoodputReport, RequestSLO, goodput

        good = self._finished_request()
        slow_start = self._finished_request(ttft_gap=5.0)
        stalled = self._finished_request(tbt_gaps=(0.05, 3.0))
        report = goodput(
            self._result([good, slow_start, stalled]),
            RequestSLO(ttft_deadline=1.0, tbt_deadline=0.1),
        )
        assert report.num_requests == 3
        assert report.num_attained == 1
        assert report.attainment == pytest.approx(1 / 3)
        assert report.ttft_violations == 1
        assert report.tbt_violations == 1
        assert report.goodput_rps > 0

    def test_goodput_on_simulation(self, tiny_deployment):
        from repro.metrics.goodput import RequestSLO, goodput

        trace = [
            make_request(prompt_len=200, output_len=8, arrival_time=0.05 * i)
            for i in range(10)
        ]
        result, _ = simulate(tiny_deployment, ServingConfig(), trace)
        report = goodput(result, RequestSLO(ttft_deadline=10.0, tbt_deadline=1.0))
        assert report.attainment == 1.0
