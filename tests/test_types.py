"""Unit tests for the fundamental value types."""

from __future__ import annotations

import pytest

from repro.types import (
    IterationTime,
    Request,
    RequestPhase,
    TokenWork,
    next_request_id,
)


class TestRequestConstruction:
    def test_defaults(self):
        r = Request(prompt_len=100, output_len=10)
        assert r.phase is RequestPhase.QUEUED
        assert r.prefill_target == 100
        assert r.prefill_done == 0
        assert r.num_emitted == 0
        assert r.total_len == 110

    def test_unique_ids(self):
        a = Request(prompt_len=1, output_len=1)
        b = Request(prompt_len=1, output_len=1)
        assert a.request_id != b.request_id

    def test_next_request_id_monotone(self):
        assert next_request_id() < next_request_id()

    @pytest.mark.parametrize("prompt,output", [(0, 1), (-1, 1), (1, 0), (1, -5)])
    def test_rejects_nonpositive_lengths(self, prompt, output):
        with pytest.raises(ValueError):
            Request(prompt_len=prompt, output_len=output)


class TestRequestPrefillLifecycle:
    def test_partial_prefill_progress(self):
        r = Request(prompt_len=100, output_len=5)
        r.record_prefill(40, now=1.0)
        assert r.prefill_done == 40
        assert not r.is_prefill_complete
        assert r.remaining_prefill == 60
        assert r.num_emitted == 0

    def test_prefill_completion_emits_first_token(self):
        r = Request(prompt_len=100, output_len=5)
        r.record_prefill(100, now=2.5)
        assert r.is_prefill_complete
        assert r.phase is RequestPhase.DECODE
        assert r.num_emitted == 1
        assert r.first_token_at == 2.5
        assert r.token_times == [2.5]

    def test_chunked_prefill_emits_only_at_end(self):
        r = Request(prompt_len=100, output_len=5)
        r.record_prefill(60, now=1.0)
        assert r.num_emitted == 0
        r.record_prefill(40, now=2.0)
        assert r.num_emitted == 1
        assert r.first_token_at == 2.0

    def test_prefill_overshoot_rejected(self):
        r = Request(prompt_len=100, output_len=5)
        with pytest.raises(ValueError):
            r.record_prefill(101, now=0.0)

    def test_single_token_output_finishes_at_prefill(self):
        r = Request(prompt_len=10, output_len=1)
        r.record_prefill(10, now=1.0)
        assert r.is_finished
        assert r.finished_at == 1.0


class TestRequestDecodeLifecycle:
    def _prefilled(self, output_len=3) -> Request:
        r = Request(prompt_len=10, output_len=output_len)
        r.record_prefill(10, now=1.0)
        return r

    def test_decode_emits_token(self):
        r = self._prefilled()
        r.record_decode(now=1.1)
        assert r.num_emitted == 2
        assert r.decode_steps == 1
        assert r.token_times == [1.0, 1.1]

    def test_decode_before_prefill_rejected(self):
        r = Request(prompt_len=10, output_len=2)
        with pytest.raises(ValueError):
            r.record_decode(now=0.0)

    def test_finishes_after_output_len_tokens(self):
        r = self._prefilled(output_len=3)
        r.record_decode(now=1.1)
        assert not r.is_finished
        r.record_decode(now=1.2)
        assert r.is_finished
        assert r.finished_at == 1.2

    def test_context_len_tracks_kv_footprint(self):
        r = self._prefilled(output_len=5)
        assert r.context_len == 10
        r.record_decode(now=1.1)
        assert r.context_len == 11

    def test_tbt_samples(self):
        r = self._prefilled(output_len=4)
        for t in (1.5, 2.5, 4.0):
            r.record_decode(now=t)
        assert r.tbt_samples == pytest.approx([0.5, 1.0, 1.5])


class TestRequestPreemption:
    def test_restart_folds_emitted_tokens_into_prefill(self):
        r = Request(prompt_len=100, output_len=10, arrival_time=0.0)
        r.record_prefill(100, now=1.0)
        r.record_decode(now=1.1)
        r.record_decode(now=1.2)
        assert r.num_emitted == 3
        r.restart_after_preemption()
        assert r.prefill_target == 103
        assert r.prefill_done == 0
        assert r.decode_steps == 0
        assert r.phase is RequestPhase.QUEUED
        assert r.num_restarts == 1
        # Emission history survives.
        assert r.num_emitted == 3
        assert len(r.token_times) == 3

    def test_decode_resumes_without_reemitting(self):
        r = Request(prompt_len=50, output_len=5)
        r.record_prefill(50, now=1.0)
        r.record_decode(now=1.1)
        r.restart_after_preemption()
        r.record_prefill(52, now=3.0)  # re-prefill incl. emitted tokens
        assert r.num_emitted == 2  # no new emission from re-prefill
        r.record_decode(now=3.1)
        assert r.num_emitted == 3
        r.record_decode(now=3.2)
        r.record_decode(now=3.3)
        assert r.is_finished

    def test_first_token_time_not_overwritten(self):
        r = Request(prompt_len=50, output_len=5)
        r.record_prefill(50, now=1.0)
        r.restart_after_preemption()
        r.record_prefill(51, now=4.0)
        assert r.first_token_at == 1.0


class TestRequestMetrics:
    def test_ttft_from_arrival(self):
        r = Request(prompt_len=10, output_len=2, arrival_time=5.0)
        r.record_prefill(10, now=7.5)
        assert r.ttft == pytest.approx(2.5)

    def test_ttft_none_before_first_token(self):
        r = Request(prompt_len=10, output_len=2)
        assert r.ttft is None

    def test_scheduling_delay(self):
        r = Request(prompt_len=10, output_len=2, arrival_time=1.0)
        assert r.scheduling_delay is None
        r.first_scheduled_at = 3.0
        assert r.scheduling_delay == pytest.approx(2.0)

    def test_e2e_latency(self):
        r = Request(prompt_len=10, output_len=1, arrival_time=2.0)
        assert r.e2e_latency is None
        r.record_prefill(10, now=6.0)
        assert r.e2e_latency == pytest.approx(4.0)


class TestTokenWork:
    def test_decode_constructor(self):
        w = TokenWork.decode(128)
        assert w.num_tokens == 1
        assert w.past_len == 128
        assert not w.is_prefill
        assert w.emits_token

    def test_prefill_chunk_constructor(self):
        w = TokenWork.prefill_chunk(256, past_len=512, is_last=False)
        assert w.num_tokens == 256
        assert w.past_len == 512
        assert w.is_prefill
        assert not w.emits_token

    def test_last_chunk_emits(self):
        assert TokenWork.prefill_chunk(16).emits_token

    def test_attention_span(self):
        assert TokenWork.prefill_chunk(100, past_len=50).attention_span == 150
        assert TokenWork.decode(10).attention_span == 11

    @pytest.mark.parametrize("tokens,past", [(0, 0), (-1, 0), (1, -1)])
    def test_invalid_values_rejected(self, tokens, past):
        with pytest.raises(ValueError):
            TokenWork(num_tokens=tokens, past_len=past, is_prefill=True)


class TestIterationTime:
    def test_total_sums_components(self):
        t = IterationTime(1.0, 2.0, 3.0, 4.0, 5.0)
        assert t.total == pytest.approx(15.0)

    def test_addition(self):
        a = IterationTime(1, 1, 1, 1, 1)
        b = IterationTime(2, 2, 2, 2, 2)
        c = a + b
        assert c.linear == 3
        assert c.total == pytest.approx(15.0)

    def test_scaled(self):
        t = IterationTime(1.0, 2.0, 0.0, 0.0, 1.0).scaled(2.0)
        assert t.linear == 2.0
        assert t.attention == 4.0
        assert t.total == pytest.approx(8.0)
