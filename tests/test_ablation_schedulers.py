"""Tests for the Table 4 ablation schedulers."""

from __future__ import annotations

import pytest

from repro.memory.block_manager import PagedBlockManager
from repro.scheduling.ablations import (
    ChunkedPrefillsOnlyScheduler,
    hybrid_batching_only_scheduler,
)

from tests.conftest import make_request
from tests.test_baseline_schedulers import drain


def chunked_only(token_budget=256, max_batch_size=8, capacity=65536):
    memory = PagedBlockManager(capacity, block_size=16, watermark=0.0)
    return ChunkedPrefillsOnlyScheduler(
        memory, token_budget=token_budget, max_batch_size=max_batch_size
    )


class TestChunkedPrefillsOnly:
    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            chunked_only(token_budget=0)

    def test_batches_never_hybrid(self):
        s = chunked_only()
        for _ in range(3):
            s.add_request(make_request(prompt_len=600, output_len=6), now=0.0)
        now = 0.0
        while s.has_work:
            batch = s.schedule(now)
            if batch is None:
                break
            assert not batch.is_hybrid
            now += 0.1
            s.on_batch_complete(batch, now)

    def test_prefill_batches_respect_budget(self):
        s = chunked_only(token_budget=256)
        s.add_request(make_request(prompt_len=2000, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_tokens == 256

    def test_alternates_decode_and_prefill(self):
        """A running decode is stalled by at most one chunk iteration."""
        s = chunked_only(token_budget=256)
        decoder = make_request(prompt_len=64, output_len=20)
        s.add_request(decoder, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        s.add_request(make_request(prompt_len=2000, output_len=2), now=0.1)
        kinds = []
        now = 0.1
        for _ in range(6):
            batch = s.schedule(now)
            kinds.append("p" if batch.num_prefill_seqs else "d")
            now += 0.1
            s.on_batch_complete(batch, now)
        # Strict alternation while both phases have work.
        assert kinds[:6] in (["p", "d"] * 3, ["d", "p"] * 3)

    def test_all_requests_complete(self):
        s = chunked_only()
        requests = [make_request(prompt_len=300, output_len=5) for _ in range(6)]
        for r in requests:
            s.add_request(r, now=0.0)
        drain(s)
        assert all(r.is_finished for r in requests)


class TestHybridBatchingOnlyFactory:
    def test_factory_disables_chunking(self):
        s = hybrid_batching_only_scheduler(
            PagedBlockManager(65536), token_budget=256
        )
        assert s.name == "hybrid-batching-only"
        assert not s.chunk_prefills

    def test_behaves_like_unchunked_sarathi(self):
        s = hybrid_batching_only_scheduler(
            PagedBlockManager(65536, watermark=0.0), token_budget=256
        )
        s.add_request(make_request(prompt_len=4096, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_tokens == 4096
