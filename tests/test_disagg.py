"""Tests for the disaggregated prefill/decode engine (§6 comparison)."""

from __future__ import annotations

import pytest

from repro.disagg.engine import DisaggregatedEngine
from repro.hardware.catalog import ETHERNET_100G, NVLINK
from repro.metrics.summary import summarize

from tests.conftest import make_request


def build(tiny_deployment, prefill=1, decode=1, link=NVLINK, capacity=None, **kw):
    return DisaggregatedEngine(
        tiny_deployment.execution_model(),
        num_prefill_replicas=prefill,
        num_decode_replicas=decode,
        migration_link=link,
        decode_kv_capacity=capacity or tiny_deployment.kv_capacity_tokens(),
        **kw,
    )


class TestConstruction:
    def test_needs_replicas(self, tiny_deployment):
        with pytest.raises(ValueError):
            build(tiny_deployment, prefill=0)
        with pytest.raises(ValueError):
            build(tiny_deployment, decode=0)

    def test_needs_batch_cap(self, tiny_deployment):
        with pytest.raises(ValueError):
            build(tiny_deployment, max_decode_batch=0)

    def test_empty_trace_rejected(self, tiny_deployment):
        with pytest.raises(ValueError):
            build(tiny_deployment).run([])


class TestLifecycle:
    def test_single_request_completes(self, tiny_deployment):
        engine = build(tiny_deployment)
        r = make_request(prompt_len=200, output_len=5)
        result = engine.run([r])
        assert r.is_finished
        assert len(r.token_times) == 5
        assert engine.num_migrations == 1

    def test_single_token_output_never_migrates(self, tiny_deployment):
        engine = build(tiny_deployment)
        r = make_request(prompt_len=100, output_len=1)
        engine.run([r])
        assert r.is_finished
        assert engine.num_migrations == 0

    def test_all_requests_complete(self, tiny_deployment):
        engine = build(tiny_deployment, prefill=2, decode=2)
        requests = [
            make_request(prompt_len=150, output_len=8, arrival_time=0.01 * i)
            for i in range(20)
        ]
        result = engine.run(requests)
        assert all(r.is_finished for r in result.requests)
        assert not result.unfinished

    def test_metrics_summarizable(self, tiny_deployment):
        engine = build(tiny_deployment)
        requests = [
            make_request(prompt_len=150, output_len=6, arrival_time=0.05 * i)
            for i in range(10)
        ]
        metrics = summarize(engine.run(requests))
        assert metrics.num_requests == 10
        assert metrics.p99_tbt > 0


class TestDecodeInterferenceFreedom:
    def test_decodes_never_share_iterations_with_prefills(self, tiny_deployment):
        engine = build(tiny_deployment)
        requests = [
            make_request(prompt_len=400, output_len=12, arrival_time=0.02 * i)
            for i in range(12)
        ]
        result = engine.run(requests)
        for record in result.records:
            assert not (record.num_prefill_tokens and record.num_decode_tokens)

    def test_tbt_unaffected_by_concurrent_prefills(self, tiny_deployment):
        """The disaggregation selling point: long prompts do not stall
        the decode pool."""
        engine = build(tiny_deployment)
        early = make_request(prompt_len=100, output_len=40, arrival_time=0.0)
        monsters = [
            make_request(prompt_len=4000, output_len=2, arrival_time=0.2 + 0.1 * i)
            for i in range(4)
        ]
        engine.run([early] + monsters)
        gaps = early.tbt_samples
        assert max(gaps) < 5 * min(gaps)


class TestMigration:
    def test_migration_time_scales_with_link(self, tiny_deployment):
        fast = build(tiny_deployment, link=NVLINK)
        slow = build(tiny_deployment, link=ETHERNET_100G)
        trace = [make_request(prompt_len=1000, output_len=4) for _ in range(5)]
        from repro.api import clone_requests

        fast.run(clone_requests(trace))
        slow.run(clone_requests(trace))
        assert slow.total_migration_time > 5 * fast.total_migration_time

    def test_migration_delays_second_token(self, tiny_deployment):
        engine = build(tiny_deployment, link=ETHERNET_100G)
        r = make_request(prompt_len=2000, output_len=3)
        engine.run([r])
        first_gap = r.token_times[1] - r.token_times[0]
        exec_model = tiny_deployment.execution_model()
        kv_bytes = exec_model.model.kv_bytes(2000)
        assert first_gap >= ETHERNET_100G.transfer_time(kv_bytes)


class TestMemoryPressure:
    def test_staging_queue_under_tight_decode_memory(self, tiny_deployment):
        # Decode pool fits roughly one request at a time.
        engine = build(tiny_deployment, capacity=700)
        requests = [
            make_request(prompt_len=400, output_len=30, arrival_time=0.0)
            for _ in range(4)
        ]
        result = engine.run(requests)
        assert all(r.is_finished for r in result.requests)

    def test_two_decode_replicas_balance(self, tiny_deployment):
        engine = build(tiny_deployment, decode=2, capacity=2048)
        requests = [
            make_request(prompt_len=500, output_len=20, arrival_time=0.0)
            for _ in range(6)
        ]
        result = engine.run(requests)
        assert all(r.is_finished for r in result.requests)
        # Both replicas executed decode iterations (negative batch ids
        # encode the decode replica index).
        decode_batches = {r.batch_id for r in result.records if r.num_decode_tokens}
        assert len(decode_batches) == 2
