"""Tests for the paged and reservation KV-cache allocators."""

from __future__ import annotations

import pytest

from repro.hardware.catalog import A40_48G, A100_80G
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.memory.capacity import kv_token_capacity
from repro.models.catalog import FALCON_180B, MISTRAL_7B, YI_34B
from repro.parallel.config import ParallelConfig
from repro.types import Request

from tests.conftest import make_request


class TestPagedBlockManager:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            PagedBlockManager(capacity_tokens=0)
        with pytest.raises(ValueError):
            PagedBlockManager(capacity_tokens=100, block_size=0)
        with pytest.raises(ValueError):
            PagedBlockManager(capacity_tokens=100, watermark=1.0)

    def test_blocks_for_rounds_up(self):
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16)
        assert mgr.blocks_for(1) == 1
        assert mgr.blocks_for(16) == 1
        assert mgr.blocks_for(17) == 2

    def test_admit_claims_prompt_blocks(self):
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=100)
        assert mgr.can_admit(r)
        mgr.admit(r)
        assert mgr.holds(r)
        assert mgr.free_blocks == 64 - 7  # ceil(100/16) = 7

    def test_double_admit_rejected(self):
        mgr = PagedBlockManager(capacity_tokens=1024)
        r = make_request()
        mgr.admit(r)
        with pytest.raises(ValueError):
            mgr.admit(r)

    def test_admission_respects_watermark(self):
        mgr = PagedBlockManager(capacity_tokens=1600, block_size=16, watermark=0.10)
        # 100 blocks, 10 reserved as watermark.
        big = make_request(prompt_len=16 * 91)
        assert not mgr.can_admit(big)
        ok = make_request(prompt_len=16 * 90)
        assert mgr.can_admit(ok)

    def test_admit_beyond_capacity_raises(self):
        mgr = PagedBlockManager(capacity_tokens=64, block_size=16)
        with pytest.raises(MemoryError):
            mgr.admit(make_request(prompt_len=1000))

    def test_decode_growth_within_block_is_free(self):
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=10, output_len=4)
        mgr.admit(r)
        r.record_prefill(10, now=0.0)
        free_before = mgr.free_blocks
        assert mgr.can_append_token(r)
        mgr.append_token(r)  # token 11 fits in the first block
        assert mgr.free_blocks == free_before

    def test_decode_growth_allocates_new_block_on_boundary(self):
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=16, output_len=4)
        mgr.admit(r)
        r.record_prefill(16, now=0.0)
        free_before = mgr.free_blocks
        mgr.append_token(r)  # token 17 needs block #2
        assert mgr.free_blocks == free_before - 1

    def test_cannot_append_when_exhausted(self):
        mgr = PagedBlockManager(capacity_tokens=32, block_size=16, watermark=0.0)
        r = make_request(prompt_len=32, output_len=4)
        mgr.admit(r)
        r.record_prefill(32, now=0.0)
        assert not mgr.can_append_token(r)
        with pytest.raises(MemoryError):
            mgr.append_token(r)

    def test_append_without_allocation_rejected(self):
        mgr = PagedBlockManager(capacity_tokens=1024)
        with pytest.raises(ValueError):
            mgr.append_token(make_request())

    def test_can_append_without_allocation_rejected(self):
        """``can_append_token`` must flag never-admitted requests loudly
        (scheduler bug), matching ``append_token`` — not return True."""
        mgr = PagedBlockManager(capacity_tokens=1024)
        with pytest.raises(ValueError, match="holds no allocation"):
            mgr.can_append_token(make_request())

    def test_free_of_unknown_request_is_noop(self):
        """``free`` of a request that was never admitted (or already
        freed) is an explicit no-op: nothing changes, nothing raises."""
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16, watermark=0.0)
        free_before = mgr.free_blocks
        mgr.free(make_request())
        assert mgr.free_blocks == free_before

    def test_free_returns_blocks(self):
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=160)
        mgr.admit(r)
        mgr.free(r)
        assert mgr.free_blocks == 64
        assert not mgr.holds(r)

    def test_free_is_idempotent(self):
        mgr = PagedBlockManager(capacity_tokens=1024)
        r = make_request()
        mgr.admit(r)
        mgr.free(r)
        mgr.free(r)
        assert mgr.free_token_slots == 1024 // 16 * 16

    def test_admission_uses_prefill_target_after_preemption(self):
        mgr = PagedBlockManager(capacity_tokens=1024, block_size=16, watermark=0.0)
        r = make_request(prompt_len=100, output_len=50)
        mgr.admit(r)
        r.record_prefill(100, now=0.0)
        for t in range(30):
            mgr.append_token(r)
            r.record_decode(now=float(t))
        mgr.free(r)
        r.restart_after_preemption()
        # Re-admission must reserve prompt + regenerated tokens.
        assert r.prefill_target == 131
        mgr.admit(r)
        assert mgr.free_blocks == 64 - mgr.blocks_for(131)

    def test_no_fragmentation_across_requests(self):
        mgr = PagedBlockManager(capacity_tokens=160, block_size=16, watermark=0.0)
        requests = [make_request(prompt_len=16) for _ in range(10)]
        for r in requests:
            mgr.admit(r)
        assert mgr.free_blocks == 0
        mgr.free(requests[3])
        mgr.free(requests[7])
        # Any new 2-block request fits in the scattered free blocks.
        assert mgr.can_admit(make_request(prompt_len=32))


class TestReservationManager:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            ReservationManager(capacity_tokens=0, reserve_len=10)
        with pytest.raises(ValueError):
            ReservationManager(capacity_tokens=10, reserve_len=0)

    def test_reserves_worst_case_slot(self):
        mgr = ReservationManager(capacity_tokens=4096, reserve_len=1024)
        r = make_request(prompt_len=100, output_len=10)
        mgr.admit(r)
        assert mgr.free_token_slots == 4096 - 1024

    def test_long_prompt_reserves_its_own_length(self):
        mgr = ReservationManager(capacity_tokens=4096, reserve_len=1024)
        r = make_request(prompt_len=2000, output_len=100)
        mgr.admit(r)
        assert mgr.free_token_slots == 4096 - 2100

    def test_fewer_requests_fit_than_paged(self):
        """The §5.1 effect: reservation caps effective batch size."""
        capacity = 8192
        paged = PagedBlockManager(capacity, block_size=16, watermark=0.0)
        reserved = ReservationManager(capacity, reserve_len=2048)
        paged_admits = reserved_admits = 0
        for _ in range(100):
            r = make_request(prompt_len=128, output_len=32)
            if paged.can_admit(r):
                paged.admit(r)
                paged_admits += 1
        for _ in range(100):
            r = make_request(prompt_len=128, output_len=32)
            if reserved.can_admit(r):
                reserved.admit(r)
                reserved_admits += 1
        assert reserved_admits < paged_admits / 4

    def test_decode_growth_prepaid(self):
        mgr = ReservationManager(capacity_tokens=2048, reserve_len=1024)
        r = make_request(prompt_len=100, output_len=500)
        mgr.admit(r)
        r.record_prefill(100, now=0.0)
        for _ in range(400):
            assert mgr.can_append_token(r)
            mgr.append_token(r)

    def test_append_without_admission_rejected(self):
        mgr = ReservationManager(capacity_tokens=2048, reserve_len=1024)
        r = make_request()
        assert not mgr.can_append_token(r)
        with pytest.raises(ValueError):
            mgr.append_token(r)

    def test_free_returns_full_reservation(self):
        mgr = ReservationManager(capacity_tokens=2048, reserve_len=1024)
        r = make_request()
        mgr.admit(r)
        mgr.free(r)
        assert mgr.free_token_slots == 2048

    def test_admit_over_capacity_raises(self):
        mgr = ReservationManager(capacity_tokens=1000, reserve_len=600)
        mgr.admit(make_request())
        with pytest.raises(MemoryError):
            mgr.admit(make_request())


class TestKVTokenCapacity:
    def test_mistral_on_a100_has_large_cache(self):
        tokens = kv_token_capacity(MISTRAL_7B, A100_80G, ParallelConfig())
        # ~57 GB free / 131 KB per token ≈ 450k tokens.
        assert 200_000 < tokens < 800_000

    def test_tp_increases_capacity(self):
        tp1 = kv_token_capacity(YI_34B, A100_80G, ParallelConfig())
        tp2 = kv_token_capacity(YI_34B, A100_80G, ParallelConfig(tensor_parallel=2))
        assert tp2 > 2 * tp1  # weights halve too, freeing extra room

    def test_model_too_big_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            kv_token_capacity(FALCON_180B, A40_48G, ParallelConfig())

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            kv_token_capacity(
                MISTRAL_7B, A100_80G, ParallelConfig(), gpu_memory_utilization=1.5
            )

    def test_activation_reserve_reduces_capacity(self):
        small = kv_token_capacity(
            MISTRAL_7B, A100_80G, ParallelConfig(), activation_reserve_bytes=1 << 30
        )
        big = kv_token_capacity(
            MISTRAL_7B, A100_80G, ParallelConfig(), activation_reserve_bytes=16 << 30
        )
        assert big < small
