"""Tests for the chaos harness (``repro.runtime.chaos``) and the golden
recovery drills it enables.

Chaos must be deterministic (same seed, same faults, every run) so the
recovery paths can be golden-tested: a chaos-ridden sweep retries its
way to output bit-identical to the unfaulted run, and a sweep cut down
mid-flight resumes with exactly the missing cells recomputed.
"""

from __future__ import annotations

import pytest

from repro.api import Deployment
from repro.experiments.capacity_runner import CapacityCellSpec, run_capacity_cells
from repro.experiments.common import Scale
from repro.hardware.catalog import A100_80G
from repro.models.catalog import TINY_1B
from repro.runtime import (
    CHAOS_ENV,
    ChaosConfig,
    chaos_from_env,
    clear_process_models,
    corrupt_file,
    map_tasks,
)
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4

pytestmark = pytest.mark.chaos

TINY = Scale(num_requests=12, capacity_rel_tol=0.5, capacity_max_probes=3)


def square(x: int) -> int:  # module-level: picklable for worker processes
    return x * x


class TestChaosConfig:
    def test_parse_full_spec(self):
        config = ChaosConfig.parse("kill=0.2, hang=0.1, seed=3, hang_seconds=5")
        assert config == ChaosConfig(
            seed=3, kill_rate=0.2, hang_rate=0.1, hang_seconds=5.0
        )

    def test_parse_aliases_and_attempts(self):
        config = ChaosConfig.parse("kill_rate=0.4,attempts=2")
        assert config.kill_rate == 0.4
        assert config.max_attempt == 2

    @pytest.mark.parametrize("spec", ["", "  ", "off", "none", "0"])
    def test_parse_off_values(self, spec):
        assert ChaosConfig.parse(spec) is None

    def test_parse_zero_rates_is_off(self):
        assert ChaosConfig.parse("kill=0,hang=0") is None

    @pytest.mark.parametrize(
        "spec", ["kill", "frobnicate=1", "kill=lots", "kill=2.0"]
    )
    def test_parse_rejects_garbage(self, spec):
        with pytest.raises(ValueError):
            ChaosConfig.parse(spec)

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="kill rate"):
            ChaosConfig(kill_rate=1.5)
        with pytest.raises(ValueError, match="exceed 1"):
            ChaosConfig(kill_rate=0.7, hang_rate=0.7)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "kill=0.3,seed=9")
        assert chaos_from_env() == ChaosConfig(seed=9, kill_rate=0.3)


class TestDeterminism:
    def test_decisions_stable_and_seed_dependent(self):
        a = ChaosConfig(seed=1, kill_rate=0.3, hang_rate=0.2)
        b = ChaosConfig(seed=1, kill_rate=0.3, hang_rate=0.2)
        decisions = [a.decision(i, 0) for i in range(64)]
        assert decisions == [b.decision(i, 0) for i in range(64)]
        assert {"kill", "hang", None} == set(decisions)  # all kinds drawn
        other_seed = ChaosConfig(seed=2, kill_rate=0.3, hang_rate=0.2)
        assert decisions != [other_seed.decision(i, 0) for i in range(64)]

    def test_draw_is_uniform_in_unit_interval(self):
        config = ChaosConfig(seed=0, kill_rate=0.5)
        draws = [config.draw(i, 0) for i in range(256)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7

    def test_faults_stop_past_max_attempt(self):
        config = ChaosConfig(seed=0, kill_rate=1.0, max_attempt=1)
        assert config.decision(0, 0) == "kill"
        assert config.decision(0, 1) is None  # retries always run clean

    def test_corrupt_file_is_deterministic(self, tmp_path):
        payload = bytes(range(256)) * 4
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(payload)
        b.write_bytes(payload)
        assert corrupt_file(a, seed=3) == corrupt_file(b, seed=3) == 8
        assert a.read_bytes() == b.read_bytes() != payload

    def test_corrupt_file_handles_empty_and_missing(self, tmp_path):
        empty = tmp_path / "empty"
        empty.touch()
        assert corrupt_file(empty) == 0
        assert corrupt_file(tmp_path / "nope") == 0


class TestRecoveryDrills:
    def test_resume_after_kill_completes_exactly_missing_cells(self, tmp_path):
        """A sweep cut down by worker kills resumes with only the holes.

        ``max_retries=0`` turns every chaos kill into a quarantined
        cell — the ledger ends up holding a strict subset, exactly as
        if the run had been killed mid-sweep.
        """
        items = list(range(8))
        chaos = ChaosConfig(seed=5, kill_rate=0.4)
        first = map_tasks(
            square, items, jobs=2, run_dir=tmp_path, chaos=chaos,
            max_retries=0, strict=False,
        )
        done = {o.index for o in first.outcomes}
        missing = set(items) - done
        assert first.failures and missing  # the drill actually lost cells
        assert done  # ...but not all of them

        second = map_tasks(square, items, jobs=2, run_dir=tmp_path, resume=True)
        assert second.ok
        assert second.values == [x * x for x in items]
        assert second.num_resumed == len(done)
        assert {o.index for o in second.outcomes if o.resumed} == done
        assert {o.index for o in second.outcomes if not o.resumed} == missing

    def test_chaos_capacity_grid_bit_identical_to_serial(self):
        """The acceptance drill: kills mid-grid, zero lost cells."""
        deployment = Deployment(model=TINY_1B, gpu=A100_80G)
        specs = [
            CapacityCellSpec(
                deployment=deployment,
                scheduler=scheduler,
                dataset=SHAREGPT4,
                scale=TINY,
                strict=strict,
                qps_hint=1.0,
            )
            for strict in (True, False)
            for scheduler in (SchedulerKind.VLLM, SchedulerKind.SARATHI)
        ]
        clear_process_models()
        serial = run_capacity_cells(specs, jobs=1)
        clear_process_models()

        reports = []
        chaotic = run_capacity_cells(
            specs, jobs=2, chaos=ChaosConfig(seed=1, kill_rate=0.4),
            reports=reports,
        )
        clear_process_models()
        assert [o.cell for o in chaotic] == [o.cell for o in serial]
        assert sum(r.num_retries for r in reports) > 0  # chaos actually bit
        assert all(not r.failures for r in reports)
