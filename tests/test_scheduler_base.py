"""Tests for the shared scheduler framework (admission, commit, preempt)."""

from __future__ import annotations

import pytest

from repro.batch import ScheduledWork
from repro.memory.block_manager import PagedBlockManager
from repro.scheduling.base import Scheduler
from repro.types import RequestPhase, TokenWork

from tests.conftest import make_request


class SingleDecodeScheduler(Scheduler):
    """Minimal concrete policy: decode everything runnable, admit one."""

    name = "test-policy"

    def _build_batch(self, now):
        items = []
        for request in self._schedulable_running():
            if request.is_prefill_complete:
                items.append(
                    ScheduledWork(request=request, work=TokenWork.decode(request.context_len))
                )
            else:
                items.append(
                    ScheduledWork(
                        request=request,
                        work=TokenWork.prefill_chunk(
                            request.remaining_prefill, past_len=request.prefill_done
                        ),
                    )
                )
        if not items:
            admitted = self._admit_waiting_head()
            if admitted is not None:
                items.append(
                    ScheduledWork(
                        request=admitted,
                        work=TokenWork.prefill_chunk(admitted.remaining_prefill),
                    )
                )
        return items


@pytest.fixture
def scheduler():
    return SingleDecodeScheduler(PagedBlockManager(4096, block_size=16), max_batch_size=8)


class TestAddRequest:
    def test_fcfs_order(self, scheduler):
        a = make_request(arrival_time=0.0)
        b = make_request(arrival_time=1.0)
        scheduler.add_request(a, now=0.0)
        scheduler.add_request(b, now=1.0)
        assert list(scheduler.waiting) == [a, b]

    def test_future_arrival_rejected(self, scheduler):
        r = make_request(arrival_time=5.0)
        with pytest.raises(ValueError):
            scheduler.add_request(r, now=1.0)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            SingleDecodeScheduler(PagedBlockManager(1024), max_batch_size=0)


class TestScheduleLifecycle:
    def test_schedule_marks_in_flight_and_timestamps(self, scheduler):
        r = make_request(prompt_len=32, output_len=2)
        scheduler.add_request(r, now=0.0)
        batch = scheduler.schedule(now=1.5)
        assert batch is not None
        assert r.first_scheduled_at == 1.5
        assert r.phase is RequestPhase.PREFILL
        # In-flight requests are not schedulable again.
        assert scheduler.schedule(now=1.6) is None

    def test_schedule_returns_none_when_idle(self, scheduler):
        assert scheduler.schedule(now=0.0) is None

    def test_on_batch_complete_commits_progress(self, scheduler):
        r = make_request(prompt_len=32, output_len=3)
        scheduler.add_request(r, now=0.0)
        batch = scheduler.schedule(now=0.0)
        finished = scheduler.on_batch_complete(batch, now=0.5)
        assert finished == []
        assert r.is_prefill_complete
        assert r.num_emitted == 1

    def test_completion_frees_finished_request(self, scheduler):
        r = make_request(prompt_len=32, output_len=1)
        scheduler.add_request(r, now=0.0)
        batch = scheduler.schedule(now=0.0)
        finished = scheduler.on_batch_complete(batch, now=0.5)
        assert finished == [r]
        assert not scheduler.memory.holds(r)
        assert scheduler.num_running == 0

    def test_full_request_lifecycle(self, scheduler):
        r = make_request(prompt_len=32, output_len=3)
        scheduler.add_request(r, now=0.0)
        now = 0.0
        while not r.is_finished:
            batch = scheduler.schedule(now)
            assert batch is not None
            now += 0.1
            scheduler.on_batch_complete(batch, now)
        assert r.num_emitted == 3
        assert len(r.token_times) == 3

    def test_num_scheduled_batches_counter(self, scheduler):
        r = make_request(prompt_len=32, output_len=2)
        scheduler.add_request(r, now=0.0)
        batch = scheduler.schedule(now=0.0)
        scheduler.on_batch_complete(batch, now=0.1)
        scheduler.schedule(now=0.2)
        assert scheduler.num_scheduled_batches == 2


class TestAdmission:
    def test_admit_waiting_head_respects_memory(self):
        scheduler = SingleDecodeScheduler(
            PagedBlockManager(64, block_size=16, watermark=0.0)
        )
        fits = make_request(prompt_len=48)
        too_big = make_request(prompt_len=1000)
        scheduler.add_request(too_big, now=0.0)
        scheduler.add_request(fits, now=0.0)
        # Head of queue doesn't fit: FCFS means nothing is admitted.
        assert scheduler._admit_waiting_head() is None
        assert scheduler.num_waiting == 2

    def test_admit_moves_to_running(self, scheduler):
        r = make_request()
        scheduler.add_request(r, now=0.0)
        admitted = scheduler._admit_waiting_head()
        assert admitted is r
        assert scheduler.num_running == 1
        assert scheduler.memory.holds(r)


class TestPreemption:
    def _running_decoder(self, scheduler, prompt_len=32, output_len=50, arrival=0.0):
        r = make_request(prompt_len=prompt_len, output_len=output_len, arrival_time=arrival)
        scheduler.add_request(r, now=arrival)
        scheduler._admit_waiting_head()
        r.record_prefill(prompt_len, now=arrival)
        return r

    def test_preempts_most_recent_arrival(self):
        memory = PagedBlockManager(96, block_size=16, watermark=0.0)
        scheduler = SingleDecodeScheduler(memory)
        old = self._running_decoder(scheduler, prompt_len=48, arrival=0.0)
        young = self._running_decoder(scheduler, prompt_len=48, arrival=1.0)
        # Memory is now full; growing `old` must evict `young`.
        assert memory.free_blocks == 0
        assert scheduler._preempt_for_decode(old)
        assert young.phase is RequestPhase.QUEUED
        assert young.num_restarts == 1
        assert scheduler.waiting[0] is young
        assert scheduler.num_preemptions == 1

    def test_self_preemption_when_lowest_priority(self):
        memory = PagedBlockManager(48, block_size=16, watermark=0.0)
        scheduler = SingleDecodeScheduler(memory)
        only = self._running_decoder(scheduler, prompt_len=48)
        assert not scheduler._preempt_for_decode(only)
        # With nobody else to evict, the request preempts itself.
        assert only.num_restarts == 1
        assert scheduler.waiting[0] is only
        assert memory.free_blocks == 3

    def test_never_preempts_higher_priority_request(self):
        memory = PagedBlockManager(96, block_size=16, watermark=0.0)
        scheduler = SingleDecodeScheduler(memory)
        old = self._running_decoder(scheduler, prompt_len=48, arrival=0.0)
        young = self._running_decoder(scheduler, prompt_len=48, arrival=1.0)
        # Growing the YOUNG request must self-preempt, not evict `old`.
        assert not scheduler._preempt_for_decode(young)
        assert old.num_restarts == 0
        assert young.num_restarts == 1

    def test_no_preemption_when_space_available(self):
        memory = PagedBlockManager(4096, block_size=16, watermark=0.0)
        scheduler = SingleDecodeScheduler(memory)
        r = self._running_decoder(scheduler)
        assert scheduler._preempt_for_decode(r)
        assert scheduler.num_preemptions == 0
