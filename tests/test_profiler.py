"""Tests for the token-budget profiler (§4.3)."""

from __future__ import annotations

import pytest

from repro.hardware.catalog import A100_80G
from repro.models.catalog import MISTRAL_7B, YI_34B
from repro.parallel.config import ParallelConfig
from repro.perf.iteration import ExecutionModel
from repro.perf.profiler import (
    RELAXED_SLO_MULTIPLIER,
    STRICT_SLO_MULTIPLIER,
    compute_token_budget,
    default_budget_candidates,
    derive_slo,
    hybrid_iteration_time,
    profile_token_budgets,
    reference_decode_time,
)


@pytest.fixture
def mistral_exec():
    return ExecutionModel(MISTRAL_7B, A100_80G)


class TestSLODerivation:
    def test_multipliers(self, mistral_exec):
        ref = reference_decode_time(mistral_exec)
        assert derive_slo(mistral_exec, strict=True) == pytest.approx(
            STRICT_SLO_MULTIPLIER * ref
        )
        assert derive_slo(mistral_exec, strict=False) == pytest.approx(
            RELAXED_SLO_MULTIPLIER * ref
        )

    def test_reference_decode_positive(self, mistral_exec):
        assert reference_decode_time(mistral_exec) > 0

    def test_slo_lands_near_paper_table3(self):
        """Derived SLOs should be within ~2x of the published values."""
        mistral = ExecutionModel(MISTRAL_7B, A100_80G)
        yi = ExecutionModel(YI_34B, A100_80G, ParallelConfig(tensor_parallel=2))
        assert 0.05 < derive_slo(mistral, strict=True) < 0.2     # paper: 0.1
        assert 0.1 < derive_slo(yi, strict=True) < 0.4           # paper: 0.2


class TestHybridIterationTime:
    def test_grows_with_budget(self, mistral_exec):
        small = hybrid_iteration_time(mistral_exec, 256)
        large = hybrid_iteration_time(mistral_exec, 4096)
        assert large > small

    def test_decode_only_when_budget_fits_decodes(self, mistral_exec):
        time = hybrid_iteration_time(mistral_exec, 32, decode_batch_size=32)
        decode_only = mistral_exec.decode_iteration_time(32, 4096).total
        assert time == pytest.approx(decode_only)


class TestBudgetProfiles:
    def test_profiles_flag_slo_violations(self, mistral_exec):
        slo = derive_slo(mistral_exec, strict=True)
        profiles = profile_token_budgets(mistral_exec, slo)
        assert any(p.meets_slo for p in profiles)
        assert any(not p.meets_slo for p in profiles)
        # Iteration time increases monotonically with the budget.
        times = [p.iteration_time for p in profiles]
        assert times == sorted(times)

    def test_candidates_tile_aligned(self, mistral_exec):
        for candidate in default_budget_candidates(mistral_exec):
            assert candidate % mistral_exec.gpu.matmul_tile == 0


class TestComputeTokenBudget:
    def test_strict_budget_smaller_than_relaxed(self, mistral_exec):
        strict = compute_token_budget(mistral_exec, derive_slo(mistral_exec, True))
        relaxed = compute_token_budget(mistral_exec, derive_slo(mistral_exec, False))
        assert strict < relaxed

    def test_budget_meets_its_slo(self, mistral_exec):
        slo = derive_slo(mistral_exec, strict=True)
        budget = compute_token_budget(mistral_exec, slo)
        assert hybrid_iteration_time(mistral_exec, budget) <= slo

    def test_fallback_to_min_budget(self, mistral_exec):
        budget = compute_token_budget(mistral_exec, tbt_slo=1e-9, min_budget=128)
        assert budget == 128

    def test_explicit_candidates(self, mistral_exec):
        slo = derive_slo(mistral_exec, strict=False)
        budget = compute_token_budget(mistral_exec, slo, candidates=[256, 512])
        assert budget == 512
