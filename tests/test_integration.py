"""End-to-end integration tests encoding the paper's qualitative claims.

Each test runs full simulations on paper-scale models (small request
counts) and asserts the *shape* the paper reports: who stalls, who
wins capacity, where the ablations land.
"""

from __future__ import annotations

import pytest

from repro.api import Deployment, ServingConfig, simulate
from repro.hardware.catalog import A100_80G
from repro.metrics.timeline import longest_stall, stage_utilization
from repro.models.catalog import MISTRAL_7B
from repro.parallel.config import ParallelConfig
from repro.types import SchedulerKind
from repro.workload.datasets import SHAREGPT4, generate_requests


@pytest.fixture(scope="module")
def mistral() -> Deployment:
    return Deployment(model=MISTRAL_7B, gpu=A100_80G)


@pytest.fixture(scope="module")
def trace():
    return generate_requests(SHAREGPT4, num_requests=60, qps=1.2, seed=5)


@pytest.fixture(scope="module")
def results(mistral, trace):
    out = {}
    for kind in SchedulerKind:
        config = ServingConfig(scheduler=kind, token_budget=512)
        out[kind] = simulate(mistral, config, trace)
    return out


class TestGenerationStalls:
    def test_vllm_stalls_sarathi_does_not(self, results):
        """Figure 1a / §3.2."""
        vllm_worst = longest_stall(results[SchedulerKind.VLLM][0].finished_requests)
        sarathi_worst = longest_stall(
            results[SchedulerKind.SARATHI][0].finished_requests
        )
        assert vllm_worst > 3 * sarathi_worst

    def test_orca_also_stalls(self, results):
        orca_worst = longest_stall(results[SchedulerKind.ORCA][0].finished_requests)
        sarathi_worst = longest_stall(
            results[SchedulerKind.SARATHI][0].finished_requests
        )
        assert orca_worst > 2 * sarathi_worst

    def test_ft_has_best_tbt_but_terrible_ttft(self, results):
        """Decode-prioritizing optimizes TBT at the cost of queueing (§3.2)."""
        ft = results[SchedulerKind.FASTER_TRANSFORMER][1]
        sarathi = results[SchedulerKind.SARATHI][1]
        assert ft.p99_tbt <= sarathi.p99_tbt
        assert ft.median_ttft > 3 * sarathi.median_ttft

    def test_sarathi_p99_tbt_best_of_iteration_level(self, results):
        sarathi = results[SchedulerKind.SARATHI][1].p99_tbt
        assert sarathi < results[SchedulerKind.VLLM][1].p99_tbt
        assert sarathi < results[SchedulerKind.ORCA][1].p99_tbt

    def test_sarathi_tbt_bounded_by_budget_iteration(self, mistral, results):
        """Stall-free guarantee: no inter-token gap far above one
        budget-bounded iteration (plus scheduling jitter)."""
        exec_model = mistral.execution_model()
        from repro.perf.profiler import hybrid_iteration_time

        bound = hybrid_iteration_time(exec_model, 512 + 128)
        worst = longest_stall(results[SchedulerKind.SARATHI][0].finished_requests)
        assert worst < 3 * bound


class TestThroughput:
    def test_iteration_level_beats_request_level(self, results):
        """Orca's claim: iteration-level batching wins throughput."""
        ft = results[SchedulerKind.FASTER_TRANSFORMER][1]
        for kind in (SchedulerKind.VLLM, SchedulerKind.SARATHI, SchedulerKind.ORCA):
            assert results[kind][1].makespan < ft.makespan

    def test_sarathi_throughput_close_to_vllm(self, results):
        """Stall-freedom costs little total throughput."""
        sarathi = results[SchedulerKind.SARATHI][1]
        vllm = results[SchedulerKind.VLLM][1]
        assert sarathi.makespan < 1.3 * vllm.makespan


class TestAblations:
    def test_combined_beats_each_alone_on_tbt(self, results):
        combined = results[SchedulerKind.SARATHI][1].p99_tbt
        hybrid_only = results[SchedulerKind.HYBRID_ONLY][1].p99_tbt
        assert combined < hybrid_only

    def test_hybrid_only_still_stalls(self, results):
        """Table 4: full prefills in hybrid batches keep TBT high."""
        hybrid_only = longest_stall(
            results[SchedulerKind.HYBRID_ONLY][0].finished_requests
        )
        combined = longest_stall(results[SchedulerKind.SARATHI][0].finished_requests)
        assert hybrid_only > 2 * combined

    def test_chunked_only_ttft_worse_than_combined(self, results):
        """Table 4: chunks without coalescing serialize prefill progress."""
        chunked_only = results[SchedulerKind.CHUNKED_ONLY][1]
        combined = results[SchedulerKind.SARATHI][1]
        assert chunked_only.median_ttft > combined.median_ttft


class TestPipelineBubbles:
    def test_sarathi_reduces_bubble_variance(self):
        """Fig. 8: uniform batches shrink inter-batch variation."""
        import numpy as np

        deployment = Deployment(
            model=MISTRAL_7B,
            gpu=A100_80G,
            parallel=ParallelConfig(pipeline_parallel=2),
        )
        trace = generate_requests(SHAREGPT4, num_requests=40, qps=2.5, seed=9)
        cvs = {}
        bubbles = {}
        for kind in (SchedulerKind.ORCA, SchedulerKind.SARATHI):
            config = ServingConfig(scheduler=kind, token_budget=512)
            result, _ = simulate(deployment, config, trace)
            durations = [r.duration for r in result.records if r.stage == 0]
            cvs[kind] = np.std(durations) / np.mean(durations)
            bubbles[kind] = stage_utilization(result.records, 1).bubble_time
        assert cvs[SchedulerKind.SARATHI] < cvs[SchedulerKind.ORCA]
        assert bubbles[SchedulerKind.SARATHI] < bubbles[SchedulerKind.ORCA]


class TestMemoryPressure:
    def test_vllm_preempts_and_recovers_under_tight_memory(self):
        """Recompute preemption end-to-end through the engine."""
        from repro.api import build_engine, clone_requests

        deployment = Deployment(model=MISTRAL_7B, gpu=A100_80G)
        config = ServingConfig(scheduler=SchedulerKind.VLLM)
        engine = build_engine(deployment, config)
        # Shrink memory drastically to force preemption.
        engine.scheduler.memory = type(engine.scheduler.memory)(
            capacity_tokens=8192, block_size=16, watermark=0.0
        )
        trace = clone_requests(
            generate_requests(SHAREGPT4, num_requests=12, qps=5.0, seed=3)
        )
        result = engine.run(trace)
        assert all(r.is_finished for r in result.requests)
        assert result.num_preemptions > 0


class TestGoodput:
    def test_sarathi_best_goodput_under_tight_deadlines(self, results):
        """Per-request SLO attainment (DistServe-style goodput) tells the
        same story as aggregate P99: stall-free batching keeps individual
        streams usable."""
        from repro.metrics.goodput import RequestSLO, goodput

        slo = RequestSLO(ttft_deadline=5.0, tbt_deadline=0.2)
        attainment = {
            kind: goodput(result, slo).attainment
            for kind, (result, _metrics) in results.items()
        }
        assert attainment[SchedulerKind.SARATHI] >= attainment[SchedulerKind.VLLM]
        assert attainment[SchedulerKind.SARATHI] >= attainment[SchedulerKind.ORCA]
        assert attainment[SchedulerKind.SARATHI] > 0.8
