"""Shared fixtures: small deployments and request factories.

Simulation tests run against the Tiny-1B catalog model so the whole
suite stays fast while exercising exactly the same code paths as the
paper-scale models.
"""

from __future__ import annotations

import pytest

from repro.api import Deployment
from repro.hardware.catalog import A100_80G, ETHERNET_100G
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.models.catalog import TINY_1B
from repro.parallel.config import ParallelConfig
from repro.types import Request


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (full differential matrix, big benches)",
    )


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow: run with --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(params=["object", "vectorized"])
def engine(request) -> str:
    """The engine kind under test.

    Any suite that takes this fixture runs twice — once against the
    object (golden-reference) core and once against the vectorized
    core — and must pass bit-identically on both.  Pass the value as
    ``ServingConfig(engine=engine)``.
    """
    return request.param


@pytest.fixture
def tiny_deployment() -> Deployment:
    """Tiny-1B on one A100 — the fast single-stage test deployment."""
    return Deployment(model=TINY_1B, gpu=A100_80G)


@pytest.fixture
def tiny_pp_deployment() -> Deployment:
    """Tiny-1B on two A100s with 2-way pipeline parallelism."""
    return Deployment(
        model=TINY_1B,
        gpu=A100_80G,
        parallel=ParallelConfig(pipeline_parallel=2, pp_link=ETHERNET_100G),
    )


@pytest.fixture
def paged_memory() -> PagedBlockManager:
    return PagedBlockManager(capacity_tokens=4096, block_size=16)


@pytest.fixture
def reservation_memory() -> ReservationManager:
    return ReservationManager(capacity_tokens=8192, reserve_len=1024)


def shrink_kv_memory(
    built, capacity_tokens: int = 4096, block_size: int = 16,
    prefix_cache: bool = False,
) -> None:
    """Swap a drastically smaller KV pool into a freshly built engine.

    The dual pattern the determinism and differential suites use to
    force preemption pressure: the object scheduler gets a small
    ``PagedBlockManager``, the vectorized one the row-indexed
    ``VecPagedMemory`` of identical shape.  Call before ``run``.
    ``prefix_cache`` attaches a fresh shared-prefix store, so cache
    behavior under memory pressure can be exercised too.
    """
    from repro.memory.prefix import SharedPrefixStore

    store = SharedPrefixStore(block_size=block_size) if prefix_cache else None
    if built.kind == "vectorized":
        from repro.scheduling.vectorized import VecPagedMemory

        built.scheduler.memory = VecPagedMemory(
            built.scheduler.A,
            capacity_tokens=capacity_tokens,
            block_size=block_size,
            watermark=0.0,
            prefix_store=store,
        )
    else:
        built.scheduler.memory = PagedBlockManager(
            capacity_tokens=capacity_tokens, block_size=block_size, watermark=0.0,
            prefix_store=store,
        )


def make_request(
    prompt_len: int = 64,
    output_len: int = 8,
    arrival_time: float = 0.0,
) -> Request:
    """A request with small defaults for unit tests."""
    return Request(
        prompt_len=prompt_len, output_len=output_len, arrival_time=arrival_time
    )


@pytest.fixture
def request_factory():
    return make_request
