"""Shared fixtures: small deployments and request factories.

Simulation tests run against the Tiny-1B catalog model so the whole
suite stays fast while exercising exactly the same code paths as the
paper-scale models.
"""

from __future__ import annotations

import pytest

from repro.api import Deployment
from repro.hardware.catalog import A100_80G, ETHERNET_100G
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.models.catalog import TINY_1B
from repro.parallel.config import ParallelConfig
from repro.types import Request


@pytest.fixture
def tiny_deployment() -> Deployment:
    """Tiny-1B on one A100 — the fast single-stage test deployment."""
    return Deployment(model=TINY_1B, gpu=A100_80G)


@pytest.fixture
def tiny_pp_deployment() -> Deployment:
    """Tiny-1B on two A100s with 2-way pipeline parallelism."""
    return Deployment(
        model=TINY_1B,
        gpu=A100_80G,
        parallel=ParallelConfig(pipeline_parallel=2, pp_link=ETHERNET_100G),
    )


@pytest.fixture
def paged_memory() -> PagedBlockManager:
    return PagedBlockManager(capacity_tokens=4096, block_size=16)


@pytest.fixture
def reservation_memory() -> ReservationManager:
    return ReservationManager(capacity_tokens=8192, reserve_len=1024)


def make_request(
    prompt_len: int = 64,
    output_len: int = 8,
    arrival_time: float = 0.0,
) -> Request:
    """A request with small defaults for unit tests."""
    return Request(
        prompt_len=prompt_len, output_len=output_len, arrival_time=arrival_time
    )


@pytest.fixture
def request_factory():
    return make_request
