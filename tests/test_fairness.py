"""Tests for fairness-aware stall-free batching (multi-tenant)."""

from __future__ import annotations

import pytest

from repro.core.fairness import FairSarathiScheduler
from repro.engine.replica import ReplicaEngine
from repro.memory.block_manager import PagedBlockManager
from repro.types import Request


def fair_scheduler(token_budget=256, weights=None, capacity=65536):
    memory = PagedBlockManager(capacity, block_size=16, watermark=0.0)
    return FairSarathiScheduler(
        memory, token_budget=token_budget, client_weights=weights, max_batch_size=16
    )


def client_request(client, prompt=300, output=4, arrival=0.0):
    return Request(
        prompt_len=prompt, output_len=output, arrival_time=arrival, client_id=client
    )


def drain(scheduler, max_iters=50_000):
    now = 0.0
    for _ in range(max_iters):
        batch = scheduler.schedule(now)
        if batch is None:
            if not scheduler.has_work:
                return
            now += 0.01
            continue
        now += 0.01
        scheduler.on_batch_complete(batch, now)


class TestConstruction:
    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            fair_scheduler(weights={1: 0.0})

    def test_defaults_to_weight_one(self):
        s = fair_scheduler(weights={7: 2.0})
        assert s._weight(7) == 2.0
        assert s._weight(99) == 1.0


class TestFairAdmission:
    def test_light_client_not_starved_by_flood(self):
        """Client 1 floods 20 requests before client 2's single request
        arrives; fairness admits client 2 long before FCFS would."""
        s = fair_scheduler(token_budget=128)
        for i in range(20):
            s.add_request(client_request(1, arrival=0.0), now=0.0)
        light = client_request(2, arrival=0.1)

        # Burn a couple of iterations so client 1 accrues service.
        now = 0.0
        for _ in range(4):
            batch = s.schedule(now)
            now += 0.05
            s.on_batch_complete(batch, now)
        s.add_request(light, now=now)
        batch = s.schedule(now)
        # The light client's request is admitted into the very next
        # iteration despite 19 queued requests ahead of it in FCFS terms.
        assert any(item.request is light for item in batch.items)

    def test_service_counters_track_tokens(self):
        s = fair_scheduler(token_budget=128)
        s.add_request(client_request(3, prompt=300), now=0.0)
        batch = s.schedule(now=0.0)
        assert s.service_counters[3] == batch.num_tokens

    def test_weighted_share(self):
        """A weight-2 client should receive ~2x the admitted tokens of a
        weight-1 client under symmetric backlog."""
        s = fair_scheduler(token_budget=256, weights={1: 2.0, 2: 1.0})
        for _ in range(40):
            s.add_request(client_request(1, prompt=400, output=2), now=0.0)
            s.add_request(client_request(2, prompt=400, output=2), now=0.0)
        now = 0.0
        for _ in range(40):  # long enough to leave the startup transient
            batch = s.schedule(now)
            if batch is None:
                break
            now += 0.05
            s.on_batch_complete(batch, now)
        served = s.service_counters
        assert served[1] > 1.5 * served[2]

    def test_fairness_report_normalizes_by_weight(self):
        s = fair_scheduler(weights={1: 2.0})
        s.service_counters[1] = 200.0
        s.service_counters[2] = 100.0
        report = s.fairness_report()
        assert report[1] == pytest.approx(100.0)
        assert report[2] == pytest.approx(100.0)


class TestEndToEnd:
    def test_all_clients_complete(self, tiny_deployment):
        scheduler = fair_scheduler(token_budget=256)
        engine = ReplicaEngine(tiny_deployment.execution_model(), scheduler)
        requests = [
            client_request(i % 3, prompt=200, output=6, arrival=0.02 * i)
            for i in range(18)
        ]
        result = engine.run(requests)
        assert all(r.is_finished for r in result.requests)
        assert set(scheduler.service_counters) == {0, 1, 2}

    def test_stall_free_property_preserved(self, tiny_deployment):
        """Fair admission must not reintroduce decode stalls."""
        scheduler = fair_scheduler(token_budget=256)
        engine = ReplicaEngine(tiny_deployment.execution_model(), scheduler)
        decoder = client_request(1, prompt=64, output=40, arrival=0.0)
        flood = [
            client_request(2, prompt=2000, output=2, arrival=0.05)
            for _ in range(6)
        ]
        engine.run([decoder] + flood)
        gaps = decoder.tbt_samples
        assert max(gaps) < 5 * min(gaps)

    def test_ttft_fairness_under_asymmetric_load(self, tiny_deployment):
        """The heavy tenant's backlog should not inflate the light
        tenant's TTFT much beyond its own service time."""
        scheduler = fair_scheduler(token_budget=256)
        engine = ReplicaEngine(tiny_deployment.execution_model(), scheduler)
        heavy = [
            client_request(1, prompt=1500, output=4, arrival=0.0) for _ in range(10)
        ]
        light = [
            client_request(2, prompt=200, output=4, arrival=0.3 + 0.1 * i)
            for i in range(3)
        ]
        engine.run(heavy + light)
        light_ttfts = [r.ttft for r in light]
        heavy_ttfts = sorted(r.ttft for r in heavy)
        # Light tenant beats the heavy tenant's median TTFT.
        assert max(light_ttfts) < heavy_ttfts[len(heavy_ttfts) // 2]


class TestMultitenantExperiment:
    def test_fair_policy_protects_light_tenant(self):
        from repro.experiments.common import Scale
        from repro.experiments.multitenant import run_fairness_comparison

        rows = {
            (r.policy, r.client): r
            for r in run_fairness_comparison(Scale(32, 0.5, 5))
        }
        assert rows[("fair", "light")].p99_ttft < rows[("fcfs", "light")].p99_ttft
        # Stall-free TBT bound holds under both policies.
        assert all(r.max_tbt < 0.2 for r in rows.values())
