"""Cross-product stress tests: every scheduler × every engine shape.

These are the conservation laws that must hold no matter which policy
runs on which deployment: all requests finish, every prompt token is
prefilled exactly once (modulo preemption restarts), every output
token is emitted exactly once, and timelines never overlap on a stage.
"""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_engine
from repro.types import SchedulerKind

from tests.conftest import make_request

ALL_SCHEDULERS = list(SchedulerKind)


def _mixed_trace(n=18):
    """A deliberately awkward mix: tiny, medium and huge requests."""
    trace = []
    for i in range(n):
        if i % 3 == 0:
            prompt, output = 32, 12
        elif i % 3 == 1:
            prompt, output = 700, 4
        else:
            prompt, output = 2900, 7
        trace.append(
            make_request(prompt_len=prompt, output_len=output, arrival_time=0.07 * i)
        )
    return trace


@pytest.mark.parametrize("kind", ALL_SCHEDULERS, ids=lambda k: k.value)
class TestEverySchedulerSingleStage:
    def test_completes_and_conserves_tokens(self, tiny_deployment, kind):
        trace = _mixed_trace()
        engine = build_engine(
            tiny_deployment, ServingConfig(scheduler=kind, token_budget=256)
        )
        result = engine.run(trace)
        assert all(r.is_finished for r in result.requests)
        # Emission conservation.
        for request in result.requests:
            assert request.num_emitted == request.output_len
            assert len(request.token_times) == request.output_len
            assert request.token_times == sorted(request.token_times)
        # Prefill conservation: at least every prompt token was
        # prefilled once; anything beyond that must be explained by
        # recompute restarts (which re-prefill prompt + emitted).
        recorded = sum(r.num_prefill_tokens for r in result.records)
        base = sum(r.prompt_len for r in result.requests)
        restarts = sum(r.num_restarts for r in result.requests)
        worst_case = max((r.total_len for r in result.requests), default=0)
        assert base <= recorded <= base + restarts * worst_case
        if restarts == 0:
            assert recorded == base

    def test_stage_records_never_overlap(self, tiny_deployment, kind):
        trace = _mixed_trace(n=10)
        engine = build_engine(
            tiny_deployment, ServingConfig(scheduler=kind, token_budget=256)
        )
        result = engine.run(trace)
        records = sorted(result.records, key=lambda r: r.start)
        for prev, cur in zip(records, records[1:]):
            assert cur.start >= prev.end - 1e-12


@pytest.mark.parametrize("kind", ALL_SCHEDULERS, ids=lambda k: k.value)
class TestEverySchedulerPipeline:
    def test_completes_under_pp2(self, tiny_pp_deployment, kind):
        trace = _mixed_trace(n=12)
        engine = build_engine(
            tiny_pp_deployment, ServingConfig(scheduler=kind, token_budget=256)
        )
        result = engine.run(trace)
        assert all(r.is_finished for r in result.requests)
        assert result.num_stages == 2
        # Every batch ran on both stages.
        stage0 = {r.batch_id for r in result.records if r.stage == 0}
        stage1 = {r.batch_id for r in result.records if r.stage == 1}
        assert stage0 == stage1

    def test_per_stage_no_overlap(self, tiny_pp_deployment, kind):
        trace = _mixed_trace(n=10)
        engine = build_engine(
            tiny_pp_deployment, ServingConfig(scheduler=kind, token_budget=256)
        )
        result = engine.run(trace)
        for stage in (0, 1):
            records = sorted(
                (r for r in result.records if r.stage == stage),
                key=lambda r: r.start,
            )
            for prev, cur in zip(records, records[1:]):
                assert cur.start >= prev.end - 1e-12


class TestSarathiStallBoundHolds:
    @pytest.mark.parametrize("budget", [128, 512])
    def test_no_iteration_exceeds_budget(self, tiny_deployment, budget):
        engine = build_engine(
            tiny_deployment,
            ServingConfig(scheduler=SchedulerKind.SARATHI, token_budget=budget),
        )
        result = engine.run(_mixed_trace())
        for record in result.records:
            assert record.num_tokens <= budget

    def test_vllm_iterations_unbounded_by_contrast(self, tiny_deployment):
        engine = build_engine(
            tiny_deployment, ServingConfig(scheduler=SchedulerKind.VLLM)
        )
        result = engine.run(_mixed_trace())
        assert max(r.num_tokens for r in result.records) > 2048
