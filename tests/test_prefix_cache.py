"""KV prefix caching: store semantics, allocator integration, end to end.

Three layers:

* ``SharedPrefixStore`` in isolation — claim/release/register/evict
  bookkeeping, block alignment, COW accounting, LRU eviction order.
* ``PagedBlockManager`` with a store attached — admission skips cached
  blocks but charges full occupancy, finished requests publish their
  history, retained entries are evicted under pressure.
* Whole-engine runs — conversation workloads prefill less with the
  cache on, and a 100%-miss workload is bit-identical to cache-off.
"""

from __future__ import annotations

import pytest

from repro.api import ServingConfig
from repro.memory.block_manager import PagedBlockManager
from repro.memory.prefix import SharedPrefixStore
from repro.types import Request, RequestPhase
from repro.workload.conversation import ConversationSpec, simulate_conversations
from repro.workload.distributions import FixedLengths
from repro.workload.production import ProductionSpec, generate_production_trace

pytestmark = pytest.mark.tier1

BS = 16


def tagged_request(
    prompt_len: int = 64,
    output_len: int = 4,
    prefix_id: int | None = 0,
    prefix_len: int | None = None,
    **kwargs,
) -> Request:
    if prefix_len is None:
        prefix_len = prompt_len
    return Request(
        prompt_len=prompt_len,
        output_len=output_len,
        prefix_id=prefix_id,
        prefix_len=prefix_len,
        **kwargs,
    )


def finish(request: Request) -> None:
    """Drive a request's own state machine to FINISHED."""
    request.record_prefill(request.remaining_prefill, now=1.0)
    while not request.is_finished:
        request.record_decode(now=2.0)
    assert request.phase is RequestPhase.FINISHED


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------
class TestSharedPrefixStore:
    def test_miss_on_empty_store(self):
        store = SharedPrefixStore(block_size=BS)
        assert store.claim(7, prefix_len=64, prefill_target=64, owner=1) == 0
        assert store.stats.misses == 1 and store.stats.hits == 0

    def test_register_aligns_down_to_whole_blocks(self):
        store = SharedPrefixStore(block_size=BS)
        absorbed = store.register(7, prefix_len=0, publish_tokens=70)
        assert absorbed == 4          # 70 -> 64 tokens -> 4 blocks
        assert store.entry_tokens(7) == 64
        assert store.shared_blocks == 4

    def test_register_below_one_block_is_noop(self):
        store = SharedPrefixStore(block_size=BS)
        assert store.register(7, prefix_len=0, publish_tokens=BS - 1) == 0
        assert store.num_entries == 0

    def test_claim_is_block_aligned_and_leaves_one_token(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(7, prefix_len=0, publish_tokens=128)
        # prefix_len mid-block: usable span aligns down.
        assert store.usable_tokens(7, prefix_len=70, prefill_target=200) == 64
        # prefill target inside the entry: at least one token is left
        # to actually prefill (and emit the first token from).
        assert store.usable_tokens(7, prefix_len=128, prefill_target=128) == 112
        # Full-length reuse only when the target strictly exceeds it.
        assert store.usable_tokens(7, prefix_len=128, prefill_target=129) == 128

    def test_claim_refcounts_and_tracks_owners(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(7, prefix_len=0, publish_tokens=64)
        assert store.claim(7, prefix_len=64, prefill_target=100, owner=11) == 64
        assert store.claim(7, prefix_len=64, prefill_target=100, owner=12) == 64
        assert store.entry_refcount(7) == 2
        assert store.entry_owners(7) == (11, 12)
        store.release(7, owner=11)
        assert store.entry_owners(7) == (12,)
        store.release(7, owner=12)
        assert store.entry_refcount(7) == 0
        # Entry is retained after the last release.
        assert store.entry_tokens(7) == 64

    def test_over_release_raises(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(7, prefix_len=0, publish_tokens=64)
        with pytest.raises(ValueError, match="released more than claimed"):
            store.release(7, owner=99)

    def test_cow_counted_on_mid_block_divergence(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(7, prefix_len=0, publish_tokens=128)
        # Diverges at token 70: matches 4 whole blocks, then differs
        # inside the entry's coverage -> one COW copy.
        store.claim(7, prefix_len=70, prefill_target=300, owner=1)
        assert store.stats.cow_copies == 1
        # Full-block match beyond the entry: no COW.
        store.claim(7, prefix_len=128, prefill_target=300, owner=2)
        assert store.stats.cow_copies == 1

    def test_register_extends_only_with_covering_prefix(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(7, prefix_len=0, publish_tokens=64)
        # Divergent shorter history: conservative no-op.
        assert store.register(7, prefix_len=32, publish_tokens=128) == 0
        assert store.entry_tokens(7) == 64
        # Covering history publishing more: extend by the delta.
        assert store.register(7, prefix_len=64, publish_tokens=128) == 4
        assert store.entry_tokens(7) == 128
        assert store.shared_blocks == 8

    def test_eviction_is_lru_and_skips_referenced(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(1, prefix_len=0, publish_tokens=64)   # oldest
        store.register(2, prefix_len=0, publish_tokens=64)
        store.register(3, prefix_len=0, publish_tokens=64)
        store.claim(1, prefix_len=64, prefill_target=100, owner=5)  # refresh + ref
        store.release(1, owner=5)                                   # ref 0, recent
        store.claim(2, prefix_len=64, prefill_target=100, owner=6)  # referenced
        # Needs one block: entry 3 is the LRU refcount-0 candidate.
        assert store.evict_for(1) == 4
        assert store.entry_tokens(3) == 0
        # Entry 2 is referenced: only entry 1 is reclaimable.
        assert store.evict_for(100) == 4
        assert store.entry_tokens(1) == 0
        assert store.entry_tokens(2) == 64
        assert store.stats.evictions == 2

    def test_exclude_protects_admission_target(self):
        store = SharedPrefixStore(block_size=BS)
        store.register(1, prefix_len=0, publish_tokens=64)
        assert store.evictable_blocks(exclude=1) == 0
        assert store.evict_for(4, exclude=1) == 0
        assert store.entry_tokens(1) == 64


# ----------------------------------------------------------------------
# Allocator integration
# ----------------------------------------------------------------------
def paged_with_store(capacity_tokens: int = 4096):
    store = SharedPrefixStore(block_size=BS)
    manager = PagedBlockManager(
        capacity_tokens, block_size=BS, watermark=0.0, prefix_store=store
    )
    return manager, store


class TestPagedBlockManagerPrefix:
    def test_finished_request_publishes_history(self):
        manager, store = paged_with_store()
        request = tagged_request(prompt_len=64, output_len=4)
        manager.admit(request)
        request.record_prefill(64, now=1.0)
        while not request.is_finished:
            manager.append_token(request)
            request.record_decode(now=2.0)
        held = manager._allocated[request.request_id]
        free_before = manager.free_blocks
        manager.free(request)
        # context 68 -> 4 whole blocks published, the tail block freed.
        assert store.entry_tokens(0) == 64
        assert manager.free_blocks == free_before + held - 4
        conserved = manager.free_blocks + store.shared_blocks
        assert conserved == manager.num_blocks

    def test_hit_admits_against_novel_suffix_only(self):
        manager, store = paged_with_store()
        first = tagged_request(prompt_len=64, output_len=4)
        manager.admit(first)
        finish(first)
        manager.free(first)

        follow = tagged_request(prompt_len=128, output_len=4, prefix_len=68)
        before = manager.free_blocks
        manager.admit(follow)
        # Full prompt needs 8 blocks; 4 come shared from the store.
        assert before - manager.free_blocks == 4
        # Chunked prefill resumes at the first novel token...
        assert follow.prefill_done == 64
        assert follow.remaining_prefill == 64
        # ...while occupancy covers the full history.
        assert manager._needs_new_block(follow) is False
        assert store.entry_refcount(0) == 1
        assert store.stats.hits == 1

    def test_publish_len_caps_registration(self):
        manager, store = paged_with_store()
        request = tagged_request(
            prompt_len=64, output_len=8, prefix_len=64, prefix_publish_len=32
        )
        manager.admit(request)
        finish(request)
        manager.free(request)
        assert store.entry_tokens(0) == 32

    def test_swap_in_skips_lookup(self):
        manager, store = paged_with_store()
        seeded = tagged_request(prompt_len=64, output_len=4)
        manager.admit(seeded)
        finish(seeded)
        manager.free(seeded)
        lookups = store.stats.lookups

        # A swapped-in request carries restored KV progress: it must
        # re-claim everything exclusively, not share.
        swapped = tagged_request(prompt_len=64, output_len=8, prefix_len=64)
        swapped.record_prefill(64, now=1.0)
        swapped.record_decode(now=2.0)
        before = manager.free_blocks
        manager.admit(swapped)
        assert store.stats.lookups == lookups
        assert before - manager.free_blocks == manager.blocks_for(
            swapped.context_len
        )

    def test_admission_evicts_retained_entries_under_pressure(self):
        manager, store = paged_with_store(capacity_tokens=8 * BS)
        seeded = tagged_request(prompt_len=4 * BS, output_len=1, prefix_id=1)
        manager.admit(seeded)
        finish(seeded)
        manager.free(seeded)
        assert store.shared_blocks == 4

        # An unrelated request needing more than the raw free pool
        # triggers LRU eviction of the retained entry.
        big = Request(prompt_len=7 * BS, output_len=1)
        assert manager.can_admit(big)
        manager.admit(big)
        assert store.num_entries == 0
        assert store.stats.evictions == 1

    def test_decode_append_evicts_under_pressure(self):
        manager, store = paged_with_store(capacity_tokens=8 * BS)
        seeded = tagged_request(prompt_len=4 * BS, output_len=1, prefix_id=1)
        manager.admit(seeded)
        finish(seeded)
        manager.free(seeded)

        grower = Request(prompt_len=4 * BS, output_len=2 * BS)
        manager.admit(grower)
        grower.record_prefill(grower.prompt_len, now=1.0)
        assert manager.free_blocks == 0
        for _ in range(BS):
            grower.record_decode(now=2.0)
        # The next token needs a new block; only the retained entry has one.
        assert manager.can_append_token(grower)
        manager.append_token(grower)
        assert store.num_entries == 0

    def test_failed_admit_releases_claim(self):
        manager, store = paged_with_store(capacity_tokens=8 * BS)
        seeded = tagged_request(prompt_len=4 * BS, output_len=1)
        manager.admit(seeded)
        finish(seeded)
        manager.free(seeded)

        hog = Request(prompt_len=4 * BS, output_len=1)
        manager.admit(hog)
        # A follow-up hits the entry but cannot fit its novel suffix.
        follow = tagged_request(prompt_len=8 * BS, output_len=1, prefix_len=4 * BS)
        assert not manager.can_admit(follow)
        with pytest.raises(MemoryError):
            manager.admit(follow)
        assert store.entry_refcount(0) == 0
        assert store.entry_owners(0) == ()


# ----------------------------------------------------------------------
# Whole-engine behavior
# ----------------------------------------------------------------------
def tiny_spec(prefix_mode: str) -> ConversationSpec:
    return ConversationSpec(
        num_conversations=8,
        first_turn_lengths=FixedLengths(120),
        followup_turn_lengths=FixedLengths(40),
        response_lengths=FixedLengths(10),
        mean_rounds=4.0,
        mean_think_time=0.2,
        arrival_qps=2.0,
        prefix_mode=prefix_mode,
    )


class TestEngineLevel:
    def _prefill_tokens(self, result) -> int:
        return sum(r.num_prefill_tokens for r in result.records if r.stage == 0)

    @pytest.mark.parametrize("engine_kind", ["object", "vectorized"])
    def test_cache_cuts_prefill_work(self, tiny_deployment, engine_kind):
        spec = tiny_spec("conversation")
        config = ServingConfig(token_budget=256, engine=engine_kind)
        off, _ = simulate_conversations(
            tiny_deployment, config, spec, seed=3
        )
        on, _ = simulate_conversations(
            tiny_deployment,
            ServingConfig(token_budget=256, engine=engine_kind, prefix_cache=True),
            spec,
            seed=3,
        )
        assert off.prefix_stats is None
        assert on.prefix_stats is not None and on.prefix_stats.hits > 0
        assert self._prefill_tokens(on) < self._prefill_tokens(off)
        assert len(on.requests) == len(off.requests)
        assert all(r.is_finished for r in on.requests)

    @pytest.mark.parametrize("engine_kind", ["object", "vectorized"])
    def test_all_miss_workload_matches_cache_off(self, tiny_deployment, engine_kind):
        """With unique prefix ids every lookup misses: the run must be
        bit-identical to the cache-off run (per-request timelines)."""
        spec = tiny_spec("unique")
        runs = {}
        for cache_on in (False, True):
            config = ServingConfig(
                token_budget=256, engine=engine_kind, prefix_cache=cache_on
            )
            result, _ = simulate_conversations(tiny_deployment, config, spec, seed=5)
            runs[cache_on] = result
        assert runs[True].prefix_stats is not None
        assert runs[True].prefix_stats.hits == 0
        assert runs[True].prefix_stats.misses > 0
        timelines_off = [
            (r.arrival_time, r.prompt_len, r.output_len, tuple(r.token_times))
            for r in runs[False].requests
        ]
        timelines_on = [
            (r.arrival_time, r.prompt_len, r.output_len, tuple(r.token_times))
            for r in runs[True].requests
        ]
        assert timelines_on == timelines_off

    def test_production_trace_exercises_cache(self, tiny_deployment):
        from repro.api import simulate

        spec = ProductionSpec(num_requests=24, base_qps=2.0)
        trace = generate_production_trace(spec, seed=1)
        assert all(r.prefix_id is not None for r in trace)
        config = ServingConfig(token_budget=512, prefix_cache=True)
        result, metrics = simulate(tiny_deployment, config, trace)
        stats = result.prefix_stats
        assert stats is not None
        # Three tenants seed three entries; everyone else hits.
        assert stats.hits > 0
        assert metrics.num_requests == 24


class TestProductionTrace:
    def test_arrivals_monotone_and_tagged(self):
        spec = ProductionSpec(num_requests=50, base_qps=5.0)
        trace = generate_production_trace(spec, seed=0)
        assert len(trace) == 50
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        for request in trace:
            tenant = spec.tenants[request.prefix_id]
            assert request.prefix_len == tenant.system_prompt_len
            assert request.prefix_publish_len == tenant.system_prompt_len
            assert request.prompt_len > tenant.system_prompt_len

    def test_seed_determinism(self):
        spec = ProductionSpec(num_requests=30, base_qps=3.0)
        a = generate_production_trace(spec, seed=9)
        b = generate_production_trace(spec, seed=9)
        assert [(r.arrival_time, r.prompt_len, r.output_len, r.prefix_id) for r in a] == [
            (r.arrival_time, r.prompt_len, r.output_len, r.prefix_id) for r in b
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductionSpec(num_requests=0)
        with pytest.raises(ValueError):
            ProductionSpec(num_requests=1, diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            ProductionSpec(num_requests=1, burst_factor=0.5)
