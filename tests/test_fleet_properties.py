"""Property tests: request conservation under arbitrary fault schedules.

The invariant the fleet simulator must never break: whatever the fault
schedule, admission bound or router, every offered request is either
finished exactly once or explicitly shed — never lost, never
double-finished, and never finished with the wrong number of tokens.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Deployment, ServingConfig
from repro.cluster.degradation import BrownoutConfig, DegradationLevel
from repro.cluster.fleet import (
    AdmissionPolicy,
    FaultSchedule,
    FleetConfig,
    FleetSimulator,
    HealthConfig,
    ReplicaFault,
    partition_domains,
)
from repro.cluster.router import LeastOutstandingTokensRouter, RoundRobinRouter
from repro.hardware.catalog import A100_80G
from repro.models.catalog import TINY_1B

from tests.conftest import make_request

pytestmark = pytest.mark.tier1

_DEPLOYMENT = Deployment(model=TINY_1B, gpu=A100_80G)


def _quantize(value: float) -> float:
    """Coarse time grid keeps fault instants reproducible in reports."""
    return round(value, 3)


@st.composite
def fault_schedules(draw, num_replicas: int):
    faults = []
    # Per-replica cursor keeps the generated windows disjoint in time:
    # overlapping same-replica faults are rejected by
    # ``FaultSchedule.validate`` by design, so conservation only has to
    # hold for schedules that pass validation.
    next_free: dict[int, float | None] = {}
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        replica = draw(st.integers(min_value=0, max_value=num_replicas - 1))
        if replica in next_free and next_free[replica] is None:
            continue  # already down forever: anything later would overlap
        start = next_free.get(replica, 0.0)
        down_at = _quantize(start + draw(st.floats(min_value=0.0, max_value=0.8)))
        if draw(st.booleans()):
            up_at = _quantize(down_at + draw(st.floats(min_value=0.05, max_value=0.5)))
        else:
            up_at = None
        next_free[replica] = up_at
        faults.append(ReplicaFault(replica, down_at, up_at))
    return FaultSchedule(tuple(faults))


@st.composite
def fleet_scenarios(draw):
    num_replicas = draw(st.integers(min_value=1, max_value=3))
    schedule = draw(fault_schedules(num_replicas))
    max_queue_depth = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=3)))
    admission = draw(st.sampled_from(list(AdmissionPolicy)))
    round_robin = draw(st.booleans())
    num_requests = draw(st.integers(min_value=1, max_value=10))
    gap = _quantize(draw(st.floats(min_value=0.0, max_value=0.05)))
    return (
        FleetConfig(
            num_replicas=num_replicas,
            faults=schedule,
            max_queue_depth=max_queue_depth,
            admission=admission,
            max_retries=2,
        ),
        round_robin,
        num_requests,
        gap,
    )


@settings(
    max_examples=25,
    deadline=None,
    # The `engine` fixture is an immutable engine-kind string, constant
    # for every example of one test run — safe to reuse across examples.
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scenario=fleet_scenarios())
def test_no_request_lost_or_double_finished(engine, scenario):
    fleet_config, round_robin, num_requests, gap = scenario
    trace = [
        make_request(prompt_len=600, output_len=5, arrival_time=gap * i)
        for i in range(num_requests)
    ]
    router = (
        RoundRobinRouter(fleet_config.num_replicas)
        if round_robin
        else LeastOutstandingTokensRouter(fleet_config.num_replicas)
    )
    config = ServingConfig(engine=engine)
    simulator = FleetSimulator(_DEPLOYMENT, config, fleet_config, router=router)
    result = simulator.run(trace)

    # Conservation: finished XOR shed, nothing lost.
    assert not result.lost_requests()
    shed_ids = {r.request_id for r in result.shed}
    for request in result.requests:
        assert request.is_finished != (request.request_id in shed_ids)

    # No double-finish / over-emission: a finished request emitted its
    # output exactly once, monotone token times, regardless of how many
    # failover restarts it survived.
    for request in result.requests:
        assert request.num_emitted <= request.output_len
        if request.is_finished:
            assert request.num_emitted == request.output_len
            assert len(request.token_times) == request.output_len
            assert request.token_times == sorted(request.token_times)
            assert request.finished_at == request.token_times[-1]

    # Each request was delivered to at most one replica at a time:
    # across all replica incarnations, a request id appears in at most
    # one *live* engine's pool, and each finish is recorded once.
    finished_ids = [
        r.request_id
        for replica_result in result.replica_results
        for r in replica_result.requests
        if r.is_finished
    ]
    assert len(finished_ids) == len(set(finished_ids))


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=2**10),
    rate=st.floats(min_value=0.1, max_value=1.5),
    kind=st.sampled_from(["crash", "slowdown", "capacity_loss"]),
    num_replicas=st.integers(min_value=2, max_value=4),
    brownout=st.booleans(),
    num_requests=st.integers(min_value=1, max_value=8),
)
def test_conservation_under_correlated_faults_and_degradation(
    engine, seed, rate, kind, num_replicas, brownout, num_requests
):
    """Satellite invariant: correlated domain faults of every kind, with
    the health monitor draining/restarting replicas and the brownout
    controller stepping through degradation levels (including shedding
    a tenant class), must still conserve every request — finished once
    XOR explicitly shed, never lost."""
    domains = partition_domains(num_replicas, min(2, num_replicas))
    schedule = FaultSchedule.correlated(
        domains, rate=rate, mean_downtime=0.4, horizon=2.0, seed=seed, kind=kind
    )
    # An aggressive ladder so brownout transitions actually happen in
    # short runs: it enters as soon as pooled p99 TBT exceeds 1.1x a
    # deliberately tiny SLO, and sheds tenant class 2 at its top rung.
    brownout_config = BrownoutConfig(
        levels=(
            DegradationLevel(token_budget=64),
            DegradationLevel(token_budget=64, max_context=800, shed_client_ids=(2,)),
        ),
        tbt_slo=0.005,
        enter_margin=0.1,
        exit_margin=0.0,
        min_dwell=0.05,
        check_interval=0.05,
        min_samples=4,
    )
    fleet_config = FleetConfig(
        num_replicas=num_replicas,
        faults=schedule,
        domains=domains,
        max_queue_depth=3,
        admission=AdmissionPolicy.SHED,
        max_retries=2,
        health=HealthConfig(check_interval=0.1, min_samples=4, inflation_factor=1.5),
        brownout=brownout_config if brownout else None,
    )
    trace = [
        make_request(prompt_len=600, output_len=5, arrival_time=0.02 * i)
        for i in range(num_requests)
    ]
    for i, request in enumerate(trace):
        request.client_id = i % 3
    config = ServingConfig(engine=engine)
    simulator = FleetSimulator(_DEPLOYMENT, config, fleet_config)
    result = simulator.run(trace)

    assert not result.lost_requests()
    shed_ids = {r.request_id for r in result.shed}
    for request in result.requests:
        assert request.is_finished != (request.request_id in shed_ids)
        assert request.num_emitted <= request.output_len
        if request.is_finished:
            assert request.num_emitted == request.output_len
            assert request.token_times == sorted(request.token_times)
    finished_ids = [
        r.request_id
        for replica_result in result.replica_results
        for r in replica_result.requests
        if r.is_finished
    ]
    assert len(finished_ids) == len(set(finished_ids))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.floats(min_value=0.01, max_value=2.0),
)
def test_poisson_schedules_are_valid_and_deterministic(seed, rate):
    a = FaultSchedule.poisson(3, rate=rate, mean_downtime=0.5, horizon=5.0, seed=seed)
    b = FaultSchedule.poisson(3, rate=rate, mean_downtime=0.5, horizon=5.0, seed=seed)
    assert a == b
    a.validate(3)
    for fault in a.faults:
        assert fault.down_at < 5.0
        assert fault.up_at is None or fault.up_at > fault.down_at
