"""Tests for MFU/MBU accounting (Fig. 5's utilization claim)."""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_engine
from repro.metrics.utilization import batch_utilization, run_utilization
from repro.types import TokenWork

from tests.conftest import make_request


class TestBatchUtilization:
    def test_empty_batch(self, tiny_deployment):
        util = batch_utilization(tiny_deployment.execution_model(), [])
        assert util.mfu == 0.0 and util.mbu == 0.0

    def test_bounds(self, tiny_deployment):
        exec_model = tiny_deployment.execution_model()
        for works in (
            [TokenWork.decode(512)],
            [TokenWork.prefill_chunk(2048)],
            [TokenWork.decode(512), TokenWork.prefill_chunk(480)],
        ):
            util = batch_utilization(exec_model, works)
            assert 0.0 < util.mfu <= 1.0
            assert 0.0 < util.mbu <= 1.0

    def test_decode_wastes_compute(self, tiny_deployment):
        exec_model = tiny_deployment.execution_model()
        decode = batch_utilization(
            exec_model, [TokenWork.decode(1024) for _ in range(32)]
        )
        assert decode.mbu > 3 * decode.mfu

    def test_prefill_wastes_bandwidth(self, tiny_deployment):
        exec_model = tiny_deployment.execution_model()
        prefill = batch_utilization(exec_model, [TokenWork.prefill_chunk(4096)])
        assert prefill.mfu > 3 * prefill.mbu

    def test_hybrid_balances(self, tiny_deployment):
        """Fig. 5: coalescing pushes min(MFU, MBU) up."""
        exec_model = tiny_deployment.execution_model()
        decodes = [TokenWork.decode(1024) for _ in range(32)]
        decode_only = batch_utilization(exec_model, decodes)
        prefill_only = batch_utilization(exec_model, [TokenWork.prefill_chunk(2048)])
        hybrid = batch_utilization(
            exec_model, decodes + [TokenWork.prefill_chunk(480, past_len=512, is_last=False)]
        )
        assert hybrid.balance > decode_only.balance
        assert hybrid.balance > prefill_only.balance


class TestRunUtilization:
    def test_run_level_aggregation(self, tiny_deployment):
        trace = [
            make_request(prompt_len=300, output_len=10, arrival_time=0.02 * i)
            for i in range(12)
        ]
        engine = build_engine(tiny_deployment, ServingConfig(token_budget=256))
        result = engine.run(trace)
        util = run_utilization(tiny_deployment.execution_model(), result)
        assert 0.0 < util.mean_mfu <= 1.0
        assert 0.0 < util.mean_mbu <= 1.0
        assert util.mean_balance <= min(util.mean_mfu, util.mean_mbu) + 1e-9

    def test_empty_records(self, tiny_deployment):
        from repro.engine.replica import SimulationResult

        result = SimulationResult(requests=[], records=[], makespan=0.0, num_stages=1)
        util = run_utilization(tiny_deployment.execution_model(), result)
        assert util.mean_mfu == 0.0
