"""Smoke tests for every experiment runner, at smoke scale.

These ensure each figure's runner executes end to end and returns rows
with the paper's qualitative shape; the benches run the same code at a
larger scale and print the comparison tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import SMOKE, Scale, format_table, scale_from_env
from repro.experiments import (
    falcon_deployment,
    falcon_tp8_cross_node_deployment,
    llama70_deployment,
    mistral_deployment,
    token_budget_for,
    yi_deployment,
)
from repro.types import SchedulerKind

TINY = Scale(num_requests=24, capacity_rel_tol=0.5, capacity_max_probes=5)


class TestCommon:
    def test_deployment_presets_match_table1(self):
        assert mistral_deployment().parallel.world_size == 1
        assert yi_deployment().parallel.label == "TP2-PP1"
        assert llama70_deployment().parallel.label == "TP4-PP2"
        assert falcon_deployment().parallel.label == "TP4-PP2"
        assert falcon_tp8_cross_node_deployment().parallel.tensor_parallel == 8

    def test_token_budget_for(self):
        assert token_budget_for(mistral_deployment(), strict=True) == 512
        assert token_budget_for(mistral_deployment(), strict=False) == 2048
        assert token_budget_for(llama70_deployment(), strict=False) == 1536

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]


class TestFig01:
    def test_stall_report_shape(self):
        from repro.experiments.fig01_stalls import run_stall_timeline

        reports = {r.scheduler: r for r in run_stall_timeline(TINY, qps=0.4)}
        assert reports["vllm"].max_stall > reports["sarathi"].max_stall
        assert reports["sarathi"].num_stalls == 0

    def test_load_sweep_shape(self):
        from repro.experiments.fig01_stalls import run_tbt_vs_load

        points = run_tbt_vs_load(TINY, qps_values=(0.3, 1.0))
        assert len(points) == 4
        worst = {(p.scheduler, p.qps): p.max_tbt for p in points}
        p99 = {(p.scheduler, p.qps): p.p99_tbt for p in points}
        # Under load, vLLM's worst inter-token gap explodes (at smoke
        # scale stalls are too rare to reach p99; benches assert p99 at
        # full scale); Sarathi's tail stays flat across load.
        assert worst[("vllm", 1.0)] > 10 * worst[("sarathi", 1.0)]
        assert p99[("sarathi", 1.0)] < 2 * p99[("sarathi", 0.3)]


class TestFig02:
    def test_quadrant_ordering(self):
        from repro.experiments.fig02_quadrant import run_quadrant

        points = {p.scheduler: p for p in run_quadrant(TINY, qps=3.0)}
        assert points["sarathi"].p99_tbt < points["vllm"].p99_tbt
        assert (
            points["faster_transformer"].median_ttft > points["sarathi"].median_ttft
        )


class TestFig03:
    def test_phase_scaling(self):
        from repro.experiments.fig03_phase_throughput import run_phase_throughput

        points = run_phase_throughput(batch_sizes=(1, 8, 64))
        prefill = [p.prefill_tokens_per_s for p in points]
        decode = [p.decode_tokens_per_s for p in points]
        assert prefill[-1] < 1.5 * prefill[0]     # saturated
        assert decode[-1] > 20 * decode[0]        # near-linear in batch


class TestFig04:
    def test_linear_dominates(self):
        from repro.experiments.fig04_breakdown import (
            decode_vs_prefill_linear_parity,
            run_breakdown,
        )

        rows = run_breakdown(seq_lens=(512, 2048))
        for row in rows:
            # Prefill iterations are solidly linear-dominated; decode
            # iterations at long contexts cede some share to KV reads.
            threshold = 0.5 if row.phase == "prefill" else 0.35
            assert row.linear_fraction > threshold
        parity = decode_vs_prefill_linear_parity()
        assert 32 <= parity <= 512  # paper: ~128


class TestFig05:
    def test_decode_memory_bound_prefill_compute_bound(self):
        from repro.experiments.fig05_intensity import run_intensity_sweep

        points = {p.num_tokens: p for p in run_intensity_sweep()}
        assert points[32].is_memory_bound
        assert not points[4096].is_memory_bound


class TestFig06:
    def test_higher_tp_has_later_knee(self):
        from repro.experiments.fig06_linear_runtime import compute_bound_knee

        assert compute_bound_knee(8) >= compute_bound_knee(1)

    def test_layer_time_shrinks_with_tp(self):
        from repro.experiments.fig06_linear_runtime import run_linear_runtime

        points = run_linear_runtime(token_counts=(512,), tp_degrees=(1, 8))
        t = {p.tensor_parallel: p.layer_time for p in points}
        assert t[8] < t[1] / 4


class TestFig07:
    def test_schedule_traces(self):
        from repro.experiments.fig07_schedules import run_schedule_traces

        traces = {t.scheduler: t for t in run_schedule_traces()}
        # FT never stalls decodes but makes C wait; vLLM the opposite.
        assert traces["faster_transformer"].worst_decode_gap < 0.1
        assert traces["vllm"].worst_decode_gap > 0.3
        assert traces["sarathi"].worst_decode_gap < 0.15
        assert (
            traces["faster_transformer"].first_token_c > traces["sarathi"].first_token_c
        )
        # Sarathi's schedule contains hybrid iterations.
        assert any("+" in it for it in traces["sarathi"].iterations)


class TestFig08:
    def test_bubble_comparison(self):
        from repro.experiments.fig08_bubbles import run_bubble_comparison

        reports = {r.scheduler: r for r in run_bubble_comparison(TINY, qps=0.35)}
        assert (
            reports["sarathi"].iteration_time_cv < reports["orca"].iteration_time_cv
        )


class TestFig09:
    def test_chunked_far_cheaper_than_full(self):
        from repro.experiments.fig09_hybrid_latency import run_hybrid_latency

        points = run_hybrid_latency(prompt_lengths=(1024, 8192))
        for p in points:
            assert p.chunked_prefill_slowdown < p.full_prefill_slowdown
        long = points[-1]
        assert long.full_prefill_slowdown > 10
        assert long.chunked_prefill_slowdown < 4


class TestFig12Variants:
    def test_variant_grid(self):
        from repro.experiments.fig12_slo_sweep import sweep_variants

        variants = sweep_variants(mistral_deployment())
        assert set(variants) == {
            "vllm-bs32",
            "vllm-bs64",
            "vllm-bs128",
            "sarathi-512",
            "sarathi-2048",
        }
        assert variants["vllm-bs32"].max_batch_size == 32
        assert variants["sarathi-2048"].token_budget == 2048


class TestFig13:
    def test_cross_node_tp_slower(self):
        from repro.experiments.fig13_tp_vs_pp import run_decode_latency

        points = run_decode_latency(batch_sizes=(32,))
        by_layout = {p.layout: p.tbt for p in points}
        assert by_layout["TP8-cross-node"] > 1.5 * by_layout["TP4-PP2-hybrid"]


class TestFig14:
    def test_overhead_shrinks_with_chunk_size(self):
        from repro.experiments.fig14_chunk_overhead import run_chunk_overhead

        points = run_chunk_overhead(prompt_lengths=(8192,))
        overheads = {p.chunk_size: p.overhead for p in points}
        assert overheads[512] > overheads[1024] > overheads[2048]
        assert overheads[512] < 1.35  # paper: at most ~25%
        assert overheads[2048] < 1.08  # near-negligible

    def test_chunk_larger_than_prompt_skipped(self):
        from repro.experiments.fig14_chunk_overhead import run_chunk_overhead

        points = run_chunk_overhead(prompt_lengths=(1024,), chunk_sizes=(512, 2048))
        assert [p.chunk_size for p in points] == [512]


class TestTable4:
    def test_ablation_shape(self):
        from repro.experiments.table4_ablation import run_ablation
        from repro.workload.datasets import ARXIV_SUMMARIZATION

        # Long arxiv prompts make the hybrid-only stalls visible even at
        # smoke scale.
        rows = run_ablation(TINY, datasets=(ARXIV_SUMMARIZATION,))
        by_sched = {r.scheduler: r for r in rows}
        assert (
            by_sched["sarathi"].p99_tbt
            < by_sched["hybrid_batching_only"].p99_tbt
        )


class TestCapacityRunnerSmoke:
    def test_capacity_cell_runs(self):
        from repro.experiments.capacity_runner import capacity_cell
        from repro.workload.datasets import SHAREGPT4

        cell = capacity_cell(
            mistral_deployment(),
            SchedulerKind.SARATHI,
            SHAREGPT4,
            strict=True,
            scale=TINY,
            qps_hint=1.0,
        )
        assert cell.capacity_qps > 0
        assert cell.slo_name == "strict"
        assert cell.num_probes <= TINY.capacity_max_probes + 1


class TestGainHelper:
    def test_sarathi_gain_over_computes_ratios(self):
        from repro.experiments.capacity_runner import CapacityCell
        from repro.experiments.fig10_capacity_small import sarathi_gain_over

        def cell(scheduler, qps):
            return CapacityCell(
                deployment="D",
                scheduler=scheduler,
                dataset="ds",
                slo_name="strict",
                slo_p99_tbt=0.1,
                capacity_qps=qps,
                num_probes=1,
            )

        cells = [cell("sarathi", 3.0), cell("vllm", 1.5), cell("orca", 1.0)]
        gains_vllm = sarathi_gain_over(cells, "vllm")
        gains_orca = sarathi_gain_over(cells, "orca")
        key = ("D", "ds", "strict")
        assert gains_vllm[key] == 2.0
        assert gains_orca[key] == 3.0

    def test_zero_baseline_skipped(self):
        from repro.experiments.capacity_runner import CapacityCell
        from repro.experiments.fig10_capacity_small import sarathi_gain_over

        cells = [
            CapacityCell("D", "sarathi", "ds", "strict", 0.1, 2.0, 1),
            CapacityCell("D", "vllm", "ds", "strict", 0.1, 0.0, 1),
        ]
        assert sarathi_gain_over(cells, "vllm") == {}
