"""Behavioural tests for Sarathi-Serve's stall-free batching (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.chunking import get_next_chunk_size, num_chunks
from repro.core.sarathi import SarathiScheduler
from repro.memory.block_manager import PagedBlockManager

from tests.conftest import make_request
from tests.test_baseline_schedulers import drain


def sarathi(token_budget=512, max_batch_size=8, capacity=65536, **kwargs):
    memory = PagedBlockManager(capacity, block_size=16, watermark=0.0)
    return SarathiScheduler(
        memory, token_budget=token_budget, max_batch_size=max_batch_size, **kwargs
    )


class TestChunking:
    def test_chunk_bounded_by_leftover_budget(self):
        r = make_request(prompt_len=1000)
        assert get_next_chunk_size(r, token_budget=512, tokens_used=100) == 412

    def test_chunk_bounded_by_remaining_prompt(self):
        r = make_request(prompt_len=100)
        assert get_next_chunk_size(r, token_budget=512, tokens_used=0) == 100

    def test_zero_when_budget_exhausted(self):
        r = make_request(prompt_len=100)
        assert get_next_chunk_size(r, token_budget=512, tokens_used=512) == 0
        assert get_next_chunk_size(r, token_budget=512, tokens_used=600) == 0

    def test_partial_prefill_uses_remaining(self):
        r = make_request(prompt_len=1000)
        r.record_prefill(900, now=0.0)
        assert get_next_chunk_size(r, token_budget=512, tokens_used=0) == 100

    def test_tile_alignment_rounds_down_mid_prompt(self):
        r = make_request(prompt_len=10000)
        chunk = get_next_chunk_size(r, token_budget=500, tokens_used=0, tile_align=128)
        assert chunk == 384  # 500 aligned down to 128 multiple

    def test_tile_alignment_keeps_final_piece_whole(self):
        r = make_request(prompt_len=100)
        chunk = get_next_chunk_size(r, token_budget=512, tokens_used=0, tile_align=128)
        assert chunk == 100  # final piece, taken whole

    def test_tile_alignment_never_starves(self):
        r = make_request(prompt_len=10000)
        chunk = get_next_chunk_size(r, token_budget=100, tokens_used=0, tile_align=128)
        assert chunk == 100  # aligned-down would be 0; keep the raw chunk

    def test_invalid_inputs_rejected(self):
        r = make_request()
        with pytest.raises(ValueError):
            get_next_chunk_size(r, token_budget=0, tokens_used=0)
        with pytest.raises(ValueError):
            get_next_chunk_size(r, token_budget=512, tokens_used=-1)

    def test_num_chunks(self):
        assert num_chunks(1024, 512) == 2
        assert num_chunks(1025, 512) == 3
        assert num_chunks(100, 512) == 1
        with pytest.raises(ValueError):
            num_chunks(100, 0)


class TestStallFreeBatching:
    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            sarathi(token_budget=0)

    def test_token_budget_never_exceeded(self):
        s = sarathi(token_budget=256, max_batch_size=32)
        for _ in range(6):
            s.add_request(make_request(prompt_len=1000, output_len=4), now=0.0)
        now = 0.0
        while s.has_work:
            batch = s.schedule(now)
            if batch is None:
                break
            assert batch.num_tokens <= 256
            now += 0.1
            s.on_batch_complete(batch, now)

    def test_decodes_always_included(self):
        """Stall-free: a running decode appears in EVERY iteration."""
        s = sarathi(token_budget=256)
        decoder = make_request(prompt_len=64, output_len=20)
        s.add_request(decoder, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        # A long prompt arrives — it must not displace the decode.
        s.add_request(make_request(prompt_len=4096, output_len=4), now=0.1)
        now = 0.1
        while not decoder.is_finished:
            batch = s.schedule(now)
            assert any(
                item.request is decoder and not item.work.is_prefill
                for item in batch.items
            ), "ongoing decode was stalled"
            now += 0.1
            s.on_batch_complete(batch, now)

    def test_prefill_split_across_iterations(self):
        s = sarathi(token_budget=256)
        r = make_request(prompt_len=1000, output_len=2)
        s.add_request(r, now=0.0)
        chunks = []
        now = 0.0
        while not r.is_prefill_complete:
            batch = s.schedule(now)
            chunks.append(batch.num_prefill_tokens)
            now += 0.1
            s.on_batch_complete(batch, now)
        assert chunks == [256, 256, 256, 232]

    def test_ongoing_prefill_before_new_admission(self):
        """Lines 9-12 run before lines 13-20."""
        s = sarathi(token_budget=256)
        first = make_request(prompt_len=1000, output_len=2, arrival_time=0.0)
        s.add_request(first, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        second = make_request(prompt_len=1000, output_len=2, arrival_time=0.1)
        s.add_request(second, now=0.1)
        batch = s.schedule(now=0.1)
        # The whole budget goes to the partially-done first request.
        assert batch.size == 1
        assert batch.items[0].request is first

    def test_new_request_fills_leftover_budget(self):
        s = sarathi(token_budget=256)
        decoder = make_request(prompt_len=64, output_len=20)
        s.add_request(decoder, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        s.add_request(make_request(prompt_len=4096, output_len=2), now=0.1)
        batch = s.schedule(now=0.1)
        assert batch.is_hybrid
        assert batch.num_decode_tokens == 1
        assert batch.num_prefill_tokens == 255  # 256 - 1 decode token

    def test_multiple_new_requests_share_budget(self):
        s = sarathi(token_budget=512)
        for _ in range(3):
            s.add_request(make_request(prompt_len=200, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_seqs == 3
        assert batch.num_prefill_tokens == 512  # 200 + 200 + 112

    def test_max_batch_size_respected(self):
        s = sarathi(token_budget=4096, max_batch_size=4)
        for _ in range(10):
            s.add_request(make_request(prompt_len=64, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.size == 4

    def test_all_requests_complete(self):
        s = sarathi(token_budget=256)
        requests = [
            make_request(prompt_len=300, output_len=5, arrival_time=0.0)
            for _ in range(8)
        ]
        for r in requests:
            s.add_request(r, now=0.0)
        drain(s)
        assert all(r.is_finished for r in requests)

    def test_completion_under_memory_pressure(self):
        s = sarathi(token_budget=256, capacity=1024)
        requests = [
            make_request(prompt_len=200, output_len=40, arrival_time=0.0)
            for _ in range(6)
        ]
        for r in requests:
            s.add_request(r, now=0.0)
        drain(s)
        assert all(r.is_finished for r in requests)

    def test_tile_aligned_chunks(self):
        s = sarathi(token_budget=512, tile_align=128)
        decoder = make_request(prompt_len=64, output_len=30)
        s.add_request(decoder, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        s.add_request(make_request(prompt_len=4096, output_len=2), now=0.1)
        batch = s.schedule(now=0.1)
        # Leftover budget is 511; aligned down to 384.
        assert batch.num_prefill_tokens == 384


class TestHybridOnlyMode:
    def test_no_chunking_schedules_full_prompt(self):
        s = sarathi(token_budget=256, chunk_prefills=False)
        s.add_request(make_request(prompt_len=4096, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert batch.num_prefill_tokens == 4096  # exceeds budget: no chunking

    def test_still_coalesces_decodes_first(self):
        s = sarathi(token_budget=256, chunk_prefills=False)
        decoder = make_request(prompt_len=64, output_len=20)
        s.add_request(decoder, now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        s.add_request(make_request(prompt_len=4096, output_len=2), now=0.1)
        batch = s.schedule(now=0.1)
        assert batch.is_hybrid
        assert batch.num_prefill_tokens == 4096
